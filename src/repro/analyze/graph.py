"""Whole-program import graph: modules, edges, layers, cycles.

Per-file AST rules cannot see cross-package structure: a policy that
imports the serving layer parses fine in isolation, and a two-module
import cycle is invisible unless both files are on the table at once.
This module gives the lint driver that whole-program view:

* :func:`extract_edges` — pull every ``import``/``from`` of a ``repro``
  module out of one parsed file, tagged with whether the import is
  *deferred* (function-scope) and whether it is erased at runtime
  (``if TYPE_CHECKING:``);
* :class:`ProjectGraph` — the assembled graph over all linted files, with
  best-effort resolution of import targets onto collected modules and
  Tarjan SCC cycle detection over the module-scope edges;
* :data:`LAYER_DEPS` — the declared architecture DAG: for every
  ``repro`` package, the set of ``repro`` packages it may import.

The layering contract (enforced as rule R008 in
:mod:`repro.analyze.rules`):

* ``repro.analyze`` stands alone — it may import only ``repro.errors``,
  so the tooling can never be broken by the code it checks;
* the simulation core layers bottom-up as ``errors < storage <
  {policies, faults, analysis} < bufferpool < {workloads, core,
  prefetch} < engine < bench < cli``;
* ``repro.policies`` and ``repro.bufferpool`` in particular must never
  import the engine/bench/faults-serving layers above them;
* no import cycles at module granularity (module-scope imports only —
  a *deferred* import is the sanctioned way to break a runtime cycle,
  but it still must respect the layer direction).

``TYPE_CHECKING``-gated imports are exempt from both checks: they are
erased at runtime and exist precisely to annotate across layers.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

__all__ = [
    "LAYER_DEPS",
    "ImportEdge",
    "ProjectGraph",
    "extract_edges",
    "package_of",
    "validate_layer_declaration",
]


@dataclass(frozen=True)
class ImportEdge:
    """One intra-``repro`` import, with everything a graph rule needs.

    The edge is self-contained (plain strings and ints) so the parallel
    per-file pass can extract edges inside worker processes and ship
    them back to the orchestrator for graph assembly.
    """

    src_path: str
    src_module: str
    target: str
    lineno: int
    col: int
    deferred: bool
    type_checking: bool
    #: Suppression tags present on the import's source line, captured at
    #: extraction time so graph rules can honour escape hatches without
    #: re-reading the file.
    tags: frozenset[str] = field(default_factory=frozenset)


def _is_type_checking_test(test: ast.expr) -> bool:
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def _resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> str | None:
    """Absolute dotted target of a relative ``from . import`` statement."""
    parts = module.split(".")
    # A package's own __init__ counts as one level deeper than its name.
    keep = len(parts) - node.level + (1 if is_package else 0)
    if keep < 0:
        return None
    base = parts[:keep]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def extract_edges(
    path: str,
    module: str,
    tree: ast.Module,
    line_tags: dict[int, frozenset[str]] | None = None,
    is_package: bool = False,
) -> list[ImportEdge]:
    """All intra-``repro`` import edges of one parsed file."""
    edges: list[ImportEdge] = []
    tags = line_tags or {}

    def record(node: ast.stmt, target: str, deferred: bool, tc: bool) -> None:
        if target != "repro" and not target.startswith("repro."):
            return
        edges.append(
            ImportEdge(
                src_path=path,
                src_module=module,
                target=target,
                lineno=node.lineno,
                col=node.col_offset,
                deferred=deferred,
                type_checking=tc,
                tags=tags.get(node.lineno, frozenset()),
            )
        )

    def visit(body: list[ast.stmt], deferred: bool, tc: bool) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    record(node, alias.name, deferred, tc)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _resolve_relative(module, is_package, node)
                else:
                    base = node.module
                if base is None:
                    continue
                # Record one edge per imported name: ``from repro.storage
                # import device`` targets the submodule, and ``from repro
                # import errors`` the actual module rather than the whole
                # root package.  Symbol imports over-shoot by one component
                # and fall back to the module via longest-prefix resolve.
                for alias in node.names:
                    if alias.name == "*":
                        record(node, base, deferred, tc)
                    else:
                        record(node, f"{base}.{alias.name}", deferred, tc)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(node.body, True, tc)
            elif isinstance(node, ast.ClassDef):
                # Class-scope imports run at module import time.
                visit(node.body, deferred, tc)
            elif isinstance(node, ast.If):
                gated = tc or _is_type_checking_test(node.test)
                visit(node.body, deferred, gated)
                visit(node.orelse, deferred, tc)
            elif isinstance(node, ast.Try):
                visit(node.body, deferred, tc)
                for handler in node.handlers:
                    visit(handler.body, deferred, tc)
                visit(node.orelse, deferred, tc)
                visit(node.finalbody, deferred, tc)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                visit(node.body, deferred, tc)
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                visit(node.body, deferred, tc)
                visit(node.orelse, deferred, tc)
    visit(tree.body, False, False)
    return edges


def package_of(module: str) -> str:
    """The layer key of a dotted module: its top-level ``repro`` package.

    Top-level *modules* (``repro.errors``, ``repro.cli``,
    ``repro.__main__``) and the root package itself are their own layer
    keys; everything else maps to its first two components
    (``repro.policies.lru`` -> ``repro.policies``).
    """
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) > 1 else parts[0]


#: Everything a top-of-stack aggregator may reach.
_ALL_CORE = frozenset({
    "repro.errors", "repro.analysis", "repro.analyze", "repro.storage",
    "repro.policies", "repro.faults", "repro.workloads", "repro.bufferpool",
    "repro.prefetch", "repro.core", "repro.engine", "repro.cluster",
})

#: The declared layer DAG: package -> repro packages it may import
#: directly.  Edges *within* a package are always allowed.  R008 flags
#: any intra-``repro`` import not blessed here.
LAYER_DEPS: dict[str, frozenset[str]] = {
    # Foundation: the shared exception vocabulary imports nothing.
    "repro.errors": frozenset(),
    # Pure math (Che's approximation, the ideal-speedup model).
    "repro.analysis": frozenset({"repro.errors"}),
    # The analysis tooling stands alone: it must be able to lint and
    # sanitize every layer without being importable *from* none of them
    # creating a tangle — only the error types are shared.
    "repro.analyze": frozenset({"repro.errors"}),
    # Device model: SSD latency/FTL/virtual clock.
    "repro.storage": frozenset({"repro.errors"}),
    # Replacement policies see pages only through PageStateView.
    "repro.policies": frozenset({"repro.errors"}),
    # Fault injection wraps devices.
    "repro.faults": frozenset({"repro.errors", "repro.storage"}),
    # The pool: descriptors, translation table, WAL, recovery, layout.
    "repro.bufferpool": frozenset({
        "repro.errors", "repro.analyze", "repro.faults", "repro.policies",
        "repro.storage",
    }),
    # Workload generators build schemas on the page-layout layer.
    "repro.workloads": frozenset({
        "repro.errors", "repro.storage", "repro.bufferpool",
    }),
    # Prefetchers observe the request stream.
    "repro.prefetch": frozenset({"repro.errors", "repro.workloads"}),
    # ACE: concurrent write-back/eviction over the pool.
    "repro.core": frozenset({
        "repro.errors", "repro.bufferpool", "repro.faults", "repro.policies",
        "repro.prefetch", "repro.storage",
    }),
    # Execution + serving: replays traces, admission control, breaker.
    "repro.engine": frozenset({
        "repro.errors", "repro.storage", "repro.workloads", "repro.bufferpool",
        "repro.core", "repro.policies",
    }),
    # Sharded cluster: shard routing/placement plus a parallel executor
    # that builds complete per-shard stacks and replays them through the
    # engine.  Replica groups consume the node-level fault schedules from
    # ``repro.faults``.  (``repro.bufferpool.partitioned`` re-exports the
    # moved partitioned pool from here via a declared shim back-edge.)
    "repro.cluster": frozenset({
        "repro.errors", "repro.storage", "repro.policies", "repro.bufferpool",
        "repro.core", "repro.engine", "repro.workloads", "repro.faults",
    }),
    # Verification engines: exhaustive crash-point enumeration drives the
    # execution layer against crash-hooked stacks.
    "repro.verify": frozenset({
        "repro.errors", "repro.storage", "repro.policies", "repro.bufferpool",
        "repro.core", "repro.engine", "repro.workloads",
    }),
    # The experiment harness may use everything below it.
    "repro.bench": _ALL_CORE,
    # Entry points see the whole world.
    "repro.cli": _ALL_CORE | {"repro.bench", "repro.verify"},
    "repro.__main__": _ALL_CORE | {"repro.bench", "repro.cli", "repro.verify"},
    # The root package re-exports the public API.
    "repro": _ALL_CORE | {"repro.bench", "repro.verify"},
}


def validate_layer_declaration(
    deps: dict[str, frozenset[str]] | None = None,
) -> None:
    """Assert the declared layering is itself a DAG over known packages.

    Raises ``ValueError`` on an unknown dependency or a declaration
    cycle — a broken declaration must fail loudly, not silently admit
    every import.
    """
    deps = LAYER_DEPS if deps is None else deps
    for package, allowed in deps.items():
        unknown = allowed - deps.keys()
        if unknown:
            raise ValueError(
                f"layer {package!r} allows unknown packages: {sorted(unknown)}"
            )
    state: dict[str, int] = {}  # 0 visiting, 1 done

    def walk(package: str, trail: tuple[str, ...]) -> None:
        mark = state.get(package)
        if mark == 1:
            return
        if mark == 0:
            cycle = trail[trail.index(package):] + (package,)
            raise ValueError(f"layer declaration cycle: {' -> '.join(cycle)}")
        state[package] = 0
        for dep in sorted(deps[package]):
            walk(dep, trail + (package,))
        state[package] = 1

    for package in deps:
        walk(package, ())


class ProjectGraph:
    """The import graph over every module the lint run collected."""

    def __init__(self, edges: Iterable[ImportEdge], modules: Iterable[str]):
        self.edges: list[ImportEdge] = sorted(
            edges, key=lambda e: (e.src_module, e.lineno, e.col, e.target)
        )
        self.modules: frozenset[str] = frozenset(modules)

    def resolve(self, target: str) -> str | None:
        """Longest known-module prefix of an import target, if any.

        ``from repro.storage.device import SimulatedSSD`` resolves to
        ``repro.storage.device``; ``from repro.storage import device``
        resolves to ``repro.storage.device`` when that module was
        collected, else to ``repro.storage``.
        """
        if target in self.modules:
            return target
        parts = target.split(".")
        while parts:
            parts.pop()
            candidate = ".".join(parts)
            if candidate in self.modules:
                return candidate
        return None

    def runtime_module_edges(self) -> dict[str, set[str]]:
        """Module-scope, non-TYPE_CHECKING edges between collected modules.

        ``from package import submodule`` imports the submodule at
        runtime, so when ``<package>.<name>`` is itself a collected
        module the edge targets it, not just the package ``__init__``.
        """
        adjacency: dict[str, set[str]] = {m: set() for m in self.modules}
        for edge in self.edges:
            if edge.deferred or edge.type_checking:
                continue
            resolved = self.resolve(edge.target)
            if resolved is not None and resolved != edge.src_module:
                adjacency.setdefault(edge.src_module, set()).add(resolved)
        return adjacency

    def cycles(self) -> list[list[str]]:
        """Module-granularity import cycles (Tarjan SCCs of size > 1).

        Each cycle is returned in a deterministic rotation: starting at
        its lexicographically smallest module, following actual edges.
        """
        adjacency = self.runtime_module_edges()
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = 0

        # Iterative Tarjan: the shipped tree is ~100 modules, but fixture
        # trees and future growth should not be bounded by recursion depth.
        for root in sorted(adjacency):
            if root in index:
                continue
            work: list[tuple[str, Iterator[str]]] = [
                (root, iter(sorted(adjacency.get(root, ()))))
            ]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = low[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append(
                            (child, iter(sorted(adjacency.get(child, ()))))
                        )
                        advanced = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(component)
        return [self._rotate_cycle(scc, adjacency) for scc in sorted(sccs)]

    @staticmethod
    def _rotate_cycle(scc: list[str], adjacency: dict[str, set[str]]) -> list[str]:
        members = set(scc)
        start = min(scc)
        ordered = [start]
        current = start
        while True:
            nxt = min(
                (m for m in adjacency.get(current, ()) if m in members and
                 (m not in ordered or m == start)),
                default=None,
            )
            if nxt is None or nxt == start:
                break
            ordered.append(nxt)
            current = nxt
        # Fall back to sorted membership if edge-following stalled (e.g.
        # a dense SCC where the greedy walk closed early).
        if len(ordered) < len(scc):
            ordered = sorted(scc)
        return ordered

    def edge_for(self, src_module: str, target_module: str) -> ImportEdge | None:
        """The first edge from ``src_module`` that resolves to the target."""
        for edge in self.edges:
            if edge.src_module != src_module:
                continue
            if edge.deferred or edge.type_checking:
                continue
            if self.resolve(edge.target) == target_module:
                return edge
        return None
