"""Custom AST lint framework: repo-specific rules over parsed source files.

General-purpose linters (ruff in CI) catch general-purpose mistakes; this
framework exists for the contracts that are specific to this codebase and
invisible to a generic tool — "simulation packages must be deterministic",
"only the bufferpool assigns descriptor state bits", "``eviction_order``
is side-effect-free", "grid jobs must pickle".  The concrete rules live in
:mod:`repro.analyze.rules`; this module provides the machinery:

* :class:`SourceModule` — a parsed file plus the context rules need (the
  dotted module name derived from its path, and per-line suppression tags);
* :class:`LintRule` — the rule interface (``code``, ``check(module)``);
  rules with ``scope = "graph"`` instead implement ``check_graph`` and run
  once over the assembled :class:`~repro.analyze.graph.ProjectGraph`, and
  rules with ``scope = "project"`` implement ``check_project`` and run
  once over every parsed :class:`SourceModule` (cross-file AST contracts);
* :func:`run_lint` — collect files, parse, run the per-file rules (in
  parallel when ``jobs > 1``), assemble the import graph, run the graph
  rules, sort findings;
* :func:`run_cli` — the ``python -m repro lint`` entry point, with
  ``--select/--exclude/--jobs/--format/--output/--baseline`` handling.

Suppressions are per-line comments of the form ``# lint: allow-mutation``
(several tags may be comma-separated).  Each rule documents its tag; the
rule code itself (``# lint: allow-R003``) always works.

Unreadable or unparseable files never crash a run: they surface as a
structured ``E000`` parse-error finding so one bad file cannot hide
findings elsewhere.  ``E000`` is an *error*, not a rule — it ignores
``--select`` and cannot be suppressed.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from collections.abc import Iterable, Sequence
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.analyze.graph import ImportEdge, ProjectGraph, extract_edges

__all__ = [
    "LintRule",
    "PARSE_ERROR",
    "SourceModule",
    "Violation",
    "collect_files",
    "module_name",
    "render_json",
    "render_sarif",
    "run_cli",
    "run_lint",
]

#: Matches the suppression comment; the tail is a comma-separated tag list.
_SUPPRESSION_RE = re.compile(r"#\s*lint:\s*([A-Za-z0-9_,\-\s]+)")

#: The code given to files that cannot be read or parsed.  Outside the
#: ``R0xx`` rule namespace on purpose: it is an error condition of the
#: *run*, always reported, never selectable or suppressible.
PARSE_ERROR = "E000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule fired at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceModule:
    """A parsed source file plus the context lint rules operate on."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        #: Dotted module name rooted at the innermost ``repro``/``tests``/
        #: ``benchmarks`` directory (``src/repro/policies/lru.py`` ->
        #: ``repro.policies.lru``), else the bare stem.  Rules scoped to
        #: packages key off this.
        self.module = module_name(path)
        self._suppressed: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(line)
            if match:
                tags = frozenset(
                    tag.strip() for tag in match.group(1).split(",") if tag.strip()
                )
                self._suppressed[lineno] = tags

    def suppressed(self, line: int, *tags: str) -> bool:
        """Whether the given line carries any of the suppression tags."""
        present = self._suppressed.get(line)
        return bool(present) and any(tag in present for tag in tags)

    def in_package(self, *packages: str) -> bool:
        """Whether the module lives in (or under) one of the dotted packages."""
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False

    def import_edges(self) -> list[ImportEdge]:
        """The file's intra-``repro`` import edges, for graph assembly."""
        return extract_edges(
            str(self.path),
            self.module,
            self.tree,
            line_tags=self._suppressed,
            is_package=self.path.name == "__init__.py",
        )


#: Directory names a dotted module name may be rooted at; the *innermost*
#: occurrence wins, so a fixture tree ``tests/.../fixtures/repro/...``
#: still roots at ``repro`` while ``tests/engine/test_x.py`` roots at
#: ``tests``.
_MODULE_ROOTS = ("repro", "tests", "benchmarks")


def module_name(path: Path) -> str:
    """Derive a dotted module name from a file path."""
    parts = list(path.parts)
    stem = path.stem
    root = -1
    for name in _MODULE_ROOTS:
        try:
            root = max(root, len(parts) - 1 - parts[::-1].index(name))
        except ValueError:
            continue
    if root < 0:
        return stem
    dotted = list(parts[root:-1])
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


class LintRule:
    """Base class for repo-specific lint rules.

    Subclasses set ``code`` (``R00x``), ``name``, ``description``, and
    ``suppression`` (the human-friendly ``# lint: <tag>`` escape hatch),
    and implement :meth:`check`.  Whole-program rules come in two scopes:
    ``scope = "graph"`` rules implement :meth:`check_graph` and see only
    the assembled import graph (edges and module names — cheap enough to
    assemble from the parallel per-file pass); ``scope = "project"`` rules
    implement :meth:`check_project` and see every parsed
    :class:`SourceModule` at once, for contracts that relate *ASTs* in
    different files (e.g. an enum in one module and its dispatch in
    another).  Both run once, in the calling process, after the per-file
    pass.
    """

    code = "R000"
    name = "base"
    description = ""
    suppression: str | None = None
    #: "file" rules get check(module) per file; "graph" rules get
    #: check_graph(graph) once per run; "project" rules get
    #: check_project(modules) once per run.
    scope = "file"

    def check(self, module: SourceModule) -> Iterable[Violation]:
        raise NotImplementedError

    def check_graph(self, graph: ProjectGraph) -> Iterable[Violation]:
        return ()

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterable[Violation]:
        return ()

    def violation(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )

    def allowed(self, module: SourceModule, node: ast.AST) -> bool:
        """Whether the node's line carries this rule's escape hatch."""
        tags = [f"allow-{self.code}"]
        if self.suppression:
            tags.append(self.suppression)
        return module.suppressed(getattr(node, "lineno", 0), *tags)


def collect_files(
    paths: Iterable[str | Path], exclude: Sequence[str] = ()
) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    ``exclude`` holds fnmatch patterns matched against the
    forward-slash form of each path (``tests/analyze/fixtures/*``).
    """
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for found in path.rglob("*.py"):
                if "__pycache__" not in found.parts:
                    files.add(found)
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    if exclude:
        files = {
            f for f in files
            if not any(
                fnmatch.fnmatch(f.as_posix(), pattern) for pattern in exclude
            )
        }
    return sorted(files)


def _parse_error(path: Path, exc: Exception) -> Violation:
    if isinstance(exc, SyntaxError):
        return Violation(
            path=str(path),
            line=exc.lineno or 1,
            col=exc.offset or 0,
            rule=PARSE_ERROR,
            message=f"syntax error: {exc.msg}",
        )
    return Violation(
        path=str(path),
        line=1,
        col=0,
        rule=PARSE_ERROR,
        message=f"cannot read file: {exc}",
    )


def _analyze_file(
    path: Path, rules: Sequence[LintRule]
) -> tuple[list[Violation], list[ImportEdge], str | None]:
    """One file through the per-file rules: (violations, edges, module).

    ``module`` is None when the file failed to parse (the violations then
    hold the ``E000`` finding and the edges are empty).
    """
    try:
        source = path.read_text(encoding="utf-8")
        module = SourceModule(path, source)
    except (SyntaxError, UnicodeDecodeError, OSError, ValueError) as exc:
        return [_parse_error(path, exc)], [], None
    violations: list[Violation] = []
    for rule in rules:
        if rule.scope == "file":
            violations.extend(rule.check(module))
    return violations, module.import_edges(), module.module


def _analyze_file_by_codes(
    path_str: str, codes: Sequence[str]
) -> tuple[list[Violation], list[ImportEdge], str | None]:
    """Worker-process entry: rules are shipped by code, not by object."""
    from repro.analyze.rules import RULES_BY_CODE

    rules = [RULES_BY_CODE[code] for code in codes]
    return _analyze_file(Path(path_str), rules)


def _select_rules(
    rules: Sequence[LintRule], select: Sequence[str] | None
) -> list[LintRule]:
    if select is None:
        return list(rules)
    wanted = {code.strip().upper() for code in select if code.strip()}
    chosen = [rule for rule in rules if rule.code in wanted]
    unknown = wanted - {rule.code for rule in rules}
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return chosen


def run_lint(
    paths: Iterable[str | Path],
    rules: Sequence[LintRule] | None = None,
    select: Sequence[str] | None = None,
    exclude: Sequence[str] = (),
    jobs: int = 1,
) -> tuple[list[Violation], int]:
    """Run the rules over every ``.py`` file under ``paths``.

    Returns the sorted violation list and the number of files checked.
    The per-file pass fans out over ``jobs`` worker processes when
    ``jobs > 1`` *and* every rule is a stock rule (custom rule objects
    cannot be shipped by code, so they force the serial path).  Graph
    rules always run in the calling process, over the import graph
    assembled from the per-file results.
    """
    if rules is None:
        from repro.analyze.rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    rules = _select_rules(rules, select)
    files = collect_files(paths, exclude=exclude)
    violations: list[Violation] = []
    edges: list[ImportEdge] = []
    modules: list[str] = []

    def absorb(
        result: tuple[list[Violation], list[ImportEdge], str | None],
    ) -> None:
        file_violations, file_edges, module = result
        violations.extend(file_violations)
        edges.extend(file_edges)
        if module is not None:
            modules.append(module)

    from repro.analyze.rules import RULES_BY_CODE

    stock = all(RULES_BY_CODE.get(rule.code) is rule for rule in rules)
    if jobs > 1 and stock and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        codes = [rule.code for rule in rules]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(
                _analyze_file_by_codes,
                [str(path) for path in files],
                [codes] * len(files),
                chunksize=8,
            ):
                absorb(result)
    else:
        for path in files:
            absorb(_analyze_file(path, rules))

    graph_rules = [rule for rule in rules if rule.scope == "graph"]
    if graph_rules:
        graph = ProjectGraph(edges, modules)
        for rule in graph_rules:
            violations.extend(rule.check_graph(graph))

    project_rules = [rule for rule in rules if rule.scope == "project"]
    if project_rules:
        # Project rules need the ASTs themselves, which never cross the
        # worker-process boundary — re-parse in the calling process.
        # Unparseable files are skipped here; the per-file pass already
        # reported them as E000.
        source_modules: list[SourceModule] = []
        for path in files:
            try:
                source = path.read_text(encoding="utf-8")
                source_modules.append(SourceModule(path, source))
            except (SyntaxError, UnicodeDecodeError, OSError, ValueError):
                continue
        for rule in project_rules:
            violations.extend(rule.check_project(source_modules))
    return sorted(violations), len(files)


# -- output formats ---------------------------------------------------------


def render_json(violations: Sequence[Violation], files: int) -> str:
    return json.dumps(
        {
            "files": files,
            "violations": [asdict(violation) for violation in violations],
        },
        indent=2,
    )


def render_sarif(
    violations: Sequence[Violation],
    rules: Sequence[LintRule],
) -> str:
    """SARIF 2.1.0, the shape GitHub code scanning ingests."""
    rule_ids = sorted(
        {violation.rule for violation in violations}
        | {rule.code for rule in rules}
    )
    described = {rule.code: rule for rule in rules}
    sarif_rules = []
    for rule_id in rule_ids:
        rule = described.get(rule_id)
        entry: dict = {"id": rule_id}
        if rule is not None:
            entry["name"] = rule.name
            entry["shortDescription"] = {"text": rule.description or rule.name}
        elif rule_id == PARSE_ERROR:
            entry["name"] = "parse-error"
            entry["shortDescription"] = {
                "text": "file could not be read or parsed"
            }
        sarif_rules.append(entry)
    results = [
        {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(violation.path).as_posix(),
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/architecture"
                        ),
                        "rules": sarif_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def _emit(text: str, output: str | None) -> None:
    if output is None:
        print(text)
    else:
        Path(output).write_text(text + "\n", encoding="utf-8")


def run_cli(
    paths: Sequence[str],
    list_rules: bool = False,
    select: Sequence[str] | None = None,
    exclude: Sequence[str] = (),
    jobs: int = 1,
    fmt: str = "text",
    output: str | None = None,
    baseline: str | None = None,
    write_baseline: str | None = None,
) -> int:
    """``python -m repro lint`` behaviour: print findings, return exit code."""
    from repro.analyze.rules import DEFAULT_RULES

    if list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.code} {rule.name}: {rule.description}")
        return 0
    try:
        violations, files = run_lint(
            paths or ["src"], select=select, exclude=exclude, jobs=jobs
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2

    known: list[Violation] = []
    if write_baseline is not None:
        from repro.analyze.baseline import write_baseline_file

        write_baseline_file(write_baseline, violations)
        print(
            f"baseline: recorded {len(violations)} finding(s) from "
            f"{files} file(s) into {write_baseline}"
        )
        return 0
    if baseline is not None:
        from repro.analyze.baseline import load_baseline, split_by_baseline

        violations, known = split_by_baseline(
            violations, load_baseline(baseline)
        )

    if fmt == "json":
        _emit(render_json(violations, files), output)
    elif fmt == "sarif":
        _emit(render_sarif(violations, DEFAULT_RULES), output)
    else:
        for violation in known:
            print(f"warning (baselined): {violation.format()}")
        for violation in violations:
            print(violation.format())
        if violations:
            print(
                f"{len(violations)} violation(s) in {files} file(s) checked"
            )
        elif known:
            print(
                f"OK: {files} file(s); {len(known)} baselined finding(s) "
                "suppressed"
            )
        else:
            print(f"OK: {files} file(s) clean")
    if fmt in {"json", "sarif"} and output is not None and violations:
        # Machine formats going to a file still need a console verdict.
        print(
            f"{len(violations)} violation(s) in {files} file(s) checked "
            f"(written to {output})"
        )
    return 1 if violations else 0
