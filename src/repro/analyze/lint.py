"""Custom AST lint framework: repo-specific rules over parsed source files.

General-purpose linters (ruff in CI) catch general-purpose mistakes; this
framework exists for the contracts that are specific to this codebase and
invisible to a generic tool — "simulation packages must be deterministic",
"only the bufferpool assigns descriptor state bits", "``eviction_order``
is side-effect-free", "grid jobs must pickle".  The concrete rules live in
:mod:`repro.analyze.rules`; this module provides the machinery:

* :class:`SourceModule` — a parsed file plus the context rules need (the
  dotted module name derived from its path, and per-line suppression tags);
* :class:`LintRule` — the rule interface (``code``, ``check(module)``);
* :func:`run_lint` — collect files, parse, run every rule, sort findings;
* :func:`run_cli` — the ``python -m repro lint`` entry point.

Suppressions are per-line comments of the form ``# lint: allow-mutation``
(several tags may be comma-separated).  Each rule documents its tag; the
rule code itself (``# lint: allow-R003``) always works.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "LintRule",
    "SourceModule",
    "Violation",
    "collect_files",
    "module_name",
    "run_cli",
    "run_lint",
]

#: Matches the suppression comment; the tail is a comma-separated tag list.
_SUPPRESSION_RE = re.compile(r"#\s*lint:\s*([A-Za-z0-9_,\-\s]+)")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule fired at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceModule:
    """A parsed source file plus the context lint rules operate on."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        #: Dotted module name when the file sits under a ``repro`` package
        #: directory (``src/repro/policies/lru.py`` -> ``repro.policies.lru``),
        #: else the bare stem.  Rules scoped to packages key off this.
        self.module = module_name(path)
        self._suppressed: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(line)
            if match:
                tags = frozenset(
                    tag.strip() for tag in match.group(1).split(",") if tag.strip()
                )
                self._suppressed[lineno] = tags

    def suppressed(self, line: int, *tags: str) -> bool:
        """Whether the given line carries any of the suppression tags."""
        present = self._suppressed.get(line)
        return bool(present) and any(tag in present for tag in tags)

    def in_package(self, *packages: str) -> bool:
        """Whether the module lives in (or under) one of the dotted packages."""
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False


def module_name(path: Path) -> str:
    """Derive a dotted module name from a file path.

    The name is rooted at the innermost ``repro`` directory so the same
    rule scoping works for the shipped tree (``src/repro/...``) and for
    test fixtures laid out as ``tests/.../fixtures/repro/...``.
    """
    parts = list(path.parts)
    stem = path.stem
    try:
        root = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return stem
    dotted = list(parts[root:-1])
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


class LintRule:
    """Base class for repo-specific lint rules.

    Subclasses set ``code`` (``R00x``), ``name``, ``description``, and
    ``suppression`` (the human-friendly ``# lint: <tag>`` escape hatch),
    and implement :meth:`check`.
    """

    code = "R000"
    name = "base"
    description = ""
    suppression: str | None = None

    def check(self, module: SourceModule) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.code,
            message=message,
        )

    def allowed(self, module: SourceModule, node: ast.AST) -> bool:
        """Whether the node's line carries this rule's escape hatch."""
        tags = [f"allow-{self.code}"]
        if self.suppression:
            tags.append(self.suppression)
        return module.suppressed(getattr(node, "lineno", 0), *tags)


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for found in path.rglob("*.py"):
                if "__pycache__" not in found.parts:
                    files.add(found)
        elif path.suffix == ".py":
            files.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def run_lint(
    paths: Iterable[str | Path],
    rules: Sequence[LintRule] | None = None,
) -> tuple[list[Violation], int]:
    """Run the rules over every ``.py`` file under ``paths``.

    Returns the sorted violation list and the number of files checked.
    Unparseable files yield an ``R000`` violation instead of crashing the
    run, so one syntax error cannot hide findings elsewhere.
    """
    if rules is None:
        from repro.analyze.rules import DEFAULT_RULES

        rules = DEFAULT_RULES
    files = collect_files(paths)
    violations: list[Violation] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            module = SourceModule(path, source)
        except SyntaxError as exc:
            violations.append(
                Violation(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule="R000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            violations.extend(rule.check(module))
    return sorted(violations), len(files)


def run_cli(paths: Sequence[str], list_rules: bool = False) -> int:
    """``python -m repro lint`` behaviour: print findings, return exit code."""
    from repro.analyze.rules import DEFAULT_RULES

    if list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.code} {rule.name}: {rule.description}")
        return 0
    violations, files = run_lint(paths or ["src"])
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s) in {files} file(s) checked")
        return 1
    print(f"OK: {files} file(s) clean")
    return 0
