"""Device profiles replicating the paper's experimental SSDs (Table I).

The paper characterises four devices through careful benchmarking::

    Device        alpha   k_r   k_w
    Optane SSD     1.1      6     5
    PCIe SSD       2.8     80     8
    SATA SSD       1.5     25     9
    Virtual SSD    2.0     11    19

``alpha`` and ``k`` come straight from Table I.  Base read latencies are not
reported in the paper; we pick representative values for each device class
(Optane ~10us random read, datacenter NVMe ~90us, SATA ~170us, and a
network-attached virtual volume ~240us) consistent with the paper's remark
that the SATA and Virtual SSDs are "significantly slower than the PCIe SSD".
Absolute runtimes therefore differ from the paper's testbed, but relative
behaviour — which is what every figure reports — is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.storage.latency import LatencyModel

__all__ = [
    "DeviceProfile",
    "OPTANE_SSD",
    "PCIE_SSD",
    "SATA_SSD",
    "VIRTUAL_SSD",
    "PAPER_DEVICES",
    "emulated_profile",
]


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of a storage device used to build simulators.

    Attributes
    ----------
    name:
        Human-readable device name (used in reports).
    alpha:
        Read/write asymmetry (write latency / read latency).
    k_r, k_w:
        Read and write concurrency.
    read_latency_us:
        Single-page random read latency.
    submit_overhead_us, queue_overhead_us, queue_overhead_write_us:
        Per-I/O submission cost and quadratic queue-pressure coefficients
        (see :class:`repro.storage.latency.LatencyModel`).
    """

    name: str
    alpha: float
    k_r: int
    k_w: int
    read_latency_us: float
    submit_overhead_us: float = 1.0
    queue_overhead_us: float = 0.02
    queue_overhead_write_us: float | None = None

    def latency_model(self) -> LatencyModel:
        """Build the analytical latency model for this device."""
        return LatencyModel(
            read_latency_us=self.read_latency_us,
            alpha=self.alpha,
            k_r=self.k_r,
            k_w=self.k_w,
            submit_overhead_us=self.submit_overhead_us,
            queue_overhead_us=self.queue_overhead_us,
            queue_overhead_write_us=self.queue_overhead_write_us,
        )

    def with_(self, **changes: object) -> "DeviceProfile":
        """Return a copy of this profile with the given fields replaced."""
        return replace(self, **changes)


#: Intel Optane P4800X (375 GB). 3D XPoint: near-symmetric, modest parallelism.
OPTANE_SSD = DeviceProfile(
    name="Optane SSD", alpha=1.1, k_r=6, k_w=5, read_latency_us=10.0,
    submit_overhead_us=0.5, queue_overhead_us=0.01,
)

#: Intel P4510 (1 TB) datacenter NVMe. High asymmetry, deep read parallelism.
#: Write queue pressure is higher than read queue pressure (flash program
#: interference), which is what caps the useful write batch at k_w.
PCIE_SSD = DeviceProfile(
    name="PCIe SSD", alpha=2.8, k_r=80, k_w=8, read_latency_us=90.0,
    submit_overhead_us=1.0, queue_overhead_us=0.01,
    queue_overhead_write_us=0.3,
)

#: Intel S4610 (240 GB) SATA SSD.
SATA_SSD = DeviceProfile(
    name="SATA SSD", alpha=1.5, k_r=25, k_w=9, read_latency_us=170.0,
    submit_overhead_us=1.5, queue_overhead_us=0.05,
)

#: AWS gp2-class network volume (1.2 TB, 60k provisioned IOPS).  k here
#: reflects the provider's IOPS throttling rather than flash internals,
#: which is why its k_w exceeds k_r (Table I footnote in the paper).
VIRTUAL_SSD = DeviceProfile(
    name="Virtual SSD", alpha=2.0, k_r=11, k_w=19, read_latency_us=240.0,
    submit_overhead_us=2.0, queue_overhead_us=0.05,
)

#: The four devices of Table I, in the paper's order.
PAPER_DEVICES = (OPTANE_SSD, PCIE_SSD, SATA_SSD, VIRTUAL_SSD)


def emulated_profile(
    alpha: float,
    k_w: int,
    k_r: int | None = None,
    read_latency_us: float = 100.0,
) -> DeviceProfile:
    """Build an idealised emulated device, as used for Figures 2 and 10h.

    The paper's last experiment emulates devices with ideal asymmetry
    ``alpha`` in 1..8 at fixed ``k_w = 8``.  Emulated devices have zero
    submission overhead so the measured speedup matches the closed-form
    model exactly.
    """
    if k_r is None:
        k_r = max(k_w * 4, 8)
    return DeviceProfile(
        name=f"Emulated(alpha={alpha:g},k_w={k_w})",
        alpha=alpha,
        k_r=k_r,
        k_w=k_w,
        read_latency_us=read_latency_us,
        submit_overhead_us=0.0,
        queue_overhead_us=0.0,
    )
