"""Empirical measurement of device asymmetry and concurrency (Table I).

The paper determines each device's ``alpha``, ``k_r`` and ``k_w`` "through
careful benchmarking" rather than from spec sheets.  This module reproduces
that methodology against the simulator: it *measures* latencies and
throughputs through the public device API and derives the parameters, so the
Table I bench regenerates the numbers instead of echoing configuration.

* **Asymmetry** is the ratio of mean single-page write latency to mean
  single-page read latency.
* **Concurrency** is found from the batch-throughput curve: submit batches
  of increasing size and report the size that maximises pages/second (the
  knee where one device "wave" is exactly full).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile

__all__ = ["MeasuredProfile", "measure_asymmetry", "measure_concurrency", "probe_device"]

_PROBE_PAGES = 4096


@dataclass(frozen=True)
class MeasuredProfile:
    """Empirically measured device characteristics."""

    name: str
    alpha: float
    k_r: int
    k_w: int
    read_latency_us: float
    write_latency_us: float


def _fresh_device(profile: DeviceProfile) -> SimulatedSSD:
    return SimulatedSSD(profile, num_pages=_PROBE_PAGES)


def measure_asymmetry(
    profile: DeviceProfile, samples: int = 128, seed: int = 7
) -> tuple[float, float, float]:
    """Measure (alpha, mean read us, mean write us) for a device profile.

    Issues ``samples`` random single-page reads and writes on a fresh device
    instance and compares mean latencies, exactly as an fio-style
    microbenchmark would.
    """
    if samples <= 0:
        raise ValueError("need at least one sample")
    rng = random.Random(seed)
    device = _fresh_device(profile)
    pages = [rng.randrange(_PROBE_PAGES) for _ in range(samples)]

    t0 = device.clock.now_us
    for page in pages:
        device.read_page(page)
    read_us = (device.clock.now_us - t0) / samples

    t0 = device.clock.now_us
    for page in pages:
        device.write_page(page, payload=0)
    write_us = (device.clock.now_us - t0) / samples

    return write_us / read_us, read_us, write_us


def measure_concurrency(
    profile: DeviceProfile,
    kind: str,
    max_batch: int = 128,
    trials: int = 8,
    seed: int = 11,
) -> int:
    """Measure read or write concurrency from the throughput-vs-batch curve.

    For each batch size ``n`` the probe submits ``trials`` random batches
    and computes throughput ``n / mean latency``.  The measured concurrency
    is the smallest batch size achieving the maximum throughput: beyond the
    device's parallelism a batch needs a second wave (throughput drops),
    and per-I/O queue pressure makes larger equal-wave batches strictly
    worse.
    """
    if kind not in ("read", "write"):
        raise ValueError(f"kind must be 'read' or 'write', got {kind!r}")
    if max_batch < 1:
        raise ValueError("max_batch must be at least 1")
    rng = random.Random(seed)
    device = _fresh_device(profile)

    best_k = 1
    best_throughput = 0.0
    for n in range(1, max_batch + 1):
        t0 = device.clock.now_us
        for _ in range(trials):
            batch = rng.sample(range(_PROBE_PAGES), n)
            if kind == "read":
                device.read_batch(batch)
            else:
                device.write_batch(dict.fromkeys(batch, 0))
        mean_latency = (device.clock.now_us - t0) / trials
        throughput = n / mean_latency
        if throughput > best_throughput * (1.0 + 1e-9):
            best_throughput = throughput
            best_k = n
    return best_k


def probe_device(profile: DeviceProfile, max_batch: int = 128) -> MeasuredProfile:
    """Measure alpha, k_r and k_w of a device profile (regenerates Table I)."""
    alpha, read_us, write_us = measure_asymmetry(profile)
    k_r = measure_concurrency(profile, "read", max_batch=max_batch)
    k_w = measure_concurrency(profile, "write", max_batch=max_batch)
    return MeasuredProfile(
        name=profile.name,
        alpha=alpha,
        k_r=k_r,
        k_w=k_w,
        read_latency_us=read_us,
        write_latency_us=write_us,
    )
