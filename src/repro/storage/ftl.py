"""Flash translation layer: out-of-place writes, garbage collection, wear.

The paper measures *physical* writes (via SMART attributes) alongside
*logical* writes to show that ACE's batched write-backs do not increase SSD
wear (Table III, Figure 9), and observes physical writes running 5-6x higher
than logical writes due to garbage collection and wear-leveling.  This
module implements the mechanism that produces that gap:

* logical pages are mapped to physical (block, slot) locations;
* every update is **out-of-place**: the old slot is invalidated and the new
  version is programmed at the current write frontier;
* when the pool of free blocks runs low, greedy **garbage collection**
  relocates the valid pages of the block with the fewest valid pages and
  erases it;
* **wear-leveling** breaks GC ties towards blocks with fewer erases, keeping
  per-block erase counts balanced.

Latency is *not* modelled here — the amortised latency effect of GC is what
the device's ``alpha`` captures (see :mod:`repro.storage.latency`).  The FTL
is pure accounting: logical writes, physical writes (host programs + GC
relocations), erase counts, and the resulting write amplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FlashTranslationLayer", "FtlCounters", "FtlError"]

_FREE = 0
_VALID = 1
_INVALID = 2


class FtlError(RuntimeError):
    """Raised when the FTL reaches an impossible state (e.g. no GC victim)."""


@dataclass
class FtlCounters:
    """Write/erase accounting exposed by the FTL."""

    logical_writes: int = 0
    physical_writes: int = 0
    gc_relocations: int = 0
    erases: int = 0
    gc_invocations: int = 0

    @property
    def write_amplification(self) -> float:
        """Physical / logical write ratio (1.0 when no writes happened)."""
        if self.logical_writes == 0:
            return 1.0
        return self.physical_writes / self.logical_writes

    def copy(self) -> "FtlCounters":
        return FtlCounters(
            logical_writes=self.logical_writes,
            physical_writes=self.physical_writes,
            gc_relocations=self.gc_relocations,
            erases=self.erases,
            gc_invocations=self.gc_invocations,
        )


@dataclass
class _Block:
    """One erase block: per-slot state plus wear bookkeeping."""

    index: int
    pages_per_block: int
    erase_count: int = 0
    write_ptr: int = 0
    valid_count: int = 0
    slot_state: list[int] = field(default_factory=list)
    slot_owner: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.slot_state:
            self.slot_state = [_FREE] * self.pages_per_block
            self.slot_owner = [-1] * self.pages_per_block

    @property
    def is_full(self) -> bool:
        return self.write_ptr >= self.pages_per_block

    def erase(self) -> None:
        self.erase_count += 1
        self.write_ptr = 0
        self.valid_count = 0
        for i in range(self.pages_per_block):
            self.slot_state[i] = _FREE
            self.slot_owner[i] = -1


class FlashTranslationLayer:
    """Page-mapped FTL with greedy, wear-aware garbage collection.

    Parameters
    ----------
    num_logical_pages:
        Exported capacity, in pages.
    pages_per_block:
        Erase-block size in pages (flash erases whole blocks; the paper
        notes erase granularity of 4-64 MB vs page granularity of 512 B -
        32 KB, which is the root cause of asymmetry).
    over_provision:
        Fraction of extra physical capacity hidden from the host.  Smaller
        over-provisioning means GC runs with fuller blocks and write
        amplification rises — mirroring a well-utilised drive.
    gc_free_block_threshold:
        Garbage collection starts when the free-block pool drops below this
        count and runs until the pool is replenished above it.
    """

    def __init__(
        self,
        num_logical_pages: int,
        pages_per_block: int = 64,
        over_provision: float = 0.10,
        gc_free_block_threshold: int = 2,
    ) -> None:
        if num_logical_pages <= 0:
            raise ValueError("capacity must be positive")
        if pages_per_block < 2:
            raise ValueError("an erase block must hold at least 2 pages")
        if not 0.02 <= over_provision <= 1.0:
            raise ValueError(
                f"over-provision must be in [0.02, 1.0], got {over_provision}"
            )
        if gc_free_block_threshold < 1:
            raise ValueError("GC threshold must be at least 1 free block")

        self.num_logical_pages = num_logical_pages
        self.pages_per_block = pages_per_block
        self.over_provision = over_provision
        self.gc_free_block_threshold = gc_free_block_threshold

        physical_pages = int(num_logical_pages * (1.0 + over_provision))
        num_blocks = -(-physical_pages // pages_per_block)  # ceil division
        # Reserve headroom so GC always has room to relocate one full block
        # plus the free pool it must maintain.
        num_blocks += gc_free_block_threshold + 2
        self._blocks = [_Block(i, pages_per_block) for i in range(num_blocks)]
        self._free_blocks: list[int] = list(range(num_blocks - 1, 0, -1))
        self._active: _Block = self._blocks[0]
        # logical page -> (block index, slot) or None when unmapped
        self._mapping: list[tuple[int, int] | None] = [None] * num_logical_pages
        self.counters = FtlCounters()

    # ------------------------------------------------------------------ API

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks)

    def is_mapped(self, lpn: int) -> bool:
        """Whether logical page ``lpn`` has ever been written."""
        self._check_lpn(lpn)
        return self._mapping[lpn] is not None

    def physical_location(self, lpn: int) -> tuple[int, int] | None:
        """Current (block, slot) of ``lpn``, or ``None`` if unmapped."""
        self._check_lpn(lpn)
        return self._mapping[lpn]

    def write(self, lpn: int) -> None:
        """Record a host write of logical page ``lpn`` (out-of-place)."""
        self._check_lpn(lpn)
        self.counters.logical_writes += 1
        self._program(lpn, is_relocation=False)
        self._maybe_collect()

    def read(self, lpn: int) -> bool:
        """Record a host read; returns whether the page was ever written."""
        self._check_lpn(lpn)
        return self._mapping[lpn] is not None

    def trim(self, lpn: int) -> None:
        """Discard logical page ``lpn`` (e.g. file deletion)."""
        self._check_lpn(lpn)
        location = self._mapping[lpn]
        if location is not None:
            self._invalidate(location)
            self._mapping[lpn] = None

    def erase_counts(self) -> list[int]:
        """Per-block erase counts (wear-leveling diagnostics)."""
        return [block.erase_count for block in self._blocks]

    def reset_counters(self) -> None:
        """Zero the write/erase counters without touching the mapping."""
        self.counters = FtlCounters()

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if internal bookkeeping is inconsistent.

        Used by the property-based test suite: total valid slots must equal
        the number of mapped logical pages, every mapping must point at a
        VALID slot owned by that page, and valid counts must be exact.
        """
        mapped = 0
        for lpn, location in enumerate(self._mapping):
            if location is None:
                continue
            mapped += 1
            block_idx, slot = location
            block = self._blocks[block_idx]
            assert block.slot_state[slot] == _VALID, (
                f"lpn {lpn} maps to non-valid slot {location}"
            )
            assert block.slot_owner[slot] == lpn, (
                f"slot {location} owned by {block.slot_owner[slot]}, not {lpn}"
            )
        total_valid = sum(block.valid_count for block in self._blocks)
        assert total_valid == mapped, f"valid slots {total_valid} != mapped {mapped}"
        for block in self._blocks:
            actual = sum(1 for s in block.slot_state if s == _VALID)
            assert actual == block.valid_count, (
                f"block {block.index}: counted {actual} valid, cached "
                f"{block.valid_count}"
            )

    # ------------------------------------------------------------- internals

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.num_logical_pages:
            raise IndexError(
                f"logical page {lpn} out of range [0, {self.num_logical_pages})"
            )

    def _invalidate(self, location: tuple[int, int]) -> None:
        block_idx, slot = location
        block = self._blocks[block_idx]
        block.slot_state[slot] = _INVALID
        block.slot_owner[slot] = -1
        block.valid_count -= 1

    def _program(self, lpn: int, is_relocation: bool) -> None:
        old = self._mapping[lpn]
        if old is not None:
            self._invalidate(old)
        if self._active.is_full:
            self._open_new_active()
        block = self._active
        slot = block.write_ptr
        block.write_ptr += 1
        block.slot_state[slot] = _VALID
        block.slot_owner[slot] = lpn
        block.valid_count += 1
        self._mapping[lpn] = (block.index, slot)
        self.counters.physical_writes += 1
        if is_relocation:
            self.counters.gc_relocations += 1

    def _open_new_active(self) -> None:
        if not self._free_blocks:
            raise FtlError(
                "no free blocks left: over-provisioning exhausted "
                "(GC threshold too low for this write pattern)"
            )
        self._active = self._blocks[self._free_blocks.pop()]

    def _maybe_collect(self) -> None:
        while len(self._free_blocks) < self.gc_free_block_threshold:
            self._collect_one()

    def _collect_one(self) -> None:
        victim = self._pick_victim()
        if victim is None:
            raise FtlError("garbage collection found no victim block")
        self.counters.gc_invocations += 1
        for slot in range(self.pages_per_block):
            if victim.slot_state[slot] == _VALID:
                self._program(victim.slot_owner[slot], is_relocation=True)
        victim.erase()
        self.counters.erases += 1
        self._free_blocks.append(victim.index)

    def _pick_victim(self) -> _Block | None:
        """Greedy victim choice: fewest valid pages, wear-aware tie-break."""
        free = set(self._free_blocks)
        best: _Block | None = None
        for block in self._blocks:
            if block.index == self._active.index or block.index in free:
                continue
            if block.valid_count >= block.write_ptr:
                # No invalid slots: erasing would shuffle data without
                # reclaiming any space (and could loop forever).
                continue
            if best is None or (block.valid_count, block.erase_count) < (
                best.valid_count,
                best.erase_count,
            ):
                best = block
        return best
