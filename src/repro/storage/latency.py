"""Analytical latency model for an SSD with asymmetry and concurrency.

The model follows the paper's characterisation of modern SSDs (Section II):

* **Asymmetry** ``alpha``: a page write costs ``alpha`` times a page read.
  ``alpha`` folds in the amortised cost of out-of-place updates and garbage
  collection (the mechanisms themselves are modelled separately by
  :mod:`repro.storage.ftl` for *write accounting*; their *latency* impact is
  what ``alpha`` captures).
* **Concurrency** ``k_r`` / ``k_w``: up to ``k`` I/Os of the same kind
  proceed in parallel at (approximately) the latency of one.  A batch of
  ``n`` I/Os therefore completes in ``ceil(n / k)`` device "waves".
* **Submission overhead**: each I/O in a batch pays a small fixed cost
  (syscall / queueing), plus a superlinear queue-pressure term.  The
  quadratic term models the thread/queue management overhead the paper
  observes when ``n_w`` exceeds the device concurrency (Figure 10g: speedup
  peaks at ``n_w = k_w`` and *declines* beyond it).

A batch of ``n`` reads costs::

    ceil(n / k_r) * read_latency + n * submit_overhead + n^2 * queue_overhead

and a batch of ``n`` writes costs the same with ``k_w`` and
``alpha * read_latency``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """Closed-form batch latency for a device with (``alpha``, ``k_r``, ``k_w``).

    Parameters
    ----------
    read_latency_us:
        Latency of a single page read, in microseconds.
    alpha:
        Read/write asymmetry; a single page write costs
        ``alpha * read_latency_us``.
    k_r, k_w:
        Read and write concurrency: how many I/Os of each kind the device
        can serve in parallel without queueing.
    submit_overhead_us:
        Fixed per-I/O submission cost (added once per I/O in a batch).
    queue_overhead_us:
        Quadratic queue-pressure coefficient for reads; a batch of ``n``
        reads pays an extra ``queue_overhead_us * n**2``.  Small but
        nonzero so that oversubmitting is strictly worse.
    queue_overhead_write_us:
        Quadratic queue-pressure coefficient for writes.  Defaults to the
        read coefficient; flash program interference makes write queue
        pressure higher on real devices, which is what produces the
        speedup decline past ``n_w = k_w`` in Figure 10g.
    """

    read_latency_us: float = 100.0
    alpha: float = 1.0
    k_r: int = 1
    k_w: int = 1
    submit_overhead_us: float = 1.0
    queue_overhead_us: float = 0.02
    queue_overhead_write_us: float | None = None

    def __post_init__(self) -> None:
        if self.read_latency_us <= 0:
            raise ValueError("read latency must be positive")
        if self.alpha < 1.0:
            raise ValueError(
                f"alpha < 1 would mean writes are faster than reads: {self.alpha}"
            )
        if self.k_r < 1 or self.k_w < 1:
            raise ValueError("concurrency levels must be at least 1")
        if self.queue_overhead_write_us is None:
            object.__setattr__(
                self, "queue_overhead_write_us", self.queue_overhead_us
            )
        if (
            self.submit_overhead_us < 0
            or self.queue_overhead_us < 0
            or self.queue_overhead_write_us < 0
        ):
            raise ValueError("overheads cannot be negative")

    @property
    def write_latency_us(self) -> float:
        """Latency of a single page write (before submission overhead)."""
        return self.alpha * self.read_latency_us

    def read_batch_us(self, n: int) -> float:
        """Total latency of ``n`` concurrently submitted page reads."""
        return self._batch_us(n, self.read_latency_us, self.k_r, self.queue_overhead_us)

    def write_batch_us(self, n: int) -> float:
        """Total latency of ``n`` concurrently submitted page writes."""
        return self._batch_us(
            n, self.write_latency_us, self.k_w, self.queue_overhead_write_us
        )

    def _batch_us(self, n: int, unit_us: float, k: int, queue_us: float) -> float:
        if n < 0:
            raise ValueError(f"batch size cannot be negative: {n}")
        if n == 0:
            return 0.0
        waves = math.ceil(n / k)
        overhead = n * self.submit_overhead_us + n * n * queue_us
        return waves * unit_us + overhead

    def amortized_write_us(self, n: int) -> float:
        """Per-page cost of writing ``n`` pages in one concurrent batch.

        This is the quantity ACE's Writer optimises: it is minimised at
        ``n = k_w`` (one full wave) and degrades for ``n > k_w``.
        """
        if n <= 0:
            raise ValueError(f"batch size must be positive: {n}")
        return self.write_batch_us(n) / n

    def effective_asymmetry(self, n_w: int) -> float:
        """Asymmetry *after* write amortization over a batch of ``n_w``.

        The paper argues ACE "bridges the asymmetry" when
        ``alpha <= k_w``: a full write wave costs one write latency for
        ``k_w`` pages, so the per-page write cost approaches
        ``alpha / k_w`` reads.
        """
        return self.amortized_write_us(n_w) / self.read_latency_us
