"""Storage substrate: virtual-clock SSD simulator, FTL, profiles, probes.

This package replaces the paper's physical SSDs (Optane/PCIe/SATA/Virtual)
with deterministic simulators parameterised by the same (alpha, k_r, k_w)
characteristics the paper measures in Table I.
"""

from repro.storage.clock import VirtualClock
from repro.storage.device import DeviceStats, SimulatedSSD
from repro.storage.ftl import FlashTranslationLayer, FtlCounters, FtlError
from repro.storage.latency import LatencyModel
from repro.storage.probe import (
    MeasuredProfile,
    measure_asymmetry,
    measure_concurrency,
    probe_device,
)
from repro.storage.profiles import (
    OPTANE_SSD,
    PAPER_DEVICES,
    PCIE_SSD,
    SATA_SSD,
    VIRTUAL_SSD,
    DeviceProfile,
    emulated_profile,
)
from repro.storage.smart import SmartAttributes, SmartMonitor

__all__ = [
    "VirtualClock",
    "SimulatedSSD",
    "DeviceStats",
    "FlashTranslationLayer",
    "FtlCounters",
    "FtlError",
    "LatencyModel",
    "DeviceProfile",
    "OPTANE_SSD",
    "PCIE_SSD",
    "SATA_SSD",
    "VIRTUAL_SSD",
    "PAPER_DEVICES",
    "emulated_profile",
    "MeasuredProfile",
    "measure_asymmetry",
    "measure_concurrency",
    "probe_device",
    "SmartAttributes",
    "SmartMonitor",
]
