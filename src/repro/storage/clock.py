"""Virtual time source shared by simulated devices and the execution engine.

The reproduction deliberately avoids real threads and real sleeps: under
CPython's GIL, genuine concurrent I/O submission would be dominated by
interpreter overhead and would blur the asymmetry/concurrency effects the
paper isolates.  Instead, every component that "spends time" advances a
shared :class:`VirtualClock`, and batch costs are computed analytically by
:class:`repro.storage.latency.LatencyModel`.  This makes runs deterministic
and lets the cost model match the paper's first-order analysis exactly.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonic virtual clock measured in microseconds.

    The clock only moves forward.  Components call :meth:`advance` with the
    duration of the work they modelled (an I/O batch, a slice of CPU time).
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError(f"clock cannot start in the past: {start_us}")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_s(self) -> float:
        """Current virtual time in seconds."""
        return self._now_us / 1e6

    def advance(self, delta_us: float) -> float:
        """Move the clock forward by ``delta_us`` and return the new time.

        Raises ``ValueError`` on negative deltas: virtual time is monotonic
        by construction and a negative advance always indicates a bug in the
        caller's cost accounting.
        """
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by negative time: {delta_us}")
        self._now_us += delta_us
        return self._now_us

    def elapsed_since(self, t0_us: float) -> float:
        """Microseconds elapsed between ``t0_us`` and now."""
        return self._now_us - t0_us

    def __repr__(self) -> str:
        return f"VirtualClock(now_us={self._now_us:.3f})"
