"""Simulated SSD with asymmetry, concurrency, and an optional FTL backend.

:class:`SimulatedSSD` is the storage substrate every experiment runs on.  It
combines three pieces:

* a :class:`~repro.storage.latency.LatencyModel` that converts I/O batches
  into virtual time (asymmetry ``alpha``, concurrency ``k_r``/``k_w``);
* a :class:`~repro.storage.clock.VirtualClock` that accumulates that time;
* optionally a :class:`~repro.storage.ftl.FlashTranslationLayer` that tracks
  physical writes, garbage collection, and wear.

The device also stores page payloads (any Python object, typically a version
counter) so that durability invariants — "an acknowledged write is readable
afterwards" — can be property-tested end to end.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import CorruptPageError
from repro.storage.clock import VirtualClock
from repro.storage.ftl import FlashTranslationLayer
from repro.storage.latency import LatencyModel
from repro.storage.profiles import DeviceProfile

__all__ = ["SimulatedSSD", "DeviceStats", "page_checksum"]


def page_checksum(page: int, payload: object | None) -> int:
    """Deterministic checksum over a page's identity and payload.

    Covering the page *number* as well as the payload makes misdirected
    writes (page A's bytes landing on page B) detectable, not just bitrot:
    the stored checksum is computed for the intended page, so the stray
    payload never verifies against its accidental home.  Payloads are
    simulator-level Python values (version counters, tuples), so ``repr``
    is a stable serialisation.
    """
    return zlib.crc32(repr((page, payload)).encode())


# ``slots=True``: the buffer manager's inlined miss path bumps these
# counters on every device-bound request.
@dataclass(slots=True)
class DeviceStats:
    """Logical I/O counters for one simulated device."""

    reads: int = 0
    writes: int = 0
    read_batches: int = 0
    write_batches: int = 0
    read_time_us: float = 0.0
    write_time_us: float = 0.0
    largest_write_batch: int = 0
    largest_read_batch: int = 0
    write_batch_size_histogram: dict[int, int] = field(default_factory=dict)
    # Fault accounting, incremented by repro.faults.FaultyDevice (always
    # zero on a bare device — the fields exist so metrics plumbing is
    # uniform whether or not injection is attached).
    read_faults: int = 0
    write_faults: int = 0
    torn_batches: int = 0
    latency_spikes: int = 0
    fault_delay_us: float = 0.0
    #: Silent corruptions injected (bitrot, misdirected or lost writes) —
    #: these never raise at injection time; that is what makes them silent.
    silent_corruptions: int = 0
    #: Reads/verifies that found a payload inconsistent with its checksum.
    checksum_failures: int = 0

    @property
    def total_ios(self) -> int:
        return self.reads + self.writes

    @property
    def faults_injected(self) -> int:
        """Injected failures (latency spikes excluded: those succeed)."""
        return self.read_faults + self.write_faults + self.torn_batches

    @property
    def total_time_us(self) -> float:
        return self.read_time_us + self.write_time_us

    @property
    def mean_write_batch(self) -> float:
        if self.write_batches == 0:
            return 0.0
        return self.writes / self.write_batches

    def copy(self) -> "DeviceStats":
        fresh = DeviceStats(
            reads=self.reads,
            writes=self.writes,
            read_batches=self.read_batches,
            write_batches=self.write_batches,
            read_time_us=self.read_time_us,
            write_time_us=self.write_time_us,
            largest_write_batch=self.largest_write_batch,
            largest_read_batch=self.largest_read_batch,
            read_faults=self.read_faults,
            write_faults=self.write_faults,
            torn_batches=self.torn_batches,
            latency_spikes=self.latency_spikes,
            fault_delay_us=self.fault_delay_us,
            silent_corruptions=self.silent_corruptions,
            checksum_failures=self.checksum_failures,
        )
        fresh.write_batch_size_histogram = dict(self.write_batch_size_histogram)
        return fresh


class SimulatedSSD:
    """A page-addressable SSD simulator driven by a virtual clock.

    Parameters
    ----------
    profile:
        Device characteristics (``alpha``, ``k_r``, ``k_w``, latencies).
    num_pages:
        Exported capacity in pages.  Required when ``with_ftl`` is true.
    clock:
        Shared virtual clock; a private clock is created if omitted.
    with_ftl:
        Attach a flash translation layer so physical writes / GC / wear are
        tracked (needed for Table III and Figure 9).
    pages_per_block, over_provision:
        Forwarded to the FTL when enabled.
    checksums:
        Keep an out-of-band checksum per page (updated on every write,
        verified on every read).  Reads of a page whose payload no longer
        matches its checksum raise :class:`~repro.errors.CorruptPageError`.
        Off by default: a disabled device carries no per-I/O overhead
        beyond a single ``is None`` test on the generic paths, and the
        manager's inlined miss path bypasses it entirely.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        num_pages: int | None = None,
        clock: VirtualClock | None = None,
        with_ftl: bool = False,
        pages_per_block: int = 64,
        over_provision: float = 0.10,
        checksums: bool = False,
    ) -> None:
        self.profile = profile
        self.model: LatencyModel = profile.latency_model()
        self.clock = clock if clock is not None else VirtualClock()
        self.num_pages = num_pages
        # The latency model is a pure function of the batch size, so the
        # single-page costs — paid on every cache miss and every classic
        # write-back — are computed once.
        self._single_read_us = self.model.read_batch_us(1)
        self._single_write_us = self.model.write_batch_us(1)
        self.stats = DeviceStats()
        self._payloads: dict[int, object] = {}
        #: Out-of-band checksum metadata: page -> checksum of the payload
        #: the device believes it stored.  ``None`` when disabled.
        self._checksums: dict[int, int] | None = {} if checksums else None
        self.ftl: FlashTranslationLayer | None = None
        if with_ftl:
            if num_pages is None:
                raise ValueError("an FTL-backed device needs num_pages")
            self.ftl = FlashTranslationLayer(
                num_logical_pages=num_pages,
                pages_per_block=pages_per_block,
                over_provision=over_provision,
            )

    # ----------------------------------------------------------------- reads

    def read_page(self, page: int) -> object | None:
        """Read a single page; advances the clock by one read latency."""
        if self.num_pages is not None and not 0 <= page < self.num_pages:
            raise IndexError(
                f"page {page} out of device range [0, {self.num_pages})"
            )
        elapsed = self._single_read_us
        self.clock.advance(elapsed)
        stats = self.stats
        stats.reads += 1
        stats.read_batches += 1
        stats.read_time_us += elapsed
        if stats.largest_read_batch < 1:
            stats.largest_read_batch = 1
        if self.ftl is not None:
            self.ftl.read(page)
        if self._checksums is not None:
            self._verify_checksum(page)
        return self._payloads.get(page)

    def read_batch(self, pages: list[int] | tuple[int, ...]) -> list[object | None]:
        """Read ``pages`` concurrently; the batch costs ``ceil(n/k_r)`` waves.

        Returns the payload stored for each page (``None`` for pages never
        written — a freshly formatted database page).
        """
        n = len(pages)
        if n == 0:
            return []
        self._check_pages(pages)
        elapsed = self.model.read_batch_us(n)
        self.clock.advance(elapsed)
        stats = self.stats
        stats.reads += n
        stats.read_batches += 1
        stats.read_time_us += elapsed
        if n > stats.largest_read_batch:
            stats.largest_read_batch = n
        if self.ftl is not None:
            for page in pages:
                self.ftl.read(page)
        if self._checksums is not None:
            for page in pages:
                self._verify_checksum(page)
        payloads = self._payloads
        return [payloads.get(page) for page in pages]

    # ---------------------------------------------------------------- writes

    def write_page(self, page: int, payload: object | None = None) -> None:
        """Write a single page; advances the clock by one write latency."""
        self.write_batch({page: payload})

    def write_batch(
        self,
        pages: Mapping[int, object] | Iterable[int],
    ) -> None:
        """Write a batch of pages concurrently.

        ``pages`` is either a mapping ``page -> payload`` or a plain iterable
        of page numbers (payload preserved if previously written, else the
        page is marked present with ``None``).  The batch costs
        ``ceil(n/k_w)`` write waves — this is the concurrency ACE exploits.
        """
        payloads = self._payloads
        if isinstance(pages, Mapping):
            items = list(pages.items())
        else:
            items = [(page, payloads.get(page)) for page in pages]
        n = len(items)
        if n == 0:
            return
        page_ids = [page for page, _ in items]
        if len(set(page_ids)) != n:
            raise ValueError(f"duplicate pages in write batch: {page_ids}")
        self._check_pages(page_ids)
        elapsed = (
            self._single_write_us if n == 1 else self.model.write_batch_us(n)
        )
        self.clock.advance(elapsed)
        stats = self.stats
        stats.writes += n
        stats.write_batches += 1
        stats.write_time_us += elapsed
        histogram = stats.write_batch_size_histogram
        histogram[n] = histogram.get(n, 0) + 1
        if n > stats.largest_write_batch:
            stats.largest_write_batch = n
        ftl = self.ftl
        if ftl is None:
            for page, payload in items:
                payloads[page] = payload
        else:
            for page, payload in items:
                payloads[page] = payload
                ftl.write(page)
        checksums = self._checksums
        if checksums is not None:
            for page, payload in items:
                checksums[page] = page_checksum(page, payload)

    # ----------------------------------------------------------- checksums

    @property
    def checksums_enabled(self) -> bool:
        return self._checksums is not None

    def _verify_checksum(self, page: int) -> None:
        """Raise :class:`CorruptPageError` if ``page`` fails verification."""
        stored = self._checksums.get(page)  # type: ignore[union-attr]
        if stored is None:
            return  # never written through this device: nothing to check
        computed = page_checksum(page, self._payloads.get(page))
        if computed != stored:
            self.stats.checksum_failures += 1
            raise CorruptPageError(page, stored, computed)

    def verify_page(self, page: int) -> bool:
        """Scrub one page: read it and check its checksum, without raising.

        Charges one read latency (a scrub is real I/O) and returns whether
        the page verified.  On a device without checksums every page
        trivially verifies — the scrubber then relies on WAL cross-checks
        alone.
        """
        if self.num_pages is not None and not 0 <= page < self.num_pages:
            raise IndexError(
                f"page {page} out of device range [0, {self.num_pages})"
            )
        elapsed = self._single_read_us
        self.clock.advance(elapsed)
        stats = self.stats
        stats.reads += 1
        stats.read_batches += 1
        stats.read_time_us += elapsed
        if stats.largest_read_batch < 1:
            stats.largest_read_batch = 1
        if self.ftl is not None:
            self.ftl.read(page)
        checksums = self._checksums
        if checksums is None:
            return True
        stored = checksums.get(page)
        if stored is None:
            return True
        if page_checksum(page, self._payloads.get(page)) == stored:
            return True
        stats.checksum_failures += 1
        return False

    def corrupt_payload(self, page: int, payload: object | None) -> None:
        """Silently replace a page's stored payload, *bypassing* checksums.

        This is the fault-injection surface for silent corruption: the
        payload changes but the checksum metadata keeps describing what the
        device *believes* it stored, so the damage is latent until a read
        or scrub verifies the page.  Out-of-band: no I/O cost, no stats.
        """
        self._payloads[page] = payload

    def snapshot_payloads(self) -> dict[int, object]:
        """Copy the stored payload map (diagnostics / crash-point replay)."""
        return dict(self._payloads)

    def restore_payloads(self, snapshot: Mapping[int, object]) -> None:
        """Reset stored payloads to a snapshot, rebuilding checksums.

        Used by the crash-point engine to rewind the device to its
        post-crash image between crash-during-recovery replays without
        re-running the whole trace.  Out-of-band: no I/O cost.
        """
        # Mutate in place: hot paths (the manager's turbo tuple) may hold a
        # direct reference to the payload dict.
        self._payloads.clear()
        self._payloads.update(snapshot)
        checksums = self._checksums
        if checksums is not None:
            checksums.clear()
            for page, payload in self._payloads.items():
                checksums[page] = page_checksum(page, payload)

    # ------------------------------------------------------------- utilities

    def contains(self, page: int) -> bool:
        """Whether ``page`` has ever been written to this device."""
        return page in self._payloads

    def peek(self, page: int) -> object | None:
        """Read a page's stored payload without I/O cost or fault exposure.

        Diagnostics only (durability assertions, the chaos harness): a real
        system cannot do this, so nothing in the request path may.
        """
        return self._payloads.get(page)

    def format_pages(self, pages: Iterable[int]) -> None:
        """Pre-populate pages (database load) without advancing the clock.

        Counters are reset afterwards so experiments measure steady-state
        behaviour, mirroring the paper's device preconditioning step.
        """
        checksums = self._checksums
        for page in pages:
            self._payloads[page] = 0
            if checksums is not None:
                checksums[page] = page_checksum(page, 0)
            if self.ftl is not None:
                self.ftl.write(page)
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero logical and (if present) physical counters."""
        self.stats = DeviceStats()
        if self.ftl is not None:
            self.ftl.reset_counters()

    def _check_pages(self, pages: Iterable[int]) -> None:
        if self.num_pages is None:
            return
        for page in pages:
            if not 0 <= page < self.num_pages:
                raise IndexError(
                    f"page {page} out of device range [0, {self.num_pages})"
                )

    def __repr__(self) -> str:
        return (
            f"SimulatedSSD({self.profile.name!r}, alpha={self.profile.alpha}, "
            f"k_r={self.profile.k_r}, k_w={self.profile.k_w}, "
            f"t={self.clock.now_us:.0f}us)"
        )
