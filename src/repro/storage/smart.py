"""SMART-style attribute reporting for simulated devices.

The paper captures SMART (Self-Monitoring, Analysis and Reporting
Technology) attributes to count physical NAND writes (Section VI, "Impact on
SSD Wear Out").  This module provides the equivalent observation layer over
the simulator: snapshot the device, run a workload, snapshot again, and the
delta gives host writes, NAND writes, erase cycles, and a wear estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.device import SimulatedSSD

__all__ = ["SmartAttributes", "SmartMonitor"]


@dataclass(frozen=True)
class SmartAttributes:
    """A point-in-time snapshot of wear-relevant device attributes."""

    host_reads: int
    host_writes: int
    nand_writes: int
    erase_cycles: int
    max_block_erases: int
    power_on_us: float

    @property
    def write_amplification(self) -> float:
        """NAND writes per host write (1.0 before any writes)."""
        if self.host_writes == 0:
            return 1.0
        return self.nand_writes / self.host_writes

    def delta(self, earlier: "SmartAttributes") -> "SmartAttributes":
        """Attribute difference between this snapshot and an earlier one."""
        return SmartAttributes(
            host_reads=self.host_reads - earlier.host_reads,
            host_writes=self.host_writes - earlier.host_writes,
            nand_writes=self.nand_writes - earlier.nand_writes,
            erase_cycles=self.erase_cycles - earlier.erase_cycles,
            max_block_erases=self.max_block_erases,
            power_on_us=self.power_on_us - earlier.power_on_us,
        )


class SmartMonitor:
    """Reads SMART attributes off a :class:`SimulatedSSD`.

    Parameters
    ----------
    device:
        The device to observe.  Physical-write attributes require the device
        to have an FTL; without one, NAND writes are reported equal to host
        writes (a device that hides its internals).
    endurance_cycles:
        Rated program/erase cycles per block, used for the wear estimate.
    """

    def __init__(self, device: SimulatedSSD, endurance_cycles: int = 3000) -> None:
        if endurance_cycles <= 0:
            raise ValueError("endurance must be positive")
        self.device = device
        self.endurance_cycles = endurance_cycles

    def snapshot(self) -> SmartAttributes:
        """Capture the current SMART attributes."""
        stats = self.device.stats
        ftl = self.device.ftl
        if ftl is not None:
            nand_writes = ftl.counters.physical_writes
            erase_cycles = ftl.counters.erases
            erase_counts = ftl.erase_counts()
            max_block_erases = max(erase_counts) if erase_counts else 0
        else:
            nand_writes = stats.writes
            erase_cycles = 0
            max_block_erases = 0
        return SmartAttributes(
            host_reads=stats.reads,
            host_writes=stats.writes,
            nand_writes=nand_writes,
            erase_cycles=erase_cycles,
            max_block_erases=max_block_erases,
            power_on_us=self.device.clock.now_us,
        )

    def wear_percentage(self) -> float:
        """Fraction of rated endurance consumed by the worst block (0-100)."""
        snapshot = self.snapshot()
        return 100.0 * snapshot.max_block_erases / self.endurance_cycles
