"""Table I: empirically measured device asymmetry and concurrency."""

import pytest

from repro.bench.experiments import table1_device_characteristics
from repro.storage.profiles import PAPER_DEVICES

from benchmarks.conftest import run_once


def test_table1_device_probe(benchmark):
    data = run_once(benchmark, table1_device_characteristics)
    # The probe must recover every Table I row from measurements.
    expected = {p.name: (p.alpha, p.k_r, p.k_w) for p in PAPER_DEVICES}
    for name, (alpha, k_r, k_w) in expected.items():
        measured = data[name]
        assert measured["alpha"] == pytest.approx(alpha, rel=0.05)
        assert measured["k_r"] == k_r
        assert measured["k_w"] == k_w


if __name__ == "__main__":
    table1_device_characteristics()
