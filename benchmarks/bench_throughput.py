"""Wall-clock simulator throughput (not a paper figure — a regression gate).

Unlike every other bench in this directory, which measures *virtual* time
on the simulated clock, this one measures how fast the simulator itself
runs on real hardware via :mod:`repro.bench.perf`, and appends the entry
to ``BENCH_throughput.json`` at the repo root so the perf trajectory is
versioned alongside the code.
"""

from repro.bench import perf

from benchmarks.conftest import run_once


def test_throughput_harness(benchmark):
    entry = run_once(
        benchmark, lambda: perf.measure(label="bench_throughput", fast=True)
    )

    assert entry["headline_accesses_per_sec"] > 0
    for stack in entry["single_stack"].values():
        assert stack["accesses_per_sec"] > 0
        assert stack["wall_s"] > 0
    suite = entry["suite"]
    assert suite["jobs"] > 0
    assert suite["serial_s"] > 0
    assert suite["parallel_s"] > 0

    report = perf.write_entry(entry)
    assert report["schema_version"] == perf.SCHEMA_VERSION
    assert report["current"] == entry
    assert report["history"]
    assert report["baseline"]["headline_accesses_per_sec"] > 0


if __name__ == "__main__":
    raise SystemExit(perf.main(["--label", "bench_throughput"]))
