"""Figure 9: logical and physical writes over an extended run."""

from repro.bench.experiments import fig9_writes_over_time

from benchmarks.conftest import run_once


def test_fig9_writes_over_time(benchmark):
    data = run_once(benchmark, fig9_writes_over_time)
    base = data["LRU-WSR"]
    ace = data["ACE-LRU-WSR"]

    # Physical writes exceed logical writes (GC write amplification).
    assert base["physical"][-1] > base["logical"][-1]
    assert ace["physical"][-1] > ace["logical"][-1]

    # Write counts grow monotonically over the run.
    assert base["logical"] == sorted(base["logical"])
    assert ace["logical"] == sorted(ace["logical"])

    # ACE's total writes stay within a few percent of the baseline's...
    lw_delta = abs(ace["logical"][-1] - base["logical"][-1]) / base["logical"][-1]
    pw_delta = abs(ace["physical"][-1] - base["physical"][-1]) / base["physical"][-1]
    assert lw_delta < 0.05
    assert pw_delta < 0.10

    # ...while ACE finishes the same work significantly faster.
    assert ace["elapsed_s"][-1] < base["elapsed_s"][-1] * 0.95


if __name__ == "__main__":
    fig9_writes_over_time()
