"""Ablation: on-demand batched write-back (ACE) vs periodic background flush.

ACE triggers its concurrent write-back exactly when a dirty victim blocks an
eviction.  An alternative is to keep the classic single-page eviction path
but run a *batched* background writer on a timer (what one gets by only
patching PostgreSQL's bgwriter).  This bench compares the two: the timer
variant helps over the stock baseline but keeps paying for mistimed flushes
(writes for pages that get re-dirtied, flushes that come too late), while
ACE's demand-driven batching wins on runtime without extra writes.
"""

from repro.bench.experiments import PAPER_OPTIONS, SCALE, _synthetic_trace
from repro.bench.report import format_table, write_report
from repro.bench.runner import StackConfig, build_stack
from repro.bufferpool.background import BackgroundWriter
from repro.engine.executor import run_trace
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS

from benchmarks.conftest import run_once


def _config(variant: str) -> StackConfig:
    return StackConfig(
        profile=PCIE_SSD,
        policy="lru",
        variant=variant,
        num_pages=SCALE.num_pages,
        pool_fraction=SCALE.pool_fraction,
        options=PAPER_OPTIONS,
    )


def run_ablation():
    trace = _synthetic_trace(MS)

    baseline = run_trace(
        build_stack(_config("baseline")), trace, options=PAPER_OPTIONS,
        label="stock baseline",
    )

    bg_manager = build_stack(_config("baseline"))
    bg_writer = BackgroundWriter(bg_manager, pages_per_round=8, batch_size=8)
    periodic = run_trace(
        bg_manager, trace, options=PAPER_OPTIONS, bg_writer=bg_writer,
        label="baseline + batched bgwriter",
    )

    ace = run_trace(
        build_stack(_config("ace")), trace, options=PAPER_OPTIONS,
        label="ACE (demand-driven)",
    )

    rows = [
        [m.label, f"{m.runtime_s:.3f}", m.logical_writes,
         f"{m.buffer.mean_writeback_batch:.1f}"]
        for m in (baseline, periodic, ace)
    ]
    text = format_table(
        ["Variant", "runtime (s)", "l-writes", "mean wb batch"],
        rows,
        title="Ablation: write-back trigger (MS workload, LRU, PCIe SSD)",
    )
    write_report("ablation_writeback_trigger", text)
    return baseline, periodic, ace


def test_ablation_writeback_trigger(benchmark):
    baseline, periodic, ace = run_once(benchmark, run_ablation)
    # Batched periodic flushing already beats the stock baseline...
    assert periodic.elapsed_us < baseline.elapsed_us
    # ...but ACE's demand-driven batching is at least as good.
    assert ace.elapsed_us <= periodic.elapsed_us * 1.02
    # And ACE does not inflate write volume materially.
    assert ace.logical_writes < baseline.logical_writes * 1.06


if __name__ == "__main__":
    run_ablation()
