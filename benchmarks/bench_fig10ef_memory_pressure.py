"""Figures 10e-f: runtime and ACE speedup under varying memory pressure."""

from repro.bench.experiments import fig10ef_memory_pressure
from repro.policies.registry import PAPER_POLICIES

from benchmarks.conftest import run_once


def test_fig10ef_memory_pressure(benchmark):
    data = run_once(benchmark, fig10ef_memory_pressure)
    speedups = data["speedups"]
    fractions = data["pool_fractions"]
    runtimes = data["runtimes"]

    for policy in PAPER_POLICIES:
        series = speedups[policy]
        # ACE wins at every pool size.
        assert all(s > 1.0 for s in series), (policy, series)
        # Once the pool holds the 10% hot set, the speedup collapses
        # towards 1 (few evictions, few writes): the largest pool's gain
        # is below the peak gain.
        peak = max(series)
        assert series[-1] < peak, (policy, series)

    # Runtime decreases as the bufferpool grows (fewer misses).
    for policy in PAPER_POLICIES:
        base_runtimes = runtimes[f"{policy} base"]
        assert base_runtimes[-1] < base_runtimes[0], policy

    assert fractions == sorted(fractions)


if __name__ == "__main__":
    fig10ef_memory_pressure()
