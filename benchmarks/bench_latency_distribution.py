"""Extension bench: per-request latency distribution, baseline vs ACE.

The paper reports total runtime; this bench looks inside the distribution.
ACE shifts cost from the many dirty-victim misses (each paying a full
asymmetric write in the baseline) onto the few batch-triggering requests,
so mean and p95 drop sharply while the p99/max tail stays bounded by one
concurrent batch — the mean-vs-tail shape a deployment would care about.
"""

from repro.bench.experiments import PAPER_OPTIONS, SCALE, _synthetic_trace
from repro.bench.report import format_table, write_report
from repro.bench.runner import StackConfig, build_stack
from repro.engine.executor import run_trace
from repro.engine.latency import LatencyRecorder
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS

from benchmarks.conftest import run_once


def run_bench():
    trace = _synthetic_trace(MS)
    recorders: dict[str, LatencyRecorder] = {}
    rows = []
    for variant in ("baseline", "ace", "ace+pf"):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant=variant,
            num_pages=SCALE.num_pages, pool_fraction=SCALE.pool_fraction,
            options=PAPER_OPTIONS,
        )
        recorder = LatencyRecorder()
        run_trace(build_stack(config), trace, options=PAPER_OPTIONS,
                  latencies=recorder, label=variant)
        recorders[variant] = recorder
        summary = recorder.summary()
        rows.append(
            [
                variant,
                f"{summary['mean_us']:.1f}",
                f"{summary['p50_us']:.1f}",
                f"{summary['p95_us']:.1f}",
                f"{summary['p99_us']:.1f}",
                f"{summary['max_us']:.1f}",
            ]
        )
    text = format_table(
        ["Variant", "mean (us)", "p50", "p95", "p99", "max"],
        rows,
        title="Extension: request latency distribution (MS, LRU, PCIe SSD)",
    )
    write_report("latency_distribution", text)
    return recorders


def test_latency_distribution(benchmark):
    recorders = run_once(benchmark, run_bench)
    base = recorders["baseline"]
    ace = recorders["ace"]
    # Mean and p95 improve decisively.
    assert ace.mean_us < base.mean_us * 0.75
    assert ace.p95_us <= base.p95_us
    # The tail stays bounded: one concurrent batch costs about one write
    # latency, the same order as the baseline's worst request.
    assert ace.max_us < base.max_us * 2.0


if __name__ == "__main__":
    run_bench()
