"""Extension bench: ACE under multi-client interleaving.

The paper drives PostgreSQL with 20 concurrent users.  Interleaving many
clients dilutes per-client locality in the shared bufferpool; this bench
verifies that ACE's gains survive that dilution (they should even grow:
lower hit ratios mean more evictions, hence more write-backs to amortize).
"""

from repro.bench.experiments import PAPER_OPTIONS, SCALE
from repro.bench.report import format_table, write_report
from repro.bench.runner import StackConfig, run_config
from repro.engine.metrics import speedup
from repro.engine.multiclient import interleave_traces
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS, generate_trace

from benchmarks.conftest import run_once

CLIENT_COUNTS = (1, 4, 20)


def run_bench():
    ops_per_client = SCALE.num_ops
    results = {}
    rows = []
    for clients in CLIENT_COUNTS:
        per_client = [
            generate_trace(
                MS, SCALE.num_pages, ops_per_client // clients,
                seed=SCALE.seed + index,
            )
            for index in range(clients)
        ]
        trace = interleave_traces(per_client, mode="random", seed=7)
        base = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="baseline",
                        num_pages=SCALE.num_pages, options=PAPER_OPTIONS),
            trace, label=f"{clients}c/baseline",
        )
        ace = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="ace+pf",
                        num_pages=SCALE.num_pages, options=PAPER_OPTIONS),
            trace, label=f"{clients}c/ace+pf",
        )
        gain = speedup(base, ace)
        results[clients] = (base, ace, gain)
        rows.append(
            [clients, f"{base.runtime_s:.3f}", f"{ace.runtime_s:.3f}",
             f"{gain:.2f}x", f"{base.miss_ratio:.3f}"]
        )
    text = format_table(
        ["clients", "baseline (s)", "ACE+PF (s)", "speedup", "miss ratio"],
        rows,
        title="Extension: ACE speedup under multi-client interleaving (MS)",
    )
    write_report("multiclient", text)
    return results


def test_multiclient(benchmark):
    results = run_once(benchmark, run_bench)
    for clients, (base, ace, gain) in results.items():
        assert gain > 1.2, clients
    # More clients -> diluted locality -> no collapse of the benefit.
    assert results[20][2] > results[1][2] * 0.8


if __name__ == "__main__":
    run_bench()
