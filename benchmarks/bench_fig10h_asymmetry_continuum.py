"""Figure 10h: the (alpha, n_w) ideal-speedup continuum at k_w = 8."""

import pytest

from repro.bench.experiments import fig10h_asymmetry_continuum

from benchmarks.conftest import run_once


def test_fig10h_continuum(benchmark):
    data = run_once(benchmark, fig10h_asymmetry_continuum)
    measured = data["measured"]
    model = data["model"]
    alphas = data["alphas"]
    n_ws = data["n_ws"]

    # The corner (max alpha, n_w = k_w) is the global maximum.
    flat_max = max(value for row in measured for value in row)
    assert measured[-1][-1] == flat_max

    # Speedup grows along both axes.
    for row in measured:
        assert row == sorted(row)  # increasing in n_w (up to k_w = 8)
    for column in range(len(n_ws)):
        by_alpha = [measured[i][column] for i in range(len(alphas))]
        assert by_alpha == sorted(by_alpha)

    # n_w = 1 means no batching: speedup ~1 for every alpha.
    for i in range(len(alphas)):
        assert measured[i][0] == pytest.approx(1.0, abs=0.03)

    # Measurement tracks the closed-form model.
    for m_row, i_row in zip(measured, model):
        for m_value, i_value in zip(m_row, i_row):
            assert m_value == pytest.approx(i_value, rel=0.35)


if __name__ == "__main__":
    fig10h_asymmetry_continuum()
