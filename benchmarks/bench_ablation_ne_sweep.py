"""Ablation: eviction width n_e at fixed n_w = k_w (paper §IV-A).

The paper "experimentally tested values for n_e between 1 and k_r" and
settled on n_e = k_w because evicting more hurt locality more than the read
concurrency helped.  This bench sweeps n_e and reports runtime and miss
ratio; the miss count grows with n_e (locality damage from multi-eviction)
while the runtime optimum sits at a moderate n_e.
"""

from repro.bench.experiments import PAPER_OPTIONS, SCALE, _synthetic_trace
from repro.bench.report import format_table, write_report
from repro.bench.runner import StackConfig, run_config
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS

from benchmarks.conftest import run_once

N_E_VALUES = (1, 2, 4, 8, 16)


def run_ablation():
    trace = _synthetic_trace(MS)
    results = {}
    rows = []
    for n_e in N_E_VALUES:
        config = StackConfig(
            profile=PCIE_SSD,
            policy="lru",
            variant="ace+pf",
            num_pages=SCALE.num_pages,
            pool_fraction=SCALE.pool_fraction,
            n_w=8,
            n_e=n_e,
            options=PAPER_OPTIONS,
        )
        metrics = run_config(config, trace, label=f"n_e={n_e}")
        results[n_e] = metrics
        rows.append(
            [
                n_e,
                f"{metrics.runtime_s:.3f}",
                f"{metrics.miss_ratio:.4f}",
                metrics.buffer.prefetch_issued,
                metrics.buffer.prefetch_unused,
            ]
        )
    text = format_table(
        ["n_e", "runtime (s)", "miss ratio", "prefetched", "unused"],
        rows,
        title="Ablation: eviction width n_e at n_w=8 (MS, ACE-LRU+PF, PCIe)",
    )
    write_report("ablation_ne_sweep", text)
    return results


def test_ablation_ne_sweep(benchmark):
    results = run_once(benchmark, run_ablation)
    # Wider eviction never reduces misses on a skewed workload: evicting
    # extra hot-adjacent pages costs locality.
    assert results[16].buffer.misses >= results[1].buffer.misses
    # All variants stay within a sane band (no pathological blowup).
    runtimes = [m.runtime_s for m in results.values()]
    assert max(runtimes) < min(runtimes) * 1.5


if __name__ == "__main__":
    run_ablation()
