"""Figure 11: TPC-C speedups per transaction type and for the standard mix."""

import pytest

from repro.bench.experiments import fig11_tpcc_transactions
from repro.policies.registry import PAPER_POLICIES

from benchmarks.conftest import run_once


def test_fig11_tpcc(benchmark):
    data = run_once(benchmark, fig11_tpcc_transactions)

    for policy in PAPER_POLICIES:
        # The mix shows a solid gain on every policy (paper: 1.27-1.32x).
        assert data["Mix"][policy] > 1.1, policy
        # Write-heavy Delivery gains the most among transaction types
        # (paper: up to 1.51x).
        assert data["Delivery"][policy] >= data["Mix"][policy] * 0.9, policy
        assert data["Delivery"][policy] > data["OrderStatus"][policy], policy
        # Read-only transactions see no gain (paper: "no performance gain
        # for the two read-only transactions").
        assert data["OrderStatus"][policy] == pytest.approx(1.0, abs=0.03), policy
        assert data["StockLevel"][policy] == pytest.approx(1.0, abs=0.03), policy
        # Read-write transactions gain.  Payment's footprint is dominated
        # by red-hot warehouse/district pages (hits) and read-mostly
        # customer lookups, so its gain is small but strictly positive —
        # directionally matching the paper's modest Payment bar.
        assert data["NewOrder"][policy] > 1.05, policy
        assert data["Payment"][policy] > 1.0, policy


if __name__ == "__main__":
    fig11_tpcc_transactions()
