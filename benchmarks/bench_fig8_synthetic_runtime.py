"""Figures 8a-d: runtime of four policies x three variants x four workloads."""

from repro.bench.experiments import fig8_synthetic_runtime
from repro.engine.metrics import speedup
from repro.policies.registry import PAPER_POLICIES

from benchmarks.conftest import run_once


def test_fig8_synthetic_runtime(benchmark):
    results = run_once(benchmark, fig8_synthetic_runtime)

    gains = {}
    for workload, per_workload in results.items():
        for policy in PAPER_POLICIES:
            base = per_workload[(policy, "baseline")]
            ace = per_workload[(policy, "ace")]
            ace_pf = per_workload[(policy, "ace+pf")]
            # ACE never loses to the baseline (paper: consistent gains).
            assert ace.elapsed_us < base.elapsed_us, (workload, policy)
            assert ace_pf.elapsed_us < base.elapsed_us, (workload, policy)
            gains[(workload, policy)] = speedup(base, ace_pf)
            # ACE batches write-backs at n_w; baseline writes singly.
            assert base.buffer.mean_writeback_batch <= 1.0
            assert ace.buffer.mean_writeback_batch > 4.0

    # Write-intensive workload gains the most, read-intensive the least
    # (paper: WIS up to 32.1%, RIS 8.1-13.9%).
    for policy in PAPER_POLICIES:
        assert gains[("WIS", policy)] > gains[("RIS", policy)], policy
        assert gains[("MS", policy)] > gains[("RIS", policy)], policy
        # Every workload with writes shows a real gain.
        assert gains[("RIS", policy)] > 1.02, policy
        assert gains[("MU", policy)] > 1.05, policy


if __name__ == "__main__":
    fig8_synthetic_runtime()
