"""Figure 10g: speedup vs write-back concurrency n_w (peak at k_w)."""

from repro.bench.experiments import fig10g_nw_sweep
from repro.policies.registry import PAPER_POLICIES

from benchmarks.conftest import run_once


def test_fig10g_nw_sweep(benchmark):
    data = run_once(benchmark, fig10g_nw_sweep)
    n_ws = data["n_ws"]
    for policy in PAPER_POLICIES:
        series = dict(zip(n_ws, data[policy]))
        # Speedup grows with n_w up to the device concurrency k_w = 8...
        assert series[2] > series[1], policy
        assert series[4] > series[2], policy
        assert series[8] > series[4], policy
        # ...peaks at n_w = k_w...
        best = max(series, key=series.__getitem__)
        assert best == 8, (policy, series)
        # ...and declines beyond it (queue pressure, wasted waves).
        assert series[10] < series[8], policy
        assert series[16] < series[8], policy
        # Even modest concurrency is already substantial (paper: 1.2-1.3x
        # at n_w in {4, 6}).
        assert series[4] > 1.15, policy


if __name__ == "__main__":
    fig10g_nw_sweep()
