"""Figures 10a-b: ACE speedups on the lower-asymmetry SATA and Virtual SSDs."""

from repro.bench.experiments import fig10ab_low_asymmetry_devices
from repro.policies.registry import PAPER_POLICIES

from benchmarks.conftest import run_once


def test_fig10ab_low_asymmetry(benchmark):
    data = run_once(benchmark, fig10ab_low_asymmetry_devices)
    for device in ("SATA SSD", "Virtual SSD"):
        for workload, per_policy in data[device].items():
            for policy in PAPER_POLICIES:
                # Gains persist on low-asymmetry devices (concurrency alone
                # pays), and ACE never loses.
                assert per_policy[policy] >= 1.0, (device, workload, policy)
        # Write-intensive beats read-intensive on both devices.
        for policy in PAPER_POLICIES:
            assert data[device]["WIS"][policy] > data[device]["RIS"][policy]


if __name__ == "__main__":
    fig10ab_low_asymmetry_devices()
