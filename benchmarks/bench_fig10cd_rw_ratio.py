"""Figures 10c-d: ACE speedup and runtime vs read/write ratio."""

import pytest

from repro.bench.experiments import fig10cd_rw_ratio_sweep
from repro.policies.registry import PAPER_POLICIES

from benchmarks.conftest import run_once


def test_fig10cd_rw_ratio(benchmark):
    data = run_once(benchmark, fig10cd_rw_ratio_sweep)
    speedups = data["speedups"]
    fractions = data["read_fractions"]
    assert fractions[0] == 0.0 and fractions[-1] == 1.0

    for policy in PAPER_POLICIES:
        series = speedups[policy]
        # Write-only gains the most; gains fall off towards read-only.
        assert series[0] == max(series), policy
        assert series[0] > 1.3, policy
        # Read-only: ACE behaves exactly like the baseline (paper: "the
        # benefit never falls behind the classical approach").
        assert series[-1] == pytest.approx(1.0, abs=0.02), policy
        # The trend is monotone non-increasing (within jitter).
        for earlier, later in zip(series, series[1:]):
            assert later <= earlier * 1.05, (policy, series)


if __name__ == "__main__":
    fig10cd_rw_ratio_sweep()
