"""Figure 10i: higher-asymmetry devices gain more at every write intensity."""

import pytest

from repro.bench.experiments import fig10i_device_comparison

from benchmarks.conftest import run_once


def test_fig10i_device_comparison(benchmark):
    data = run_once(benchmark, fig10i_device_comparison)

    # At the write-only end the paper orders gains by asymmetry:
    # PCIe (2.8) > Virtual (2.0) > SATA (1.5) > Optane (1.1).  In our model
    # the Virtual SSD's measured k_w = 19 (an IOPS-throttling artifact the
    # paper notes in Table I) lets ACE amortize writes over a much larger
    # batch than PCIe's k_w = 8, so Virtual lands at or slightly above
    # PCIe; the asymmetry ordering holds among the NAND devices and against
    # every lower-asymmetry device.  Documented in EXPERIMENTS.md.
    write_only = {name: series[0] for name, series in data.items()
                  if name != "read_fractions"}
    assert write_only["PCIe SSD"] > write_only["SATA SSD"]
    assert write_only["Virtual SSD"] > write_only["SATA SSD"]
    assert write_only["SATA SSD"] > write_only["Optane SSD"]
    assert write_only["Optane SSD"] > 1.0  # concurrency still pays

    # Read-only end: no gain on any device.
    for name, series in data.items():
        if name == "read_fractions":
            continue
        assert series[-1] == pytest.approx(1.0, abs=0.02), name


if __name__ == "__main__":
    fig10i_device_comparison()
