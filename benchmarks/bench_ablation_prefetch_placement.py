"""Ablation: prefetched pages at the LRU end (paper) vs the MRU end.

The paper places prefetched pages "in the least recently used positions...
so that even if the prefetcher's prediction is wrong, the prefetched page
can be simply dropped from the bufferpool".  This bench quantifies that
choice: with MRU placement, wrong predictions displace genuinely hot pages
and the miss count rises.
"""

from repro.bench.report import format_table, write_report
from repro.bench.runner import StackConfig
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import run_trace
from repro.bench.experiments import PAPER_OPTIONS, SCALE, _synthetic_trace
from repro.policies.registry import make_policy
from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MU

from benchmarks.conftest import run_once


def _run_placement(placement: str, trace):
    clock = VirtualClock()
    device = SimulatedSSD(PCIE_SSD, num_pages=SCALE.num_pages, clock=clock)
    device.format_pages(range(SCALE.num_pages))
    capacity = max(4, int(SCALE.num_pages * SCALE.pool_fraction))
    config = ACEConfig.for_device(
        PCIE_SSD, prefetch_enabled=True
    )
    config = ACEConfig(
        n_w=config.n_w, n_e=config.n_e, prefetch_enabled=True,
        prefetch_placement=placement,
    )
    manager = ACEBufferPoolManager(
        capacity, make_policy("lru", capacity), device, config=config
    )
    return run_trace(manager, trace, options=PAPER_OPTIONS,
                     label=f"placement/{placement}")


def run_ablation():
    # A uniform workload makes the history prefetcher guess poorly — the
    # worst case the LRU-end placement is designed to survive.
    trace = _synthetic_trace(MU)
    cold = _run_placement("cold", trace)
    hot = _run_placement("hot", trace)
    rows = [
        ["cold (paper)", f"{cold.runtime_s:.3f}", cold.buffer.misses,
         cold.buffer.prefetch_unused],
        ["hot (ablation)", f"{hot.runtime_s:.3f}", hot.buffer.misses,
         hot.buffer.prefetch_unused],
    ]
    text = format_table(
        ["Placement", "runtime (s)", "misses", "unused prefetches"],
        rows,
        title="Ablation: prefetch placement (MU workload, ACE-LRU+PF, PCIe)",
    )
    write_report("ablation_prefetch_placement", text)
    return cold, hot


def test_ablation_prefetch_placement(benchmark):
    cold, hot = run_once(benchmark, run_ablation)
    # MRU placement of (mostly wrong) prefetches must not beat the paper's
    # LRU-end placement on misses.
    assert cold.buffer.misses <= hot.buffer.misses
    assert cold.elapsed_us <= hot.elapsed_us * 1.02


if __name__ == "__main__":
    run_ablation()
