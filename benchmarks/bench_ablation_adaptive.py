"""Ablation: adaptive (self-tuning) ACE vs fixed n_w choices.

An extension beyond the paper: the tuner of
:class:`repro.core.adaptive.AdaptiveACEBufferPoolManager` discovers the
device's write concurrency online.  This bench compares it to (i) the
paper's oracle setting ``n_w = k_w``, (ii) a mis-tuned ``n_w = 1`` (no
batching), and (iii) ``n_w = 4 * k_w`` (oversubmitted), on a device the
tuner knows nothing about.
"""

from repro.bench.experiments import PAPER_OPTIONS, SCALE, _synthetic_trace
from repro.bench.report import format_table, write_report
from repro.bench.runner import StackConfig, build_stack
from repro.core.adaptive import AdaptiveACEBufferPoolManager
from repro.engine.executor import run_trace
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS

from benchmarks.conftest import run_once


def _run_fixed(n_w: int, trace):
    config = StackConfig(
        profile=PCIE_SSD, policy="lru", variant="ace",
        num_pages=SCALE.num_pages, pool_fraction=SCALE.pool_fraction,
        n_w=n_w, n_e=n_w, options=PAPER_OPTIONS,
    )
    return run_trace(build_stack(config), trace, options=PAPER_OPTIONS,
                     label=f"fixed n_w={n_w}")


def _run_adaptive(trace):
    device = SimulatedSSD(PCIE_SSD, num_pages=SCALE.num_pages)
    device.format_pages(range(SCALE.num_pages))
    capacity = max(4, int(SCALE.num_pages * SCALE.pool_fraction))
    manager = AdaptiveACEBufferPoolManager(
        capacity, LRUPolicy(), device,
        explore_pages=64, exploit_pages=4096,
    )
    metrics = run_trace(manager, trace, options=PAPER_OPTIONS,
                        label="adaptive")
    return metrics, manager


def run_ablation():
    trace = _synthetic_trace(MS)
    oracle = _run_fixed(PCIE_SSD.k_w, trace)
    untuned = _run_fixed(1, trace)
    oversubmitted = _run_fixed(PCIE_SSD.k_w * 4, trace)
    adaptive, manager = _run_adaptive(trace)
    rows = [
        [m.label, f"{m.runtime_s:.3f}", f"{m.buffer.mean_writeback_batch:.1f}"]
        for m in (untuned, oversubmitted, oracle, adaptive)
    ]
    converged = manager.tuned_n_w if manager.tuned_n_w else manager.current_n_w
    text = format_table(
        ["Variant", "runtime (s)", "mean wb batch"],
        rows,
        title=(
            "Ablation: adaptive ACE vs fixed n_w (MS, LRU, PCIe; "
            f"tuner converged to n_w={converged})"
        ),
    )
    write_report("ablation_adaptive", text)
    return untuned, oversubmitted, oracle, adaptive, manager


def test_ablation_adaptive(benchmark):
    untuned, oversubmitted, oracle, adaptive, manager = run_once(
        benchmark, run_ablation
    )
    # The tuner finds the device's k_w without being told.
    assert manager.tuned_n_w == PCIE_SSD.k_w or manager.current_n_w == PCIE_SSD.k_w
    # Adaptive beats both mis-tunings...
    assert adaptive.elapsed_us < untuned.elapsed_us
    assert adaptive.elapsed_us < oversubmitted.elapsed_us
    # ...and lands within a small factor of the oracle.
    assert adaptive.elapsed_us < oracle.elapsed_us * 1.15


if __name__ == "__main__":
    run_ablation()
