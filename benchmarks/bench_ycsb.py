"""Extension bench: ACE across the YCSB core workloads.

The paper evaluates pgbench-style mixes and TPC-C; YCSB's six core
workloads cover complementary corners (zipfian skew, read-latest, scans,
read-modify-write).  Expectations follow the paper's logic: gains scale
with write intensity (A, F > B, D > C ~ 1.0), and scans (E) profit from the
TaP prefetcher when inserts provide dirty victims.
"""

from repro.bench.experiments import PAPER_OPTIONS
from repro.bench.report import format_table, write_report
from repro.bench.runner import StackConfig, run_config
from repro.engine.metrics import speedup
from repro.storage.profiles import PCIE_SSD
from repro.workloads.ycsb import YCSB_WORKLOADS, generate_ycsb_trace

from benchmarks.conftest import run_once

NUM_PAGES = 16_000
NUM_OPS = 24_000


def run_bench():
    gains = {}
    rows = []
    for name in sorted(YCSB_WORKLOADS):
        trace = generate_ycsb_trace(name, NUM_PAGES, NUM_OPS, seed=11)
        base = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="baseline",
                        num_pages=NUM_PAGES, options=PAPER_OPTIONS),
            trace,
        )
        ace = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="ace+pf",
                        num_pages=NUM_PAGES, options=PAPER_OPTIONS),
            trace,
        )
        gains[name] = speedup(base, ace)
        rows.append(
            [
                name,
                YCSB_WORKLOADS[name].distribution,
                f"{trace.read_fraction:.2f}",
                f"{base.runtime_s:.3f}",
                f"{ace.runtime_s:.3f}",
                f"{gains[name]:.2f}x",
            ]
        )
    text = format_table(
        ["WL", "distribution", "read frac", "baseline (s)", "ACE+PF (s)",
         "speedup"],
        rows,
        title="Extension: ACE+PF on the YCSB core workloads (LRU, PCIe SSD)",
    )
    write_report("ycsb", text)
    return gains


def test_ycsb(benchmark):
    gains = run_once(benchmark, run_bench)
    # Update-heavy workloads gain the most.
    assert gains["A"] > gains["B"] > 1.0
    assert gains["F"] > gains["B"]
    # Read-only zipfian: no writes, no change.
    assert abs(gains["C"] - 1.0) < 0.02
    # Every workload with writes benefits; none regresses.
    for name, gain in gains.items():
        assert gain > 0.99, name


if __name__ == "__main__":
    run_bench()
