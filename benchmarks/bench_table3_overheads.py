"""Table III: ACE's miss/logical-write/physical-write deltas are negligible."""

from repro.bench.experiments import table3_overheads
from repro.policies.registry import PAPER_POLICIES

from benchmarks.conftest import run_once


def test_table3_overheads(benchmark):
    results = run_once(benchmark, table3_overheads)
    for workload, per_policy in results.items():
        for policy in PAPER_POLICIES:
            deltas = per_policy[policy]
            # The paper reports deltas of fractions of a percent; the
            # simulator's smaller pool makes re-dirtying slightly more
            # likely, so allow low single digits — still "negligible"
            # relative to the 20-50% runtime gains.  Negative deltas
            # (ACE-Clock tends to *reduce* misses and writes, thanks to
            # prefetch hits) are fine in either metric.
            assert abs(deltas["miss"]) < 3.0, (workload, policy, deltas)
            assert -5.0 < deltas["l_writes"] < 5.0, (workload, policy, deltas)
            assert -6.0 < deltas["p_writes"] < 8.0, (workload, policy, deltas)


if __name__ == "__main__":
    table3_overheads()
