"""Extension bench: the paper's 5-iteration replication methodology.

"The experiment results are averaged over 5 iterations and the standard
deviation was less than 5%."  This bench replicates the headline MS
speedups over 5 workload seeds and reports mean +/- std, asserting the
same stability bound.
"""

from repro.bench.experiments import PAPER_OPTIONS, SCALE
from repro.bench.replication import replicate_speedup
from repro.bench.report import format_table, write_report
from repro.bench.runner import StackConfig
from repro.policies.registry import PAPER_POLICIES, display_name
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS

from benchmarks.conftest import run_once

SEEDS = (1, 2, 3, 4, 5)


def _config(policy: str, variant: str) -> StackConfig:
    return StackConfig(
        profile=PCIE_SSD, policy=policy, variant=variant,
        num_pages=SCALE.num_pages, pool_fraction=SCALE.pool_fraction,
        options=PAPER_OPTIONS,
    )


def run_bench():
    results = {}
    rows = []
    for policy in PAPER_POLICIES:
        result = replicate_speedup(
            _config(policy, "baseline"),
            _config(policy, "ace+pf"),
            MS,
            num_pages=SCALE.num_pages,
            num_ops=SCALE.num_ops // 2,  # 5 iterations: keep each shorter
            seeds=SEEDS,
        )
        results[policy] = result
        rows.append(
            [
                display_name(policy),
                f"{result.mean:.3f}x",
                f"{result.std:.4f}",
                f"{result.cv:.2%}",
            ]
        )
    text = format_table(
        ["Policy", "mean speedup", "std", "cv"],
        rows,
        title=(
            "Extension: ACE+PF speedup over 5 seeds (MS, PCIe) — the "
            "paper's replication methodology"
        ),
    )
    write_report("replication", text)
    return results


def test_replication(benchmark):
    results = run_once(benchmark, run_bench)
    for policy, result in results.items():
        # The paper's stability bound and a real mean gain.
        assert result.cv < 0.05, (policy, result.cv)
        assert result.mean > 1.2, policy


if __name__ == "__main__":
    run_bench()
