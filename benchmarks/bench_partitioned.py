"""Extension bench: monolithic vs partitioned bufferpool, with ACE.

Production systems shard the bufferpool to cut latch contention; the cost
is placement imbalance under skew.  This bench quantifies that tradeoff in
the simulator (where only the behavioural cost exists) and shows ACE's
batching works unchanged inside each partition.
"""

from repro.bench.experiments import PAPER_OPTIONS, SCALE, _synthetic_trace
from repro.bench.report import format_table, write_report
from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.partitioned import PartitionedBufferPoolManager
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import run_trace
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS

from benchmarks.conftest import run_once

PARTITION_COUNTS = (1, 4, 16)


def _fresh_device():
    device = SimulatedSSD(PCIE_SSD, num_pages=SCALE.num_pages)
    device.format_pages(range(SCALE.num_pages))
    return device


def _factory(ace: bool):
    def build(capacity: int, device: SimulatedSSD) -> BufferPoolManager:
        if ace:
            return ACEBufferPoolManager(
                capacity, LRUPolicy(), device,
                config=ACEConfig.for_device(PCIE_SSD),
            )
        return BufferPoolManager(capacity, LRUPolicy(), device)

    return build


def run_bench():
    trace = _synthetic_trace(MS)
    capacity = max(4, int(SCALE.num_pages * SCALE.pool_fraction))
    results = {}
    rows = []
    for partitions in PARTITION_COUNTS:
        for ace in (False, True):
            manager = PartitionedBufferPoolManager(
                capacity, partitions, _fresh_device(), _factory(ace)
            )
            label = f"{partitions}p/{'ace' if ace else 'baseline'}"
            metrics = run_trace(manager, trace, options=PAPER_OPTIONS,
                                label=label)
            results[(partitions, ace)] = metrics
            occupancy = manager.occupancy()
            rows.append(
                [
                    partitions,
                    "ACE" if ace else "baseline",
                    f"{metrics.runtime_s:.3f}",
                    f"{metrics.buffer.miss_ratio:.4f}",
                    f"{max(occupancy) - min(occupancy)}",
                ]
            )
    text = format_table(
        ["partitions", "variant", "runtime (s)", "miss ratio",
         "occupancy spread"],
        rows,
        title="Extension: monolithic vs partitioned pool (MS, LRU, PCIe)",
    )
    write_report("partitioned", text)
    return results


def test_partitioned(benchmark):
    results = run_once(benchmark, run_bench)
    for partitions in PARTITION_COUNTS:
        base = results[(partitions, False)]
        ace = results[(partitions, True)]
        # ACE's batching survives sharding at every partition count.
        assert ace.elapsed_us < base.elapsed_us * 0.75, partitions
    # Sharding costs (at most a little) hit ratio under skew: the
    # monolithic pool is the miss-ratio lower bound.
    assert (
        results[(1, False)].buffer.miss_ratio
        <= results[(16, False)].buffer.miss_ratio + 0.01
    )


if __name__ == "__main__":
    run_bench()
