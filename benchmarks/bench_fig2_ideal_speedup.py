"""Figure 2: ideal speedup of ACE over an LRU baseline vs asymmetry."""

import pytest

from repro.bench.experiments import fig2_ideal_speedup

from benchmarks.conftest import run_once


def test_fig2_ideal_speedup(benchmark):
    data = run_once(benchmark, fig2_ideal_speedup)
    measured = data["measured"]
    # Monotone in alpha, ~1 at alpha=1 only in the no-benefit limit — even
    # symmetric devices gain from concurrency, so >= 1 everywhere.
    assert all(b >= a - 0.02 for a, b in zip(measured, measured[1:]))
    assert measured[0] >= 1.0
    # The paper's headline: benefit up to ~2.5x at high asymmetry.
    assert 1.8 <= measured[-1] <= 3.5
    # Model and measurement agree on shape at every alpha.
    for model_value, measured_value in zip(data["model"], measured):
        assert measured_value == pytest.approx(model_value, rel=0.35)


if __name__ == "__main__":
    fig2_ideal_speedup()
