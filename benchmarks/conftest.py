"""Benchmark-suite configuration.

Each bench regenerates one table or figure of the paper's evaluation
section, asserts its qualitative shape, and persists the rendered rows
under ``results/``.  Benches run once per invocation (``pedantic`` with a
single round) because each is a full experiment, not a microbenchmark.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
