"""Ablation: CFLRU clean-first window size (paper uses 1/3 of the pool).

The CFLRU authors recommend a window of ~1/3 of the bufferpool; the optimal
value is workload-dependent.  This bench sweeps the window fraction and
reports runtime, miss ratio, and write-backs for the baseline CFLRU and its
ACE counterpart — showing that ACE helps at *every* window size (it wraps
the policy rather than retuning it).
"""

from repro.bench.experiments import PAPER_OPTIONS, SCALE, _synthetic_trace
from repro.bench.report import format_table, write_report
from repro.bufferpool.manager import BufferPoolManager
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import run_trace
from repro.policies.cflru import CFLRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS

from benchmarks.conftest import run_once

WINDOW_FRACTIONS = (0.1, 1.0 / 3.0, 0.5, 0.8)


def _run_window(window_fraction: float, variant: str, trace):
    device = SimulatedSSD(PCIE_SSD, num_pages=SCALE.num_pages)
    device.format_pages(range(SCALE.num_pages))
    capacity = max(4, int(SCALE.num_pages * SCALE.pool_fraction))
    policy = CFLRUPolicy(capacity, window_fraction=window_fraction)
    if variant == "baseline":
        manager = BufferPoolManager(capacity, policy, device)
    else:
        manager = ACEBufferPoolManager(
            capacity, policy, device,
            config=ACEConfig.for_device(PCIE_SSD),
        )
    return run_trace(manager, trace, options=PAPER_OPTIONS,
                     label=f"cflru-w{window_fraction:.2f}/{variant}")


def run_ablation():
    trace = _synthetic_trace(MS)
    results = {}
    rows = []
    for fraction in WINDOW_FRACTIONS:
        base = _run_window(fraction, "baseline", trace)
        ace = _run_window(fraction, "ace", trace)
        results[fraction] = (base, ace)
        rows.append(
            [
                f"{fraction:.2f}",
                f"{base.runtime_s:.3f}",
                f"{ace.runtime_s:.3f}",
                f"{base.elapsed_us / ace.elapsed_us:.2f}x",
                f"{base.miss_ratio:.4f}",
                base.logical_writes,
            ]
        )
    text = format_table(
        ["window", "CFLRU (s)", "ACE-CFLRU (s)", "speedup", "miss ratio",
         "l-writes"],
        rows,
        title="Ablation: CFLRU window size (MS workload, PCIe SSD)",
    )
    write_report("ablation_cflru_window", text)
    return results


def test_ablation_cflru_window(benchmark):
    results = run_once(benchmark, run_ablation)
    for fraction, (base, ace) in results.items():
        # ACE wraps CFLRU beneficially at every window size.
        assert ace.elapsed_us < base.elapsed_us, fraction


if __name__ == "__main__":
    run_ablation()
