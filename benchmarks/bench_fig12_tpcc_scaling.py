"""Figure 12: tpmC scaling with database size (warehouse count)."""

from repro.bench.experiments import fig12_tpcc_scaling

from benchmarks.conftest import run_once


def test_fig12_tpcc_scaling(benchmark):
    data = run_once(benchmark, fig12_tpcc_scaling)
    gains = data["gains"]
    tpmc = data["tpmc"]

    # ACE's benefit persists at every scale — the figure's headline
    # (paper: 1.33x at 125 warehouses, still 1.24x at 1000).
    assert all(gain > 1.05 for gain in gains), gains
    # And the gain stays stable rather than eroding away.
    assert max(gains) / min(gains) < 1.3, gains

    # ACE-LRU beats LRU in absolute tpmC everywhere.
    for base, ace in zip(tpmc["LRU"], tpmc["ACE-LRU"]):
        assert ace > base

    # Note: the paper's mild absolute tpmC decline with data volume comes
    # from PostgreSQL's data-management CPU overhead, which the simulator
    # deliberately does not model (CPU cost per op is constant); absolute
    # tpmC may therefore drift either way with scale.  Documented in
    # EXPERIMENTS.md.


if __name__ == "__main__":
    fig12_tpcc_scaling()
