"""Table II: synthetic workload definitions, validated by measurement."""

import pytest

from repro.bench.experiments import table2_workload_definitions

from benchmarks.conftest import run_once


def test_table2_workloads(benchmark):
    data = run_once(benchmark, table2_workload_definitions)
    assert data["MS"]["read_fraction"] == pytest.approx(0.5, abs=0.02)
    assert data["WIS"]["read_fraction"] == pytest.approx(0.1, abs=0.02)
    assert data["RIS"]["read_fraction"] == pytest.approx(0.9, abs=0.02)
    assert data["MU"]["read_fraction"] == pytest.approx(0.5, abs=0.02)
    # Skewed workloads: ~90% of operations on 10% of the pages.
    for name in ("MS", "WIS", "RIS"):
        assert data[name]["locality"] == pytest.approx(0.9, abs=0.03)
    # Uniform workload: the top-10%-of-pages share is far below 0.9.  It is
    # not exactly 0.1 because picking the a-posteriori hottest pages at
    # ~1.5 ops/page inflates the estimate (selection bias), so allow slack.
    assert data["MU"]["locality"] < 0.4


if __name__ == "__main__":
    table2_workload_definitions()
