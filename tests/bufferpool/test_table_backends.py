"""Unit tests for the translation-layer backends and the O(1) counters.

``test_structures.py`` covers the classic dict table's contract; this
module covers what the array backend adds — the translation vector, probe
bounds, backend resolution — and the manager counters the serving layer
reads per dispatch (``pool_pressure``, ``resident_count``).
"""

from __future__ import annotations

import pytest

from repro.bufferpool.table import (
    ARRAY_SPACE_LIMIT,
    ArrayBufferTable,
    BufferTable,
    make_table,
    resolve_backend,
)

from tests.bufferpool.conftest import make_manager


class TestArrayBufferTable:
    def test_probe_contract(self):
        table = ArrayBufferTable(16)
        assert table.probe_space == 16
        assert table._slots[5] == -1
        table.insert(5, 2)
        assert table._slots[5] == 2
        assert table.lookup(5) == 2
        assert table.lookup(6) is None
        assert table.lookup(-1) is None
        assert table.lookup(16) is None

    def test_dict_backend_probe_shim(self):
        table = BufferTable()
        table.insert(5, 2)
        # Same hot-path shape as the vector: index yields frame or -1.
        assert table._slots[5] == 2
        assert table._slots[99] == -1
        assert 99 not in table._slots  # __missing__ must not insert

    def test_insert_out_of_space_rejected(self):
        table = ArrayBufferTable(8)
        with pytest.raises(ValueError, match="address"):
            table.insert(8, 0)
        with pytest.raises(ValueError, match="address"):
            table.insert(-1, 0)

    def test_double_insert_rejected(self):
        table = ArrayBufferTable(8)
        table.insert(3, 1)
        with pytest.raises(ValueError, match="already mapped"):
            table.insert(3, 2)

    def test_delete_clears_slot_and_mirror(self):
        table = ArrayBufferTable(8)
        table.insert(3, 1)
        assert table.delete(3) == 1
        assert table._slots[3] == -1
        assert 3 not in table
        with pytest.raises(KeyError):
            table.delete(3)

    def test_iteration_order_matches_dict_backend(self):
        array_table = ArrayBufferTable(32)
        dict_table = BufferTable()
        ops = [(7, 0), (3, 1), (19, 2), (3, None), (3, 3), (1, 4)]
        for page, frame in ops:
            if frame is None:
                array_table.delete(page)
                dict_table.delete(page)
            else:
                array_table.insert(page, frame)
                dict_table.insert(page, frame)
        assert array_table.pages() == dict_table.pages()
        assert len(array_table) == len(dict_table)

    def test_invalid_space_rejected(self):
        with pytest.raises(ValueError):
            ArrayBufferTable(0)


class TestBackendResolution:
    @pytest.fixture(autouse=True)
    def _clear_env(self, monkeypatch):
        # The auto-selection assertions must not inherit the CI matrix's
        # REPRO_TABLE forcing (the dict-table-tests job sets it globally).
        monkeypatch.delenv("REPRO_TABLE", raising=False)

    def test_auto_prefers_array_for_bounded_spaces(self):
        assert resolve_backend(1024) == "array"
        assert resolve_backend(ARRAY_SPACE_LIMIT) == "array"

    def test_auto_falls_back_for_huge_or_unknown_spaces(self):
        assert resolve_backend(None) == "dict"
        assert resolve_backend(ARRAY_SPACE_LIMIT + 1) == "dict"

    def test_explicit_override_wins(self):
        assert resolve_backend(1024, "dict") == "dict"
        assert resolve_backend(ARRAY_SPACE_LIMIT + 1, "dict") == "dict"

    def test_array_needs_bounded_space(self):
        with pytest.raises(ValueError, match="bounded address space"):
            resolve_backend(None, "array")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown translation backend"):
            resolve_backend(1024, "btree")

    def test_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_TABLE", "dict")
        assert resolve_backend(1024) == "dict"
        assert isinstance(make_table(1024), BufferTable)
        monkeypatch.setenv("REPRO_TABLE", "array")
        assert isinstance(make_table(1024), ArrayBufferTable)

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TABLE", "dict")
        assert resolve_backend(1024, "array") == "array"


class TestO1Counters:
    """pool_pressure / resident_count against brute-force recomputation."""

    def brute_pressure(self, manager):
        pressured = {
            page
            for page in manager.resident_pages()
            if manager.is_dirty(page) or manager.is_pinned(page)
        }
        return len(pressured) / manager.capacity

    def test_pressure_tracks_dirty_pinned_union(self):
        manager = make_manager(capacity=8)
        assert manager.pool_pressure == 0.0
        manager.write_page(1)                      # dirty
        manager.read_page(2)
        manager.pin(2)                             # pinned
        manager.write_page(2)                      # dirty ∩ pinned
        assert manager.pool_pressure == self.brute_pressure(manager) == 2 / 8
        manager.flush_page(2)                      # still pinned
        assert manager.pool_pressure == self.brute_pressure(manager)
        manager.unpin(2)
        assert manager.pool_pressure == self.brute_pressure(manager) == 1 / 8
        manager.flush_all()
        assert manager.pool_pressure == 0.0

    def test_pressure_survives_eviction_churn(self):
        manager = make_manager(capacity=4, num_pages=64)
        for page in range(32):
            if page % 3 == 0:
                manager.write_page(page)
            else:
                manager.read_page(page)
            assert manager.pool_pressure == self.brute_pressure(manager)

    def test_resident_count_is_table_length(self):
        manager = make_manager(capacity=4, num_pages=64)
        assert manager.resident_count == 0
        for page in range(10):
            manager.read_page(page)
            assert manager.resident_count == len(manager.resident_pages())
        assert manager.resident_count == 4
