"""Tests for the write-ahead log, background writer, and checkpointer."""

import pytest

from repro.bufferpool.background import BackgroundWriter, Checkpointer
from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.wal import WriteAheadLog
from repro.policies.lru import LRUPolicy
from repro.storage.clock import VirtualClock

from tests.bufferpool.conftest import make_device, make_manager


def make_wal_manager(capacity=8, records_per_page=4):
    device = make_device()
    wal = WriteAheadLog(device.clock, records_per_page=records_per_page)
    manager = BufferPoolManager(capacity, LRUPolicy(), device, wal=wal)
    return manager, wal


class TestWriteAheadLog:
    def test_records_accumulate_before_flush(self):
        wal = WriteAheadLog(VirtualClock(), records_per_page=4)
        for _ in range(3):
            wal.log_update(1)
        assert wal.records_logged == 3
        assert wal.pages_written == 0

    def test_full_buffer_triggers_sequential_write(self):
        wal = WriteAheadLog(VirtualClock(), records_per_page=4)
        for _ in range(4):
            wal.log_update(1)
        assert wal.pages_written == 1

    def test_explicit_flush(self):
        wal = WriteAheadLog(VirtualClock(), records_per_page=100)
        wal.log_update(1)
        wal.flush()
        assert wal.pages_written == 1
        wal.flush()  # idempotent when empty
        assert wal.pages_written == 1

    def test_checkpoint_record(self):
        wal = WriteAheadLog(VirtualClock(), records_per_page=100)
        wal.checkpoint_record()
        assert wal.checkpoints == 1
        assert wal.pages_written == 1

    def test_lsn_monotonic(self):
        wal = WriteAheadLog(VirtualClock())
        lsns = [wal.log_update(p) for p in range(10)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 10

    def test_invalid_records_per_page(self):
        with pytest.raises(ValueError):
            WriteAheadLog(VirtualClock(), records_per_page=0)

    def test_wal_writes_advance_shared_clock(self):
        clock = VirtualClock()
        wal = WriteAheadLog(clock, records_per_page=1)
        wal.log_update(1)
        assert clock.now_us > 0


class TestWalIntegration:
    def test_page_write_is_logged(self):
        manager, wal = make_wal_manager()
        manager.write_page(3)
        assert wal.records_logged == 1

    def test_reads_are_not_logged(self):
        manager, wal = make_wal_manager()
        manager.read_page(3)
        assert wal.records_logged == 0

    def test_wal_flushed_before_writeback(self):
        """WAL-before-data ordering: eviction write forces a log flush."""
        manager, wal = make_wal_manager(capacity=2, records_per_page=100)
        manager.write_page(0)
        assert wal.pages_written == 0
        manager.read_page(1)
        manager.read_page(2)  # evicts dirty page 0 -> WAL flush first
        assert wal.pages_written == 1

    def test_checkpoint_writes_wal_record(self):
        manager, wal = make_wal_manager()
        manager.write_page(0)
        manager.flush_all()
        assert wal.checkpoints == 1


class TestBackgroundWriter:
    def test_flushes_dirty_pages(self):
        manager = make_manager(capacity=8)
        for page in range(4):
            manager.write_page(page)
        writer = BackgroundWriter(manager, pages_per_round=2)
        flushed = writer.run_round()
        assert flushed == 2
        assert len(manager.dirty_pages()) == 2
        assert manager.stats.background_writebacks == 2

    def test_single_page_batches_by_default(self):
        manager = make_manager(capacity=8)
        for page in range(4):
            manager.write_page(page)
        BackgroundWriter(manager, pages_per_round=4).run_round()
        assert manager.stats.writeback_batches == 4

    def test_ace_style_batching(self):
        manager = make_manager(capacity=8)
        for page in range(4):
            manager.write_page(page)
        BackgroundWriter(manager, pages_per_round=4, batch_size=4).run_round()
        assert manager.stats.writeback_batches == 1
        assert manager.device.stats.largest_write_batch == 4

    def test_follows_virtual_order(self):
        manager = make_manager(capacity=8)
        manager.write_page(0)
        manager.write_page(1)
        manager.read_page(0)  # 0 becomes MRU; 1 is the LRU dirty page
        writer = BackgroundWriter(manager, pages_per_round=1)
        writer.run_round()
        assert not manager.is_dirty(1)
        assert manager.is_dirty(0)

    def test_idle_round_is_cheap(self):
        manager = make_manager()
        writer = BackgroundWriter(manager)
        assert writer.run_round() == 0
        assert manager.device.stats.writes == 0

    def test_validation(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            BackgroundWriter(manager, pages_per_round=0)
        with pytest.raises(ValueError):
            BackgroundWriter(manager, batch_size=0)


class TestCheckpointer:
    def test_checkpoint_flushes_everything(self):
        manager = make_manager(capacity=8)
        for page in range(5):
            manager.write_page(page)
        checkpointer = Checkpointer(manager, interval_us=1e6, batch_size=2)
        flushed = checkpointer.checkpoint()
        assert flushed == 5
        assert manager.dirty_pages() == []
        assert checkpointer.checkpoints_taken == 1

    def test_maybe_checkpoint_respects_interval(self):
        manager = make_manager(capacity=8)
        manager.write_page(0)
        checkpointer = Checkpointer(manager, interval_us=1e9)
        assert not checkpointer.maybe_checkpoint()
        manager.device.clock.advance(1e9 + 1)
        assert checkpointer.maybe_checkpoint()

    def test_validation(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            Checkpointer(manager, interval_us=0)
        with pytest.raises(ValueError):
            Checkpointer(manager, batch_size=0)
