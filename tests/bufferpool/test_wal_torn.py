"""Torn WAL flushes: partial log pages are detectable and excluded from redo.

Group commit writes one physical log page per record group; power loss
mid-flush must leave a *detectably* partial page whose whole group drops
out of the redo window.  These tests drive the tear through
``WriteAheadLog.flush_hook`` — the same entry point the crash-point
engine uses — and check the page image, the durable index, and recovery
behaviour all agree that a torn group was never committed.
"""

import pytest

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.recovery import recover, simulate_crash
from repro.bufferpool.wal import (
    WalPageImage,
    WalRecordKind,
    WriteAheadLog,
    _records_checksum,
)
from repro.errors import PowerFailure
from repro.policies.lru import LRUPolicy
from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD

from tests.bufferpool.conftest import TEST_PROFILE


def make_wal(records_per_page=4):
    return WriteAheadLog(VirtualClock(), records_per_page=records_per_page)


def tear_at(wal, j, times=1):
    """Arm the flush hook to tear the next ``times`` flushes after ``j``."""
    remaining = [times]

    def hook(records):
        if remaining[0] > 0:
            remaining[0] -= 1
            return j
        return None

    wal.flush_hook = hook


class TestTornFlush:
    def test_torn_flush_raises_power_failure(self):
        wal = make_wal()
        for page in range(3):
            wal.log_update(page, payload=1)
        tear_at(wal, 2)
        with pytest.raises(PowerFailure) as exc_info:
            wal.flush()
        assert exc_info.value.site == "wal-flush"
        assert wal.torn_flushes == 1

    def test_torn_image_is_detectably_partial(self):
        wal = make_wal()
        for page in range(3):
            wal.log_update(page, payload=1)
        tear_at(wal, 1)
        with pytest.raises(PowerFailure):
            wal.flush()
        image = wal.device.peek(0)
        assert isinstance(image, WalPageImage)
        assert len(image.records) == 1
        assert image.intended_count == 3
        assert not image.is_valid
        # The checksum covers the full intended group, not the prefix.
        assert image.checksum == _records_checksum(
            tuple(wal._records[:3])
        )

    def test_torn_records_are_not_durable(self):
        wal = make_wal()
        # First group lands cleanly.
        for page in range(4):
            wal.log_update(page, payload=1)
        assert wal.durable_lsn == 4
        # Second group tears: none of its records may become durable,
        # not even the stored prefix.
        for page in range(3):
            wal.log_update(10 + page, payload=1)
        tear_at(wal, 2)
        with pytest.raises(PowerFailure):
            wal.flush()
        assert wal.durable_lsn == 4
        assert [r.lsn for r in wal.durable_records()] == [1, 2, 3, 4]
        assert wal.records_since(0) == wal.durable_records()
        assert wal.verify_durable_records() == wal.durable_records()

    def test_tear_at_zero_lands_nothing(self):
        wal = make_wal()
        wal.log_update(7, payload=1)
        tear_at(wal, 0)
        with pytest.raises(PowerFailure):
            wal.flush()
        image = wal.device.peek(0)
        assert image.records == ()
        assert not image.is_valid
        assert wal.durable_lsn == 0

    def test_out_of_range_tear_means_atomic_land(self):
        wal = make_wal()
        wal.log_update(7, payload=1)
        tear_at(wal, 99)
        wal.flush()  # no PowerFailure: the whole group landed
        assert wal.durable_lsn == 1
        assert wal.torn_flushes == 0

    def test_torn_checkpoint_never_advances_checkpoint_lsn(self):
        wal = make_wal()
        for page in range(4):
            wal.log_update(page, payload=1)
        assert wal.durable_lsn == 4
        tear_at(wal, 0)
        with pytest.raises(PowerFailure) as exc_info:
            wal.checkpoint_record()
        assert exc_info.value.site == "wal-checkpoint"
        assert wal.last_checkpoint_lsn == 0
        assert wal.checkpoints == 0


class TestTornFlushRecovery:
    def make_manager(self, num_pages=64):
        device = SimulatedSSD(TEST_PROFILE, num_pages=num_pages)
        device.format_pages(range(num_pages))
        wal = WriteAheadLog(device.clock, records_per_page=100)
        manager = BufferPoolManager(8, LRUPolicy(), device, wal=wal)
        return manager, wal

    def test_recovery_excludes_torn_group(self):
        manager, wal = self.make_manager()
        # Committed prefix: two updates, durably flushed.
        manager.write_page(1)
        manager.write_page(2)
        wal.flush()
        # Unflushed tail tears on its commit barrier.
        manager.write_page(3)
        manager.write_page(1)
        tear_at(wal, 1)
        with pytest.raises(PowerFailure):
            wal.flush()

        image = simulate_crash(manager)
        report = recover(image)
        assert report.redo_applied == 2
        device = image.device
        assert device.peek(1) == 1  # the torn second update never committed
        assert device.peek(2) == 1
        assert device.peek(3) == 0  # format payload: update was in the tear

    def test_recovery_is_deterministic_after_tear(self):
        results = []
        for _ in range(2):
            manager, wal = self.make_manager()
            for page in (1, 2, 3):
                manager.write_page(page)
            wal.flush()
            manager.write_page(2)
            tear_at(wal, 0)
            with pytest.raises(PowerFailure):
                wal.flush()
            image = simulate_crash(manager)
            report = recover(image)
            results.append(
                (report.redo_applied, [image.device.peek(p) for p in (1, 2, 3)])
            )
        assert results[0] == results[1]
