"""Tests for buffer tags, descriptors, the buffer table, and the frame pool."""

import pytest

from repro.bufferpool.descriptor import BufferDescriptor
from repro.bufferpool.pool import FramePool
from repro.bufferpool.table import BufferTable
from repro.bufferpool.tag import BufferTag, ForkNumber


class TestBufferTag:
    def test_construction(self):
        tag = BufferTag(rel_id=3, block=7)
        assert tag.fork is ForkNumber.MAIN
        assert str(tag) == "rel3/main/blk7"

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            BufferTag(rel_id=-1, block=0)
        with pytest.raises(ValueError):
            BufferTag(rel_id=0, block=-1)

    def test_tags_are_hashable_and_ordered(self):
        a = BufferTag(0, 1)
        b = BufferTag(0, 2)
        assert a < b
        assert len({a, b, BufferTag(0, 1)}) == 2


class TestBufferDescriptor:
    def test_fresh_descriptor_is_free(self):
        descriptor = BufferDescriptor(frame_id=0)
        assert not descriptor.in_use
        assert not descriptor.pinned

    def test_reset_clears_state(self):
        descriptor = BufferDescriptor(frame_id=0, page=4, dirty=True, pin_count=2)
        descriptor.prefetched = True
        descriptor.reset()
        assert descriptor.page is None
        assert not descriptor.dirty
        assert descriptor.pin_count == 0
        assert not descriptor.prefetched


class TestBufferTable:
    def test_lookup_miss_returns_none(self):
        assert BufferTable().lookup(3) is None

    def test_insert_and_lookup(self):
        table = BufferTable()
        table.insert(3, 7)
        assert table.lookup(3) == 7
        assert 3 in table
        assert len(table) == 1

    def test_double_insert_rejected(self):
        table = BufferTable()
        table.insert(3, 7)
        with pytest.raises(ValueError):
            table.insert(3, 8)

    def test_delete_returns_frame(self):
        table = BufferTable()
        table.insert(3, 7)
        assert table.delete(3) == 7
        assert 3 not in table

    def test_delete_missing_rejected(self):
        with pytest.raises(KeyError):
            BufferTable().delete(3)

    def test_pages_listing(self):
        table = BufferTable()
        table.insert(1, 0)
        table.insert(2, 1)
        assert sorted(table.pages()) == [1, 2]


class TestFramePool:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FramePool(0)

    def test_allocate_until_exhausted(self):
        pool = FramePool(2)
        a = pool.allocate()
        a.page = 10
        b = pool.allocate()
        b.page = 11
        assert pool.free_count == 0
        with pytest.raises(RuntimeError):
            pool.allocate()

    def test_free_recycles_frame(self):
        pool = FramePool(1)
        descriptor = pool.allocate()
        descriptor.page = 5
        pool.set_payload(descriptor.frame_id, "x")
        pool.free(descriptor.frame_id)
        assert pool.free_count == 1
        assert pool.payload(descriptor.frame_id) is None
        recycled = pool.allocate()
        assert recycled.page is None

    def test_double_free_rejected(self):
        pool = FramePool(1)
        descriptor = pool.allocate()
        descriptor.page = 5
        pool.free(descriptor.frame_id)
        with pytest.raises(ValueError):
            pool.free(descriptor.frame_id)

    def test_used_count_tracks(self):
        pool = FramePool(3)
        d = pool.allocate()
        d.page = 1
        assert pool.used_count == 1
        assert pool.has_free()
