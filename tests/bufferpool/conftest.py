"""Shared fixtures for bufferpool tests."""

from __future__ import annotations

import pytest

from repro.bufferpool.manager import BufferPoolManager
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile

#: A deterministic overhead-free device profile for unit tests.
TEST_PROFILE = DeviceProfile(
    name="test", alpha=2.0, k_r=4, k_w=4, read_latency_us=100.0,
    submit_overhead_us=0.0, queue_overhead_us=0.0,
)


def make_device(num_pages=256, with_ftl=False):
    device = SimulatedSSD(TEST_PROFILE, num_pages=num_pages, with_ftl=with_ftl)
    device.format_pages(range(num_pages))
    return device


def make_manager(capacity=8, num_pages=256, policy=None, wal=None, with_ftl=False):
    device = make_device(num_pages, with_ftl=with_ftl)
    if policy is None:
        policy = LRUPolicy()
    return BufferPoolManager(capacity, policy, device, wal=wal)


@pytest.fixture
def manager():
    return make_manager()
