"""Differential battery: dict vs array translation backends.

The translation vector (``ArrayBufferTable``) is a pure representation
change — every observable behaviour of a manager stack must be
byte-identical under ``table_backend="dict"`` and ``"array"``: RunMetrics
(buffer, device, virtual time), the eviction order, residency and its
iteration order, and the WAL record stream.  This suite drives the full
policy battery (all registered policies, baseline and ACE, sanitizer on
and off) over the paper's MS workload through both backends and asserts
exactly that.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.table import make_table
from repro.bufferpool.wal import WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import ExecutionOptions, run_trace
from repro.policies.registry import PAPER_POLICIES, POLICY_NAMES, make_policy
from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.workloads.synthetic import MS, generate_trace

from tests.bufferpool.conftest import TEST_PROFILE

NUM_PAGES = 512
CAPACITY = 48
OPTIONS = ExecutionOptions(cpu_us_per_op=2.0)


def build(policy_name, variant, backend, *, sanitize=False, with_wal=True):
    """One fresh stack with an explicit translation backend."""
    clock = VirtualClock()
    device = SimulatedSSD(TEST_PROFILE, num_pages=NUM_PAGES, clock=clock)
    device.format_pages(range(NUM_PAGES))
    policy = make_policy(policy_name, CAPACITY)
    evictions: list[int] = []
    # Capture the eviction order *before* the manager binds the policy:
    # the managers cache bound policy methods at construction, so a
    # post-construction wrapper would miss the inlined paths.
    original_remove = policy.remove

    def recording_remove(page):
        evictions.append(page)
        return original_remove(page)

    policy.remove = recording_remove
    wal = WriteAheadLog(clock) if with_wal else None
    if variant == "baseline":
        manager = BufferPoolManager(
            CAPACITY, policy, device, wal=wal,
            sanitize=sanitize, table_backend=backend,
        )
    else:
        config = ACEConfig.for_device(
            TEST_PROFILE, prefetch_enabled=(variant == "ace+pf")
        )
        manager = ACEBufferPoolManager(
            CAPACITY, policy, device, wal=wal, config=config,
            sanitize=sanitize, table_backend=backend,
        )
    assert manager.table.backend == backend
    return manager, evictions


def fingerprint(manager, metrics, evictions):
    """Everything observable about one finished run."""
    wal = manager.wal
    return {
        "buffer": dataclasses.asdict(metrics.buffer),
        "device": dataclasses.asdict(metrics.device),
        "elapsed_us": metrics.elapsed_us,
        "io_time_us": metrics.io_time_us,
        "cpu_time_us": metrics.cpu_time_us,
        "clock_us": manager.device.clock.now_us,
        "evictions": list(evictions),
        # Same pages AND the same iteration order (the array backend's
        # insertion-ordered mirror must track the dict exactly).
        "residency_order": manager.table.pages(),
        "dirty": sorted(manager.dirty_pages()),
        "pool_pressure": manager.pool_pressure,
        "wal_records": None if wal is None else wal._records,
        "wal_pages_written": None if wal is None else wal.pages_written,
        "wal_durable_lsn": None if wal is None else wal.durable_lsn,
    }


def run_one(policy_name, variant, backend, *, sanitize, ops, seed=7):
    manager, evictions = build(
        policy_name, variant, backend, sanitize=sanitize
    )
    trace = generate_trace(MS, NUM_PAGES, ops, seed=seed)
    metrics = run_trace(manager, trace, options=OPTIONS)
    return fingerprint(manager, metrics, evictions)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@pytest.mark.parametrize("variant", ["baseline", "ace"])
def test_backends_agree(policy_name, variant):
    """Fast-path battery: every policy, dict vs array, no sanitizer."""
    dict_run = run_one(policy_name, variant, "dict", sanitize=False, ops=3000)
    array_run = run_one(policy_name, variant, "array", sanitize=False, ops=3000)
    assert dict_run == array_run


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@pytest.mark.parametrize("variant", ["baseline", "ace"])
def test_backends_agree_sanitized(policy_name, variant):
    """Same battery under the invariant sanitizer (per-request path)."""
    dict_run = run_one(policy_name, variant, "dict", sanitize=True, ops=700)
    array_run = run_one(policy_name, variant, "array", sanitize=True, ops=700)
    assert dict_run == array_run


@pytest.mark.parametrize("policy_name", PAPER_POLICIES)
def test_backends_agree_with_prefetching(policy_name):
    """ACE + prefetching exercises the reader/prefetch install path."""
    dict_run = run_one(policy_name, "ace+pf", "dict", sanitize=False, ops=3000)
    array_run = run_one(policy_name, "ace+pf", "array", sanitize=False, ops=3000)
    assert dict_run == array_run


def test_env_switch_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_TABLE", "dict")
    assert make_table(NUM_PAGES).backend == "dict"
    monkeypatch.setenv("REPRO_TABLE", "array")
    assert make_table(NUM_PAGES).backend == "array"
    monkeypatch.setenv("REPRO_TABLE", "auto")
    assert make_table(NUM_PAGES).backend == "array"
    assert make_table(None).backend == "dict"
