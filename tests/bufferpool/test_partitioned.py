"""Tests for the partitioned bufferpool."""

import random

import pytest

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.partitioned import PartitionedBufferPoolManager
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.policies.lru import LRUPolicy

from tests.bufferpool.conftest import make_device


def baseline_factory(capacity, device):
    return BufferPoolManager(capacity, LRUPolicy(), device)


def ace_factory(capacity, device):
    return ACEBufferPoolManager(
        capacity, LRUPolicy(), device, config=ACEConfig(n_w=4, n_e=4)
    )


def make_partitioned(capacity=16, partitions=4, factory=baseline_factory,
                     num_pages=256):
    device = make_device(num_pages)
    return PartitionedBufferPoolManager(capacity, partitions, device, factory)


class TestConstruction:
    def test_capacity_split_evenly(self):
        manager = make_partitioned(capacity=10, partitions=4)
        capacities = [p.capacity for p in manager.partitions]
        assert sorted(capacities) == [2, 2, 3, 3]
        assert sum(capacities) == 10

    def test_validation(self):
        device = make_device()
        with pytest.raises(ValueError):
            PartitionedBufferPoolManager(4, 0, device, baseline_factory)
        with pytest.raises(ValueError):
            PartitionedBufferPoolManager(2, 4, device, baseline_factory)

    def test_repr(self):
        assert "partitions=4" in repr(make_partitioned())


class TestRouting:
    def test_page_always_routed_to_same_partition(self):
        manager = make_partitioned()
        first = manager.partition_of(42)
        for _ in range(5):
            assert manager.partition_of(42) is first

    def test_read_write_through_partitions(self):
        manager = make_partitioned()
        manager.write_page(10)
        assert manager.read_page(10) == 1
        assert manager.contains(10)

    def test_partitions_isolated(self):
        """Evictions in one partition never touch another's pages."""
        manager = make_partitioned(capacity=8, partitions=2)
        # Find pages for each partition.
        p0_pages = [p for p in range(100) if hash(p) % 2 == 0]
        p1_pages = [p for p in range(100) if hash(p) % 2 == 1]
        manager.read_page(p1_pages[0])
        # Flood partition 0 far past its capacity.
        for page in p0_pages[:30]:
            manager.read_page(page)
        # Partition 1's page survived untouched.
        assert manager.contains(p1_pages[0])


class TestAggregation:
    def test_stats_aggregate(self):
        manager = make_partitioned()
        manager.read_page(1)
        manager.read_page(1)
        manager.write_page(2)
        stats = manager.stats
        assert stats.read_requests == 2
        assert stats.write_requests == 1
        assert stats.hits == 1
        assert stats.misses == 2

    def test_flush_all_across_partitions(self):
        manager = make_partitioned()
        for page in range(8):
            manager.write_page(page)
        flushed = manager.flush_all()
        assert flushed == 8
        assert manager.dirty_pages() == []

    def test_occupancy_reports_per_partition(self):
        manager = make_partitioned(capacity=16, partitions=4)
        for page in range(12):
            manager.read_page(page)
        occupancy = manager.occupancy()
        assert len(occupancy) == 4
        assert sum(occupancy) == 12

    def test_resident_pages_union(self):
        manager = make_partitioned()
        for page in (3, 5, 9):
            manager.read_page(page)
        assert sorted(manager.resident_pages()) == [3, 5, 9]


class TestWithACE:
    def test_ace_partitions_batch_writes(self):
        manager = make_partitioned(capacity=16, partitions=2,
                                   factory=ace_factory)
        rng = random.Random(4)
        for _ in range(600):
            manager.access(rng.randrange(256), rng.random() < 0.7)
        assert manager.device.stats.largest_write_batch > 1
        assert manager.stats.mean_writeback_batch > 1.5

    def test_partitioned_ace_durability(self):
        manager = make_partitioned(capacity=16, partitions=4,
                                   factory=ace_factory)
        rng = random.Random(5)
        versions = {}
        for _ in range(500):
            page = rng.randrange(256)
            versions[page] = manager.write_page(page)
        manager.flush_all()
        for page, version in versions.items():
            assert manager.device._payloads[page] == version

    def test_skew_imbalance_visible(self):
        """A skewed workload loads partitions unevenly — the design cost."""
        manager = make_partitioned(capacity=16, partitions=4)
        rng = random.Random(6)
        hot = [p for p in range(256) if hash(p) % 4 == 0][:10]
        for _ in range(400):
            if rng.random() < 0.9:
                manager.read_page(hot[rng.randrange(len(hot))])
            else:
                manager.read_page(rng.randrange(256))
        occupancy = manager.occupancy()
        assert max(occupancy) >= min(occupancy)
