"""Tests for crash simulation and redo recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.recovery import (
    CrashImage,
    audit_committed,
    recover,
    simulate_crash,
)
from repro.bufferpool.wal import WalRecordKind, WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD

from tests.bufferpool.conftest import TEST_PROFILE


def make_wal_manager(capacity=8, num_pages=128, ace=False, records_per_page=4):
    device = SimulatedSSD(TEST_PROFILE, num_pages=num_pages)
    device.format_pages(range(num_pages))
    wal = WriteAheadLog(device.clock, records_per_page=records_per_page)
    if ace:
        manager = ACEBufferPoolManager(
            capacity, LRUPolicy(), device, wal=wal,
            config=ACEConfig(n_w=4, n_e=4),
        )
    else:
        manager = BufferPoolManager(capacity, LRUPolicy(), device, wal=wal)
    return manager, wal


class TestWalRecords:
    def test_update_records_carry_redo_payload(self):
        manager, wal = make_wal_manager()
        manager.write_page(3)
        record = wal._records[-1]
        assert record.kind is WalRecordKind.UPDATE
        assert record.page == 3
        assert record.payload == 1

    def test_durable_lsn_advances_on_flush(self):
        manager, wal = make_wal_manager(records_per_page=100)
        manager.write_page(3)
        assert wal.durable_lsn == 0
        wal.flush()
        assert wal.durable_lsn == 1

    def test_records_since(self):
        manager, wal = make_wal_manager(records_per_page=1)
        for page in range(5):
            manager.write_page(page)
        assert len(wal.records_since(2)) == 3
        with pytest.raises(ValueError):
            wal.records_since(-1)

    def test_checkpoint_sets_last_checkpoint_lsn(self):
        manager, wal = make_wal_manager()
        manager.write_page(0)
        manager.flush_all()
        assert wal.last_checkpoint_lsn == wal.lsn


class TestCrash:
    def test_crash_requires_wal(self):
        device = SimulatedSSD(TEST_PROFILE, num_pages=16)
        device.format_pages(range(16))
        manager = BufferPoolManager(4, LRUPolicy(), device)
        with pytest.raises(ValueError):
            simulate_crash(manager)

    def test_crash_reports_lost_dirty_pages(self):
        manager, wal = make_wal_manager()
        manager.write_page(3)
        manager.write_page(7)
        image = simulate_crash(manager)
        assert image.lost_dirty_pages == (3, 7)

    def test_crashed_manager_unusable(self):
        manager, _ = make_wal_manager()
        manager.write_page(3)
        simulate_crash(manager)
        with pytest.raises(Exception):
            manager.read_page(3)


class TestRecovery:
    def test_committed_update_survives_crash(self):
        manager, wal = make_wal_manager(records_per_page=100)
        manager.write_page(3)      # version 1, dirty in memory only
        wal.flush()                # commit
        image = simulate_crash(manager)
        assert image.device._payloads[3] == 0  # crash lost the update
        report = recover(image)
        assert report.redo_applied == 1
        assert image.device._payloads[3] == 1  # redo restored it

    def test_uncommitted_update_lost(self):
        manager, wal = make_wal_manager(records_per_page=100)
        manager.write_page(3)      # never flushed: not durable
        image = simulate_crash(manager)
        report = recover(image)
        assert report.redo_applied == 0
        assert image.device._payloads[3] == 0

    def test_redo_applies_latest_version_once(self):
        manager, wal = make_wal_manager(records_per_page=1)
        for _ in range(5):
            manager.write_page(3)
        image = simulate_crash(manager)
        writes_before = image.device.stats.writes
        report = recover(image)
        assert report.redo_applied == 5      # records scanned as redo
        assert image.device.stats.writes == writes_before + 1  # one write
        assert image.device._payloads[3] == 5

    def test_recovery_starts_from_checkpoint(self):
        manager, wal = make_wal_manager(records_per_page=1)
        manager.write_page(1)
        manager.flush_all()        # checkpoint: page 1 is on the device
        manager.write_page(2)
        image = simulate_crash(manager)
        report = recover(image)
        assert report.start_lsn == wal.last_checkpoint_lsn
        # Only the post-checkpoint update is redone.
        assert report.redo_applied == 1
        assert image.device._payloads[2] == 1

    def test_recovery_with_ace_manager(self):
        manager, wal = make_wal_manager(ace=True, records_per_page=1)
        for page in range(12):
            manager.write_page(page)
        image = simulate_crash(manager)
        recover(image)
        for page in range(12):
            assert image.device._payloads[page] == 1

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 31), st.booleans()),
            min_size=1, max_size=120,
        ),
        st.booleans(),
    )
    def test_durability_property(self, operations, use_ace):
        """Every committed write is recovered; versions never regress."""
        manager, wal = make_wal_manager(
            capacity=6, num_pages=32, ace=use_ace, records_per_page=3
        )
        committed: dict[int, int] = {}
        pending: dict[int, int] = {}
        for page, commit in operations:
            pending[page] = manager.write_page(page)
            if commit:
                wal.flush()
                committed.update(pending)
                pending.clear()
        image = simulate_crash(manager)
        recover(image)
        for page, version in committed.items():
            recovered = image.device._payloads[page]
            assert isinstance(recovered, int)
            assert recovered >= version


class TestAuditCommitted:
    """The reusable recovery audit shared by chaos and crash-point runs."""

    def make_image(self, payloads):
        device = SimulatedSSD(TEST_PROFILE, num_pages=16)
        device.format_pages(range(16))
        if payloads:
            device.write_batch(payloads)
        wal = WriteAheadLog(device.clock)
        return CrashImage(device=device, wal=wal, lost_dirty_pages=())

    def test_clean_match_is_ok(self):
        image = self.make_image({1: 2, 2: 1})
        audit = audit_committed(image, None, {1: 2, 2: 1}, exact=True)
        assert audit.ok
        assert audit.committed_updates == 3
        assert audit.lost_updates == 0
        assert audit.phantom_pages == 0

    def test_behind_the_ledger_is_lost(self):
        image = self.make_image({1: 1})
        audit = audit_committed(image, None, {1: 3})
        assert not audit.ok
        assert audit.lost == ((1, 3, 1),)
        assert audit.lost_updates == 1

    def test_non_exact_allows_device_ahead(self):
        # Chaos mode: the ledger is a lower bound (later write-backs may
        # have made more recent work durable).
        image = self.make_image({1: 5})
        assert audit_committed(image, None, {1: 2}).ok

    def test_exact_flags_ahead_as_phantom(self):
        image = self.make_image({1: 5})
        audit = audit_committed(image, None, {1: 2}, exact=True)
        assert not audit.ok
        assert audit.phantoms == ((1, 2, 5),)

    def test_exact_pages_extends_to_unledgered_pages(self):
        # Page 7 was never committed, yet redo left a version on it:
        # phantom redo, caught only because pages= widens the audit.
        image = self.make_image({7: 4})
        ledger = {1: 0}
        assert audit_committed(image, None, ledger, exact=True).ok
        audit = audit_committed(
            image, None, ledger, exact=True, pages=range(16)
        )
        assert audit.phantoms == ((7, 0, 4),)

    def test_non_counter_payload_reads_as_version_zero(self):
        image = self.make_image({1: "garbage"})
        audit = audit_committed(image, None, {1: 1})
        assert audit.lost == ((1, 1, 0),)
