"""WAL-based repair: ``repair_page``, the scrubber, and read-path healing.

Checksums make silent corruption *detectable*; this file tests the layer
that makes it *healable* — rewriting a damaged page from its latest
durable redo image, either on demand (a read raised
:class:`CorruptPageError`) or proactively (the idle scrubber).
"""

import pytest

from repro.bufferpool.background import IdleScrubber
from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.repair import (
    FORMAT_PAYLOAD,
    Scrubber,
    redo_index,
    repair_page,
)
from repro.bufferpool.wal import WriteAheadLog
from repro.errors import CorruptPageError
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD

from tests.bufferpool.conftest import TEST_PROFILE


def make_stack(num_pages=64, capacity=8, checksums=True):
    device = SimulatedSSD(
        TEST_PROFILE, num_pages=num_pages, checksums=checksums
    )
    device.format_pages(range(num_pages))
    wal = WriteAheadLog(device.clock, records_per_page=8)
    manager = BufferPoolManager(capacity, LRUPolicy(), device, wal=wal)
    return manager, device, wal


class TestRedoIndex:
    def test_latest_durable_image_per_page(self):
        manager, device, wal = make_stack()
        manager.write_page(3)
        manager.write_page(3)
        manager.write_page(5)
        wal.flush()
        manager.write_page(7)  # buffered, not durable
        index = redo_index(wal)
        assert index == {3: 2, 5: 1}


class TestRepairPage:
    def test_restores_latest_durable_image(self):
        manager, device, wal = make_stack()
        manager.write_page(3)
        manager.write_page(3)
        wal.flush()
        manager.flush_all()
        device.corrupt_payload(3, "rot")
        assert repair_page(device, wal, 3)
        assert device.read_page(3) == 2

    def test_falls_back_to_format_payload(self):
        manager, device, wal = make_stack()
        device.corrupt_payload(9, "rot")
        assert repair_page(device, wal, 9)
        assert device.read_page(9) == FORMAT_PAYLOAD

    def test_no_fallback_reports_unrepairable(self):
        manager, device, wal = make_stack()
        device.corrupt_payload(9, "rot")
        assert not repair_page(device, wal, 9, default_payload=None)
        with pytest.raises(CorruptPageError):
            device.read_page(9)

    def test_repair_refreshes_checksum(self):
        manager, device, wal = make_stack()
        manager.write_page(3)
        wal.flush()
        manager.flush_all()
        device.corrupt_payload(3, "rot")
        assert not device.verify_page(3)
        repair_page(device, wal, 3)
        assert device.verify_page(3)


class TestScrubber:
    def test_detects_and_repairs_checksum_failures(self):
        manager, device, wal = make_stack()
        for page in (2, 4, 6):
            manager.write_page(page)
        wal.flush()
        manager.flush_all()
        for page in (2, 4):
            device.corrupt_payload(page, "rot")
        scrub = Scrubber(device, wal, pages_per_round=16)
        stats = scrub.scrub_all()
        assert stats.corrupt_found == 2
        assert stats.repaired == 2
        assert stats.detected == 2
        assert stats.unrepairable == 0
        assert device.read_page(2) == 1
        assert device.read_page(4) == 1
        # A second pass over the healed device finds nothing.
        assert scrub.scrub_all().repaired == 2

    def test_wal_cross_check_catches_lost_write_without_checksums(self):
        # On a checksum-less device a lost write self-verifies (the stale
        # payload is simply old data), but the redo cross-check sees the
        # log said otherwise.
        manager, device, wal = make_stack(checksums=False)
        manager.write_page(5)
        wal.flush()
        manager.flush_all()
        device.corrupt_payload(5, FORMAT_PAYLOAD)  # the write "never landed"
        scrub = Scrubber(device, wal, pages_per_round=16)
        stats = scrub.scrub_all()
        assert stats.corrupt_found == 0
        assert stats.stale_found == 1
        assert stats.repaired == 1
        assert device.read_page(5) == 1

    def test_dirty_pages_exempt_from_cross_check(self):
        # A dirty page's device image is legitimately stale; only
        # is_dirty's testimony separates it from a lost write.
        manager, device, wal = make_stack(checksums=False)
        manager.write_page(5)  # buffered dirty, device still at format
        wal.flush()
        scrub = Scrubber(
            device, wal, pages_per_round=16, is_dirty=manager.is_dirty
        )
        stats = scrub.scrub_all()
        assert stats.stale_found == 0
        assert stats.repaired == 0
        # Without the testimony the same state reads as damage.
        naive = Scrubber(device, wal, pages_per_round=16)
        assert naive.scrub_all().stale_found == 1

    def test_unrepairable_without_fallback(self):
        manager, device, wal = make_stack()
        device.corrupt_payload(9, "rot")  # never logged
        scrub = Scrubber(device, wal, pages_per_round=16, default_payload=None)
        stats = scrub.scrub_all()
        assert stats.corrupt_found == 1
        assert stats.unrepairable == 1
        assert stats.repaired == 0

    def test_scrub_charges_read_io(self):
        manager, device, wal = make_stack()
        reads_before = device.stats.reads
        Scrubber(device, wal, pages_per_round=16).scrub_all()
        assert device.stats.reads == reads_before + device.num_pages

    def test_rejects_unbounded_device(self):
        manager, device, wal = make_stack()
        unbounded = SimulatedSSD(TEST_PROFILE, checksums=True)
        with pytest.raises(ValueError):
            Scrubber(unbounded, wal)
        with pytest.raises(ValueError):
            Scrubber(device, wal, pages_per_round=0)


class TestIdleScrubber:
    def test_requires_wal(self):
        device = SimulatedSSD(TEST_PROFILE, num_pages=16)
        device.format_pages(range(16))
        manager = BufferPoolManager(4, LRUPolicy(), device)
        with pytest.raises(ValueError):
            IdleScrubber(manager)

    def test_interval_gates_rounds(self):
        manager, device, wal = make_stack()
        idle = IdleScrubber(manager, interval_us=1_000.0, pages_per_round=4)
        assert not idle.maybe_scrub()  # no virtual time has passed
        device.clock.advance(1_500.0)
        assert idle.maybe_scrub()
        assert idle.stats.rounds == 1
        assert not idle.maybe_scrub()  # interval restarts after the round

    def test_rejects_bad_interval(self):
        manager, device, wal = make_stack()
        with pytest.raises(ValueError):
            IdleScrubber(manager, interval_us=0.0)


class TestReadPathRepair:
    def test_corrupt_read_heals_from_wal(self):
        manager, device, wal = make_stack(capacity=2)
        manager.write_page(3)
        wal.flush()
        manager.flush_all()
        # Evict page 3 so the next read hits the device.
        manager.read_page(10)
        manager.read_page(11)
        device.corrupt_payload(3, "rot")
        assert manager.read_page(3) == 1
        assert manager.stats.pages_repaired == 1
        assert manager.stats.corrupt_page_reads == 1
        assert device.verify_page(3)

    def test_corrupt_read_without_wal_propagates(self):
        device = SimulatedSSD(TEST_PROFILE, num_pages=16, checksums=True)
        device.format_pages(range(16))
        manager = BufferPoolManager(4, LRUPolicy(), device)
        device.corrupt_payload(3, "rot")
        with pytest.raises(CorruptPageError):
            manager.read_page(3)
        assert manager.stats.corrupt_page_reads == 1
        assert manager.stats.pages_repaired == 0
