"""Tests for the baseline buffer manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bufferpool.manager import BufferPoolManager
from repro.errors import PageNotBufferedError, PoolExhaustedError
from repro.policies.clock import ClockSweepPolicy
from repro.policies.lru import LRUPolicy

from tests.bufferpool.conftest import make_device, make_manager


class TestHitsAndMisses:
    def test_first_access_misses(self, manager):
        manager.read_page(0)
        assert manager.stats.misses == 1
        assert manager.stats.hits == 0

    def test_second_access_hits(self, manager):
        manager.read_page(0)
        manager.read_page(0)
        assert manager.stats.hits == 1
        assert manager.contains(0)

    def test_request_counters(self, manager):
        manager.read_page(0)
        manager.write_page(1)
        assert manager.stats.read_requests == 1
        assert manager.stats.write_requests == 1

    def test_hit_ratio(self, manager):
        manager.read_page(0)
        manager.read_page(0)
        manager.read_page(0)
        manager.read_page(1)
        assert manager.stats.hit_ratio == pytest.approx(0.5)

    def test_miss_reads_from_device(self, manager):
        manager.read_page(5)
        assert manager.device.stats.reads == 1


class TestEviction:
    def test_pool_never_exceeds_capacity(self):
        manager = make_manager(capacity=4)
        for page in range(20):
            manager.read_page(page)
        assert len(manager.table) == 4
        assert manager.pool.used_count == 4

    def test_lru_victim_evicted(self):
        manager = make_manager(capacity=2)
        manager.read_page(0)
        manager.read_page(1)
        manager.read_page(2)
        assert not manager.contains(0)
        assert manager.contains(1)
        assert manager.contains(2)

    def test_clean_eviction_issues_no_write(self):
        manager = make_manager(capacity=2)
        manager.read_page(0)
        manager.read_page(1)
        manager.read_page(2)
        assert manager.device.stats.writes == 0
        assert manager.stats.clean_evictions == 1

    def test_dirty_eviction_writes_single_page(self):
        manager = make_manager(capacity=2)
        manager.write_page(0)
        manager.read_page(1)
        manager.read_page(2)  # evicts dirty page 0
        assert manager.device.stats.writes == 1
        assert manager.stats.dirty_evictions == 1
        assert manager.stats.writeback_batches == 1
        assert manager.stats.mean_writeback_batch == pytest.approx(1.0)

    def test_all_pinned_raises(self):
        manager = make_manager(capacity=2)
        manager.read_page(0)
        manager.read_page(1)
        manager.pin(0)
        manager.pin(1)
        with pytest.raises(PoolExhaustedError):
            manager.read_page(2)

    def test_pool_exhausted_error_is_structured(self):
        manager = make_manager(capacity=2)
        manager.read_page(0)
        manager.read_page(1)
        manager.pin(0)
        manager.pin(1)
        with pytest.raises(PoolExhaustedError) as excinfo:
            manager.read_page(7)
        error = excinfo.value
        assert error.page == 7
        assert error.capacity == 2
        assert error.pinned == 2
        assert error.candidates_examined == 2
        assert "requested page 7" in str(error)
        assert "pool capacity 2" in str(error)
        assert "2 pinned" in str(error)
        assert "2 candidates examined" in str(error)

    def test_pool_pressure_counts_pinned_and_dirty(self):
        manager = make_manager(capacity=4)
        assert manager.pool_pressure == 0.0
        manager.read_page(0)
        manager.pin(0)
        assert manager.pool_pressure == pytest.approx(0.25)
        manager.write_page(1)  # dirty, unpinned
        assert manager.pool_pressure == pytest.approx(0.5)
        manager.write_page(0)  # pinned AND dirty: counted once
        assert manager.pool_pressure == pytest.approx(0.5)
        manager.unpin(0)
        assert manager.pool_pressure == pytest.approx(0.5)

    def test_pinned_page_survives_pressure(self):
        manager = make_manager(capacity=2)
        manager.read_page(0)
        manager.pin(0)
        for page in range(1, 10):
            manager.read_page(page)
        assert manager.contains(0)
        manager.unpin(0)

    def test_unpin_unpinned_rejected(self):
        manager = make_manager()
        manager.read_page(0)
        with pytest.raises(ValueError):
            manager.unpin(0)


class TestWritePath:
    def test_write_increments_version(self, manager):
        assert manager.write_page(3) == 1
        assert manager.write_page(3) == 2
        assert manager.read_page(3) == 2

    def test_explicit_payload(self, manager):
        manager.write_page(3, payload="hello")
        assert manager.read_page(3) == "hello"

    def test_write_marks_dirty(self, manager):
        manager.write_page(3)
        assert manager.is_dirty(3)
        assert manager.dirty_pages() == [3]

    def test_read_does_not_dirty(self, manager):
        manager.read_page(3)
        assert not manager.is_dirty(3)

    def test_flush_page_cleans(self, manager):
        manager.write_page(3)
        manager.flush_page(3)
        assert not manager.is_dirty(3)
        assert manager.device.stats.writes == 1
        assert manager.contains(3)  # flush does not evict

    def test_flush_page_clean_is_noop(self, manager):
        manager.read_page(3)
        manager.flush_page(3)
        assert manager.device.stats.writes == 0

    def test_flush_page_nonresident_rejected(self, manager):
        with pytest.raises(PageNotBufferedError):
            manager.flush_page(123)

    def test_flush_all(self, manager):
        for page in range(3):
            manager.write_page(page)
        flushed = manager.flush_all()
        assert flushed == 3
        assert manager.dirty_pages() == []
        # Baseline flushes one page at a time.
        assert manager.stats.writeback_batches == 3

    def test_dirty_page_version_survives_eviction(self):
        """No lost update: the evicted dirty version is what comes back."""
        manager = make_manager(capacity=2)
        manager.write_page(0)
        manager.write_page(0)
        manager.read_page(1)
        manager.read_page(2)  # evicts page 0 (dirty, version 2)
        assert not manager.contains(0)
        assert manager.read_page(0) == 2


class TestAccessDispatch:
    def test_access_routes_reads_and_writes(self, manager):
        manager.access(1, is_write=False)
        manager.access(1, is_write=True)
        assert manager.stats.read_requests == 1
        assert manager.stats.write_requests == 1


class TestStateView:
    def test_nonresident_pages_not_dirty_or_pinned(self, manager):
        assert not manager.is_dirty(200)
        assert not manager.is_pinned(200)

    def test_pin_reflects_in_view(self, manager):
        manager.read_page(0)
        manager.pin(0)
        assert manager.is_pinned(0)


class TestConstruction:
    def test_zero_capacity_rejected(self):
        device = make_device()
        with pytest.raises(ValueError):
            BufferPoolManager(0, LRUPolicy(), device)

    def test_policy_bound_to_manager(self):
        policy = LRUPolicy()
        manager = make_manager(policy=policy)
        manager.write_page(0)
        assert policy.next_dirty(1) == [0]

    def test_variant_label(self, manager):
        assert manager.variant == "baseline"

    def test_repr(self, manager):
        assert "BufferPoolManager" in repr(manager)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.booleans()),
            min_size=1,
            max_size=300,
        )
    )
    def test_durability_and_capacity_invariants(self, requests):
        """After any request mix: pool within capacity, reads see last write."""
        manager = make_manager(capacity=6, num_pages=64)
        versions = dict.fromkeys(range(64), 0)
        for page, is_write in requests:
            if is_write:
                versions[page] = manager.write_page(page)
            else:
                value = manager.read_page(page)
                expected = versions[page] if versions[page] else None
                # format_pages wrote payload 0 at load time
                assert value == (versions[page] if versions[page] else 0)
            assert manager.pool.used_count <= 6
        manager.flush_all()
        # After a checkpoint the device holds the latest version of all.
        for page, version in versions.items():
            if version:
                assert manager.device._payloads[page] == version

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_clock_policy_integration(self, seed):
        import random

        rng = random.Random(seed)
        manager = make_manager(capacity=5, num_pages=64, policy=ClockSweepPolicy())
        for _ in range(200):
            manager.access(rng.randrange(64), rng.random() < 0.5)
        assert manager.pool.used_count <= 5
        assert len(manager.policy) == manager.pool.used_count
        assert set(manager.policy.pages()) == set(manager.resident_pages())
