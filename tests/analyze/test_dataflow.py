"""Tests for the dataflow framework: reaching defs and the taint engine."""

import ast

from repro.analyze.cfg import build_cfg
from repro.analyze.dataflow import (
    ReachingDefinitions,
    TaintAnalysis,
    TaintSpec,
    assigned_names,
)


def cfg_of(source):
    func = ast.parse(source).body[0]
    return build_cfg(func)


def block_at(cfg, lineno):
    for block in cfg.blocks:
        for stmt in block.statements:
            if stmt.lineno == lineno:
                return block
    raise AssertionError(f"no statement at line {lineno}")


class TestAssignedNames:
    def test_tuple_and_starred_targets_flatten(self):
        target = ast.parse("a, (b, c), *rest = x").body[0].targets[0]
        assert list(assigned_names(target)) == ["a", "b", "c", "rest"]

    def test_attribute_store_binds_no_local(self):
        target = ast.parse("obj.field = x").body[0].targets[0]
        assert list(assigned_names(target)) == []


class TestReachingDefinitions:
    def test_parameters_defined_at_def_line(self):
        cfg = cfg_of("def f(x, y):\n    return x\n")
        defs = ReachingDefinitions(cfg)
        body = block_at(cfg, 2)
        assert defs.reaching(body.index)["x"] == frozenset({1})
        assert defs.reaching(body.index)["y"] == frozenset({1})

    def test_reassignment_kills_the_old_definition(self):
        cfg = cfg_of(
            "def f():\n"
            "    a = 1\n"     # 2
            "    a = 2\n"     # 3
            "    b = a\n"     # 4
        )
        defs = ReachingDefinitions(cfg)
        body = block_at(cfg, 2)
        assert defs.out_state[body.index]["a"] == frozenset({3})

    def test_both_branch_definitions_reach_the_join(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"   # 3
            "    else:\n"
            "        a = 2\n"   # 5
            "    return a\n"    # 6
        )
        defs = ReachingDefinitions(cfg)
        join = block_at(cfg, 6)
        assert defs.reaching(join.index)["a"] == frozenset({3, 5})

    def test_loop_body_definition_reaches_its_own_entry(self):
        cfg = cfg_of(
            "def f(items):\n"
            "    total = 0\n"            # 2
            "    for item in items:\n"   # 3
            "        total = total + 1\n"  # 4
            "    return total\n"         # 5
        )
        defs = ReachingDefinitions(cfg)
        body = block_at(cfg, 4)
        # Around the back edge, the body sees both the init and itself.
        assert defs.reaching(body.index)["total"] == frozenset({2, 4})
        after = block_at(cfg, 5)
        assert defs.reaching(after.index)["total"] == frozenset({2, 4})


def clock_spec():
    """Taint: calls to ``tick()``; sanitizer: ``clean(...)``."""
    def source(expr):
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "tick"
        ):
            return "tick()"
        return None

    def sanitizer(call):
        return isinstance(call.func, ast.Name) and call.func.id == "clean"

    return TaintSpec(source=source, sanitizer=sanitizer, label="clock")


def taint_of(source_code, lineno, name):
    cfg = cfg_of(source_code)
    analysis = TaintAnalysis(cfg, clock_spec())
    for stmt, state in analysis.walk_statements():
        if stmt.lineno == lineno:
            return state.get(name)
    raise AssertionError(f"no statement at line {lineno}")


class TestTaintAnalysis:
    def test_source_taints_the_assigned_name(self):
        origin = taint_of(
            "def f():\n    t = tick()\n    use(t)\n", 3, "t"
        )
        assert origin == ("tick()", 2)

    def test_taint_propagates_through_expressions(self):
        origin = taint_of(
            "def f():\n    t = tick()\n    u = t + 1\n    use(u)\n", 4, "u"
        )
        assert origin == ("tick()", 2)

    def test_sanitizer_cleanses_its_arguments(self):
        origin = taint_of(
            "def f():\n    t = tick()\n    u = clean(t)\n    use(u)\n",
            4, "u",
        )
        assert origin is None

    def test_reassignment_from_clean_value_cleanses(self):
        origin = taint_of(
            "def f():\n    t = tick()\n    t = 0\n    use(t)\n", 4, "t"
        )
        assert origin is None

    def test_branch_taint_survives_the_join(self):
        origin = taint_of(
            "def f(x):\n"
            "    t = 0\n"
            "    if x:\n"
            "        t = tick()\n"  # 4
            "    use(t)\n"          # 5
            , 5, "t",
        )
        assert origin == ("tick()", 4)

    def test_loop_carried_taint_reaches_the_loop_test(self):
        origin = taint_of(
            "def f(items):\n"
            "    t = 0\n"
            "    for item in items:\n"  # 3
            "        t = tick()\n"      # 4
            , 3, "t",
        )
        assert origin == ("tick()", 4)

    def test_for_target_tainted_by_tainted_iterable(self):
        origin = taint_of(
            "def f():\n"
            "    seq = tick()\n"
            "    for item in seq:\n"  # 3
            "        use(item)\n"     # 4
            , 4, "item",
        )
        assert origin == ("tick()", 2)

    def test_earliest_source_line_wins_at_merges(self):
        origin = taint_of(
            "def f(x):\n"
            "    if x:\n"
            "        t = tick()\n"  # 3
            "    else:\n"
            "        t = tick()\n"  # 5
            "    use(t)\n"          # 6
            , 6, "t",
        )
        assert origin == ("tick()", 3)

    def test_taint_of_evaluates_raw_expressions(self):
        cfg = cfg_of("def f():\n    t = tick()\n    use(t)\n")
        analysis = TaintAnalysis(cfg, clock_spec())
        for stmt, state in analysis.walk_statements():
            if stmt.lineno == 3:
                call = stmt.value
                assert analysis.taint_of(call, state) == ("tick()", 2)
                break
        else:
            raise AssertionError("line 3 not reached")
