"""Tests for the runtime invariant sanitizer.

Strategy: a sanitized manager must stay silent through a legitimate
workload, and every deliberate corruption of one cross-structure
invariant must raise a :class:`SanitizerError` naming exactly that
invariant.  Impure policies (defined locally here) prove the virtual-order
checks catch mutation, duplicates, phantom pages, and pinned leaks.
"""

import pytest

from repro.analyze.sanitizer import InvariantSanitizer, attach, env_enabled
from repro.bufferpool.manager import BufferPoolManager
from repro.errors import SanitizerError
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile

TEST_PROFILE = DeviceProfile(
    name="test", alpha=2.0, k_r=4, k_w=4, read_latency_us=100.0,
    submit_overhead_us=0.0, queue_overhead_us=0.0,
)


def make_manager(capacity=8, num_pages=64, policy=None, **kwargs):
    device = SimulatedSSD(TEST_PROFILE, num_pages=num_pages)
    device.format_pages(range(num_pages))
    if policy is None:
        policy = LRUPolicy()
    return BufferPoolManager(capacity, policy, device, **kwargs)


class ShufflingPolicy(LRUPolicy):
    """Impure on purpose: peeking at the order rotates the live state."""

    def eviction_order(self):
        order = list(self._order)
        if order:
            self._order.move_to_end(order[0])  # lint: allow-mutation
        yield from order


class StutteringPolicy(LRUPolicy):
    """Yields every page twice."""

    def eviction_order(self):
        for page in self._order:
            yield page
            yield page


class PhantomPolicy(LRUPolicy):
    """Appends a page that is not resident."""

    def eviction_order(self):
        yield from super().eviction_order()
        yield 999_999


class PinIgnoringPolicy(LRUPolicy):
    """Forgets to filter pinned pages out of the virtual order."""

    def eviction_order(self):
        yield from self._order


class TestCleanRuns:
    def test_workload_passes_and_counts_checks(self):
        manager = make_manager(sanitize=True)
        for step in range(40):
            page = step % 12  # forces evictions (capacity 8)
            if step % 3 == 0:
                manager.write_page(page, payload=step)
            else:
                manager.read_page(page)
        manager.pin(3)
        manager.read_page(3)
        manager.unpin(3)
        if manager.is_dirty(3):
            manager.flush_page(3)
        manager.flush_all()
        assert manager.sanitizer.checks_run >= 44
        manager.sanitizer.assert_clean()

    def test_off_by_default_and_zero_overhead(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        manager = make_manager()
        assert manager.sanitizer is None
        # No wrappers installed: the ops resolve on the class, not the
        # instance, so unsanitised managers keep the fast path.
        assert "read_page" not in vars(manager)

    def test_sanitized_manager_wraps_every_op(self):
        manager = make_manager(sanitize=True)
        for name in InvariantSanitizer.WRAPPED_OPS:
            assert name in vars(manager)

    def test_attach_is_idempotent(self):
        manager = make_manager(sanitize=True)
        sanitizer = manager.sanitizer
        assert attach(manager) is sanitizer
        before = sanitizer.checks_run
        manager.read_page(1)
        # One op == one validation; a double attach would run two.
        assert sanitizer.checks_run == before + 1


class TestEnvironmentSwitch:
    def test_truthy_values_enable(self, monkeypatch):
        for value in ("1", "true", "yes", "on"):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert env_enabled()

    def test_falsy_values_disable(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not env_enabled()
        for value in ("", "0", "false", "no", "off", "OFF"):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert not env_enabled()

    def test_env_attaches_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert make_manager().sanitizer is not None

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert make_manager(sanitize=False).sanitizer is None


class TestCorruptions:
    """Each test breaks one invariant by hand and expects its name back."""

    def test_negative_pin_count(self):
        manager = make_manager(sanitize=True)
        manager.read_page(5)
        frame = manager._frame_of[5]
        manager._descriptors[frame].pin_count = -1
        with pytest.raises(SanitizerError) as exc:
            manager.sanitizer.assert_clean()
        assert exc.value.invariant == "pin-count-negative"
        assert exc.value.page == 5

    def test_pinned_page_evicted(self):
        manager = make_manager(sanitize=True)
        manager.read_page(5)
        manager._pinned_set.add(777)  # pinned but not resident
        with pytest.raises(SanitizerError) as exc:
            manager.sanitizer.assert_clean()
        assert exc.value.invariant == "pinned-evicted"
        assert exc.value.page == 777

    def test_pinned_mirror_disagrees(self):
        manager = make_manager(sanitize=True)
        manager.read_page(5)
        manager._pinned_set.add(5)  # descriptor pin_count is still 0
        with pytest.raises(SanitizerError) as exc:
            manager.sanitizer.assert_clean()
        assert exc.value.invariant == "pinned-mirror"

    def test_dirty_mirror_disagrees(self):
        manager = make_manager(sanitize=True)
        manager.read_page(5)  # clean read
        manager._dirty_set.add(5)  # descriptor dirty flag is still False
        with pytest.raises(SanitizerError) as exc:
            manager.sanitizer.assert_clean()
        assert exc.value.invariant == "dirty-mirror"
        assert exc.value.page == 5

    def test_free_list_count(self):
        manager = make_manager(sanitize=True)
        manager.read_page(5)
        manager.pool._free.append(manager.pool._free[0])
        with pytest.raises(SanitizerError) as exc:
            manager.sanitizer.assert_clean()
        assert exc.value.invariant == "free-list-count"

    def test_free_list_overlap(self):
        manager = make_manager(sanitize=True)
        manager.read_page(5)
        occupied = manager._frame_of[5]
        free = manager.pool._free
        free.pop()
        free.append(occupied)  # same length, but overlaps the table
        with pytest.raises(SanitizerError) as exc:
            manager.sanitizer.assert_clean()
        assert exc.value.invariant == "free-list-overlap"
        assert exc.value.frame == occupied

    def test_table_descriptor_mismatch(self):
        manager = make_manager(sanitize=True)
        manager.read_page(5)
        manager.read_page(6)
        frame_of = manager._frame_of
        frame_of[5], frame_of[6] = frame_of[6], frame_of[5]
        with pytest.raises(SanitizerError) as exc:
            manager.sanitizer.assert_clean()
        assert exc.value.invariant == "table-descriptor-mismatch"

    def test_policy_membership(self):
        manager = make_manager(sanitize=True)
        manager.read_page(5)
        manager.read_page(6)
        manager.policy.remove(6)  # policy forgets a resident page
        with pytest.raises(SanitizerError) as exc:
            manager.sanitizer.assert_clean()
        assert exc.value.invariant == "policy-membership"
        assert exc.value.page == 6

    def test_corruption_caught_by_next_operation(self):
        # The wrappers validate after *every* public op, so corrupt state
        # surfaces on the next call — with that call named as the trigger.
        manager = make_manager(sanitize=True)
        manager.read_page(5)
        manager._dirty_set.add(5)
        with pytest.raises(SanitizerError) as exc:
            manager.read_page(6)
        assert exc.value.invariant == "dirty-mirror"
        assert exc.value.operation == "read_page"


class TestVirtualOrderChecks:
    def test_impure_order_detected(self):
        manager = make_manager(sanitize=True, policy=ShufflingPolicy())
        manager.read_page(1)  # single page: rotation is a no-op, passes
        with pytest.raises(SanitizerError) as exc:
            manager.read_page(2)
        assert exc.value.invariant == "virtual-order-purity"
        assert "ShufflingPolicy" in str(exc.value)

    def test_duplicate_yield_detected(self):
        manager = make_manager(sanitize=True, policy=StutteringPolicy())
        with pytest.raises(SanitizerError) as exc:
            manager.read_page(1)
        assert exc.value.invariant == "virtual-order-duplicates"
        assert exc.value.page == 1

    def test_non_resident_yield_detected(self):
        manager = make_manager(sanitize=True, policy=PhantomPolicy())
        with pytest.raises(SanitizerError) as exc:
            manager.read_page(1)
        assert exc.value.invariant == "virtual-order-membership"
        assert exc.value.page == 999_999

    def test_pinned_yield_detected(self):
        manager = make_manager(sanitize=True, policy=PinIgnoringPolicy())
        manager.read_page(1)
        with pytest.raises(SanitizerError) as exc:
            manager.pin(1)
        assert exc.value.invariant == "virtual-order-pinned"
        assert exc.value.page == 1
        assert exc.value.operation == "pin"


class TestStructuredError:
    def test_attributes_and_message(self):
        error = SanitizerError(
            "dirty-mirror", "write_page", "mirror disagrees", page=7, frame=2
        )
        assert error.invariant == "dirty-mirror"
        assert error.operation == "write_page"
        assert error.page == 7
        assert error.frame == 2
        text = str(error)
        assert "[dirty-mirror]" in text
        assert "write_page" in text
        assert "page 7" in text
        assert "frame 2" in text

    def test_stack_config_passthrough(self):
        from repro.bench.runner import StackConfig, build_stack

        config = StackConfig(
            profile=TEST_PROFILE, policy="lru", variant="ace",
            num_pages=128, sanitize=True,
        )
        manager = build_stack(config)
        assert manager.sanitizer is not None
        manager.read_page(1)
        assert manager.sanitizer.checks_run == 1
