"""Lint fixture: R001 negative — correctly threaded, seeded randomness."""

import random


def make_rng(seed: int) -> random.Random:
    # Seeded construction is the sanctioned pattern.
    return random.Random(seed)


def sampled(rng: random.Random, pages: list[int], k: int) -> list[int]:
    # Instance methods of a threaded RNG are fine; only the module-level
    # functions (shared global state) are banned.
    return rng.sample(pages, k)
