"""Lint fixture: R003 negative — a pure ``eviction_order`` that simulates
its sweep on local copies, as the shipped policies do."""

import heapq


class CopyingPolicy:
    def __init__(self):
        self._usage = {}
        self._recency = {}

    def eviction_order(self):
        # Copies of policy state and mutation of *locals* are fine; only
        # the live self-rooted structures are protected.
        usage = dict(self._usage)
        heap = [(count, self._recency[page], page)
                for page, count in usage.items()]
        heapq.heapify(heap)
        while heap:
            _, _, page = heapq.heappop(heap)
            yield page

    def on_access(self, page):
        self._usage[page] = self._usage.get(page, 0) + 1
