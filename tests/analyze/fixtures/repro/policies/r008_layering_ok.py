"""R008 negative fixture: sanctioned import shapes pass clean.

Downward imports follow the layer DAG, and ``TYPE_CHECKING`` imports are
exempt — they are erased at runtime and exist precisely to annotate
across layers.
"""

from typing import TYPE_CHECKING

from repro.errors import PolicyError

if TYPE_CHECKING:
    from repro.engine.executor import Executor


def describe(error: PolicyError, executor: "Executor | None") -> str:
    return f"{error} via {executor}"
