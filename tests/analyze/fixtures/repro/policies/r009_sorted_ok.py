"""R009 negative fixture: sorted() and order-free consumption pass."""


def ordered(pages):
    hot = {page for page in pages if page > 8}
    out = []
    for page in sorted(hot):
        out.append(page)
    return out


def totals(pages):
    hot = set(pages)
    return len(hot) + sum(hot)


def sort_after(pages):
    hot = set(pages)
    items = list(hot)
    items.sort()
    return items
