"""R008 fixture: a policy reaching up into the engine layer.

Policies sit near the bottom of the layer DAG; importing the serving
stack inverts the architecture (the policy would see the machinery that
drives it).
"""

from repro.engine.serving import AdmissionController


def admit(request):
    controller = AdmissionController()
    return controller.admit(request)
