"""Lint fixture: R003 violations — ``eviction_order`` mutating policy state,
plus one deliberate mutation behind the ``# lint: allow-mutation`` hatch."""

import heapq


class SweepingPolicy:
    """A Clock-style policy whose virtual order cheats: it decrements the
    live usage counts instead of simulating the sweep on a copy."""

    def __init__(self):
        self._usage = {}
        self._order = {}
        self._heap = []
        self._hand = 0

    def eviction_order(self):
        while self._usage:
            page, usage = min(self._usage.items(), key=lambda kv: kv[1])
            if usage == 0:
                self._usage.pop(page)
                yield page
            else:
                self._usage[page] = usage - 1
            self._hand += 1
            heapq.heappush(self._heap, page)
            self.on_access(page)

    def on_access(self, page):
        self._usage[page] = self._usage.get(page, 0) + 1


class CountingPolicy:
    """Covers the escape hatch: a sanctioned diagnostic counter."""

    def __init__(self):
        self._pages = []
        self.peeks = 0

    def eviction_order(self):
        self.peeks += 1  # lint: allow-mutation
        yield from self._pages
