"""Lint fixture: R001 violations — unseeded randomness, wall clock, env.

Never imported; parsed by the lint tests only.  The path places it under a
``repro/policies`` directory so the determinism rule's package scoping
applies, exactly as it would to a real policy module.
"""

import os
import random
import time
from random import shuffle


def jittered_usage():
    # Module-level random functions share one unseeded global RNG.
    return random.random() + random.randint(0, 5)


def wall_clock_stamp():
    return time.time()


def unseeded_rng():
    return random.Random()


def env_tuned_window():
    return int(os.environ.get("REPRO_FAKE_WINDOW", "8")) + len(
        os.getenv("REPRO_FAKE_MODE", "")
    )


def shuffled(pages):
    shuffle(pages)
    return pages
