"""R009 fixture: set-iteration order leaking into ordered outputs."""


def leak_append(pages):
    hot = {page for page in pages if page > 8}
    out = []
    for page in hot:
        out.append(page)
    return out


def leak_list(tags):
    names = set(tags)
    return list(names)


def leak_join(raw):
    parts = {item.strip() for item in raw}
    return ",".join(parts)
