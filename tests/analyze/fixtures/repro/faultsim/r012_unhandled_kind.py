"""R012 fixture: a FaultKind member the dispatch never references."""

import enum


class FaultKind(enum.Enum):
    TRANSIENT = "transient"
    TORN = "torn"
    BITROT = "bitrot"
    GAMMA_RAY = "gamma-ray"  # the injector below forgot this one
    COSMIC_RAY = "cosmic-ray"  # lint: allow-unhandled-fault


class FaultyDevice:
    def apply(self, kind):
        if kind is FaultKind.TRANSIENT:
            return "retryable"
        if kind is FaultKind.TORN:
            return "partial"
        if kind is FaultKind.BITROT:
            return "silent"
        raise AssertionError(f"unhandled fault kind: {kind}")
