"""R012 fixture: every FaultKind member appears in the dispatch."""

import enum


class FaultKind(enum.Enum):
    TRANSIENT = "transient"
    TORN = "torn"


class FaultyDevice:
    def apply(self, kind):
        if kind is FaultKind.TRANSIENT:
            return "retryable"
        if kind is FaultKind.TORN:
            return "partial"
        raise AssertionError(f"unhandled fault kind: {kind}")
