"""R010 fixture: batched counters that can miss their flush.

Modeled on the executor's turbo-replay baseline with the ``finally``
flush removed: a fault raised by the manager mid-trace (or the early
return) loses the accumulated deltas, and the reported hit rate
silently under-counts.
"""


def replay_unprotected(manager, trace, stats):
    hits = 0
    misses = 0
    for page, is_write in trace:
        frame = manager.lookup(page, is_write)
        if frame is None:
            misses += 1
            manager.fetch(page)
        else:
            hits += 1
    stats.hits += hits
    stats.misses += misses


def replay_early_exit(manager, trace, stats):
    accesses = 0
    for page, _ in trace:
        accesses += 1
        if manager.poisoned(page):
            return None
    stats.accesses += accesses
