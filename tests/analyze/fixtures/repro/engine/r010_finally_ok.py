"""R010 negative fixture: the finally flush covers every path."""


def replay_protected(manager, trace, stats):
    hits = 0
    misses = 0
    try:
        for page, is_write in trace:
            frame = manager.lookup(page, is_write)
            if frame is None:
                misses += 1
                manager.fetch(page)
            else:
                hits += 1
    finally:
        stats.hits += hits
        stats.misses += misses


def tally_pure(trace, stats):
    total = 0
    for _ in trace:
        total += 1
    stats.accesses += total
