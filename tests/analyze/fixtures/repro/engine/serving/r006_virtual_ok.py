"""R006 negative fixture: virtual-clock deadline arithmetic is clean."""


def deadline_for(now_us: float, budget_us: float) -> float:
    return now_us + budget_us


def backoff_for(attempt: int, base_us: float, cap_us: float) -> float:
    return min(cap_us, base_us * (2.0 ** (attempt - 1)))


def expired(now_us: float, deadline_us: float) -> bool:
    return deadline_us > 0.0 and deadline_us <= now_us
