"""R006 fixture: wall-clock waits inside the serving package.

Never imported, only parsed by the lint tests.  ``time.sleep`` is the
canary: it is not in R001's wall-clock call denylist, so only R006's
module-wide ban catches it (same for the bare imports).
"""

import time  # noqa: F401
from datetime import timedelta  # noqa: F401


def wait_for_deadline(pause_s: float) -> None:
    time.sleep(pause_s)


def sanctioned_pause() -> None:
    time.sleep(0.01)  # lint: allow-wall-clock
