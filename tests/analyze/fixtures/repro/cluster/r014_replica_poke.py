"""R014 fixture: writing to replica stacks outside the replication module.

Every call below mutates a replica's pool/device/WAL directly, forking
the replica from the shipped durable prefix: the divergence only
surfaces after a failover, as a failed promotion audit.
"""


def poke_pool(replica, page):
    replica.manager.access(page, is_write=True)


def poke_device(group, page, payload):
    group.replicas[1].device.write_page(page, payload=payload)


def poke_dirty(replica_node, page):
    replica_node.manager.mark_dirty(page)


def poke_batch(shard):
    shard.replica_stack.write_batch([(3, b"x"), (4, b"y")])
