"""R014 fixture: sanctioned replica interactions.

Reading a replica, writing through the *primary*, and a deliberate test
probe under the escape hatch are all clean.
"""


def inspect(replica, page):
    return replica.device.peek(page)


def serve(primary, page):
    primary.manager.access(page, is_write=True)


def ship(group, records):
    return group.commit_shipment(records)


def probe(replica, page):
    replica.manager.access(page, is_write=True)  # lint: allow-replica-write
