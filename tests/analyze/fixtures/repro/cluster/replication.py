"""R014 fixture: the home module is exempt by definition.

This file's module name resolves to ``repro.cluster.replication`` — the
shipping/apply machinery itself — so the very writes flagged elsewhere
are its job here.
"""


def apply_shipment(replica, records):
    for page, payload in records:
        replica.device.write_page(page, payload=payload)


def catch_up(replica, page):
    replica.manager.access(page, is_write=True)
