"""R008 fixture: one half of a module-scope import cycle.

Invisible to any per-file rule — each file parses fine alone; only the
assembled project graph (both cycle files on the table) can see it.
"""

from repro.core.r008_cycle_b import helper_b


def helper_a():
    return helper_b() + 1
