"""Lint fixture: R002 negative — reads descriptor state, assigns nothing.

Reading ``descriptor.dirty`` (or asking the ``PageStateView``) is fine;
only assignments are the manager's privilege.
"""


def count_dirty(view, pages):
    return sum(1 for page in pages if view.is_dirty(page))


def classify(descriptor):
    if descriptor.dirty and descriptor.pin_count == 0:
        return "writeback-candidate"
    return "keep"
