"""R007 fixture: sanctioned translation access patterns.

Own-state access (``self.``), the public probe surface, and the
deliberate hot-path alias under the escape hatch are all clean.
"""


class OwnsState:
    def __init__(self):
        self._slots = [-1] * 8
        self._frame_of = {}

    def lookup(self, page):
        frame = self._slots[page]
        return None if frame < 0 else frame


def resident(manager, page):
    return manager.table.lookup(page) is not None


def hot_alias(manager):
    return manager._slots  # lint: allow-translation
