"""R007 fixture: reaching into another object's translation internals.

Every function below bakes in one backend's page→frame representation
(dict membership / vector indexing) instead of going through the table's
public probe surface.
"""


def resident(manager, page):
    return page in manager._frame_of


def probe(manager, page):
    return manager._slots[page]


def peek(table, page):
    frame_of = table._frame_of
    return frame_of.get(page)
