"""R008 fixture: the other half of the module-scope import cycle."""

from repro.core.r008_cycle_a import helper_a


def helper_b():
    return helper_a() - 1
