"""Lint fixture: R002 violations — descriptor state assigned outside
``repro.bufferpool`` (this file's fixture path puts it in ``repro.core``)."""


def evict_by_hand(manager, page):
    descriptor = manager._descriptor_of(page)
    descriptor.dirty = False
    descriptor.pin_count -= 1
    return descriptor


def warm_up(descriptor):
    descriptor.usage = 5
    descriptor.cold = False
    descriptor.prefetched = True
