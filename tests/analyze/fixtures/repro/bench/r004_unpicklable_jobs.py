"""Lint fixture: R004 violations — unpicklable values flowing into the
parallel fan-out's ``TraceSpec``/``GridJob`` construction sites."""

from repro.bench.parallel import GridJob, TraceSpec


def build_jobs(configs):
    def local_trace():
        return None

    class LocalSpec:
        pass

    jobs = [GridJob(config, trace=lambda: None) for config in configs]
    jobs.append(GridJob(configs[0], trace=local_trace))
    jobs.append(GridJob(configs[0], trace=LocalSpec()))
    return jobs


def build_spec():
    make_spec = lambda: None  # noqa: E731
    return TraceSpec(make_spec, 100, 200, seed=7)
