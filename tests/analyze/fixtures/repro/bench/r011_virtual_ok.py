"""R011 negative fixture: virtual clock, hatched env read, local timing.

The virtual clock is not a taint source; a hatched ``os.environ`` read
kills the taint at the source line; and a tainted value that only flows
to a ``return`` (never into state or a branch) is the caller's problem
by design — R011 polices *sinks*, not mere existence.
"""

import os
import time


def tick(clock, device):
    now = clock.now()
    device.stats.last_tick = now


def host_budget():
    raw = os.environ.get("REPRO_BUDGET")  # lint: allow-wall-clock
    if raw:
        return int(raw)
    return None


def frame_duration():
    start = time.perf_counter()
    elapsed = time.perf_counter() - start
    return elapsed
