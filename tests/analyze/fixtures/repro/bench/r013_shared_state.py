"""R013 fixture: worker entry points mutating module-global mutables."""

from concurrent.futures import ProcessPoolExecutor

_RESULTS: dict[int, int] = {}
_LOG = []
_TOTALS = {"ops": 0}
_COUNTER = 0  # an int is immutable: rebinding needs `global` to fire


def _record(job: int, value: int) -> None:
    # Reached transitively from the worker entry: still a violation.
    _RESULTS[job] = value


def _bump_log(job: int) -> None:
    _LOG.append(job)


def worker(job: int) -> int:
    value = job * 2
    _record(job, value)
    _bump_log(job)
    _TOTALS["ops"] += 1
    global _COUNTER
    _COUNTER = _COUNTER + 1
    return value


_CACHE: dict[int, int] = {}


def cached_worker(job: int) -> int:
    hit = _CACHE.get(job)
    if hit is None:
        # Deliberate per-process memo, sanctioned by the hatch.
        hit = _CACHE[job] = job * 3  # lint: allow-shared-state
    return hit


def fan_out(jobs: list[int]) -> list[int]:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, job) for job in jobs]
        extra = list(pool.map(cached_worker, jobs))
    return [future.result() for future in futures] + extra
