"""R013 fixture: the sanctioned worker pattern — pure jobs, returned values."""

from concurrent.futures import ProcessPoolExecutor

#: Read-only module constant: never mutated, so never flagged.
_WEIGHTS = {"read": 1, "write": 4}

#: Mutable module state is fine as long as no worker-reachable code
#: mutates it — the parent process owns it.
_HISTORY: list[int] = []


def worker(job: int) -> int:
    # Locals shadowing a global name stay local (no false positive).
    _RESULTS = {}
    _RESULTS[job] = job * _WEIGHTS["write"]
    totals = []
    totals.append(_RESULTS[job])
    return sum(totals)


def collect(jobs: list[int]) -> list[int]:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, job) for job in jobs]
    results = [future.result() for future in futures]
    # Parent-side mutation of module state is not worker-reachable.
    _HISTORY.extend(results)
    return results
