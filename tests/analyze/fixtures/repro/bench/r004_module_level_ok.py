"""Lint fixture: R004 negative — module-level callables and plain data
flowing into ``TraceSpec``/``GridJob`` pickle fine."""

from repro.bench.parallel import GridJob, TraceSpec
from repro.workloads.synthetic import MS


def module_level_filter(job):
    return job is not None


def build_jobs(configs):
    spec = TraceSpec(MS, 1000, 2000, seed=7)
    jobs = [GridJob(config, trace=spec) for config in configs]
    return [job for job in jobs if module_level_filter(job)]
