"""R011 fixture: wall-clock/env taint reaching state and control flow."""

import os
import time


def stamp(device):
    now = time.perf_counter()
    device.stats.last_tick = now


def deadline_check(config):
    if time.monotonic() > config.deadline:
        return "late"
    return "on-time"


def env_loop(pool):
    limit = os.environ.get("REPRO_LIMIT")
    while limit:
        pool.shrink()
        limit = None
