"""Lint fixture: the sanctioned fault-handling patterns R005 accepts —
re-raising, routing into the retry machinery, recording degradation, and
handlers that never catch fault exceptions in the first place."""


def reraises(device, page):
    try:
        return device.read_page(page)
    except IOFaultError:
        raise


def wraps_and_raises(device, page):
    try:
        return device.read_page(page)
    except IOFaultError as fault:
        raise RetriesExhaustedError("read", (page,), 1) from fault


def routes_to_retry(manager, page):
    try:
        return manager.device.read_page(page)
    except IOFaultError as fault:
        return manager._read_page_with_retry(page, fault)


def records_degradation(device, batch, stats):
    try:
        device.write_batch(batch)
    except TornWriteError:
        stats.degraded_writebacks += 1


def _retry_read(device, page):
    # Inside the retry machinery itself (marker in the function name) the
    # handler legitimately captures the fault and loops.
    for _ in range(3):
        try:
            return device.read_page(page)
        except IOFaultError as fault:
            last = fault
    raise last


def unrelated_catch(device, table, page):
    try:
        return device.read_page(page) + table[page]
    except KeyError:
        return None
