"""Lint fixture: R005 violations — fault-catching handlers around device
I/O that neither re-raise nor route into the retry/degradation machinery,
plus one sanctioned swallow behind ``# lint: allow-io-swallow``."""


def swallow_on_read(device, page):
    try:
        return device.read_page(page)
    except IOFaultError:  # flagged: drops an injected fault
        return None


def swallow_bare(device, batch):
    try:
        device.write_batch(batch)
    except:  # noqa: E722 — flagged: a bare except catches faults too
        pass


def swallow_broad(device, page):
    try:
        device.write_page(page)
    except Exception as exc:
        last_error = exc  # flagged: captured but never surfaced
        return last_error


def sanctioned_swallow(device, page):
    try:
        return device.read_page(page)
    except IOFaultError:  # lint: allow-io-swallow
        return None
