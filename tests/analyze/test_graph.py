"""Tests for the project import graph: edges, resolution, cycles."""

import ast

from repro.analyze.graph import (
    LAYER_DEPS,
    ProjectGraph,
    extract_edges,
    package_of,
    validate_layer_declaration,
)


def edges_of(source, module="repro.core.sample", is_package=False, tags=None):
    tree = ast.parse(source)
    return extract_edges(
        "x.py", module, tree, line_tags=tags or {}, is_package=is_package
    )


class TestExtractEdges:
    def test_plain_and_from_imports(self):
        edges = edges_of(
            "import repro.storage.device\n"
            "from repro.policies import lru\n"
        )
        assert [(e.target, e.deferred, e.type_checking) for e in edges] == [
            ("repro.storage.device", False, False),
            ("repro.policies.lru", False, False),
        ]

    def test_non_repro_imports_are_ignored(self):
        assert edges_of("import os\nfrom json import dumps\n") == []
        # A top-level module merely *prefixed* with repro is not ours.
        assert edges_of("import reproduce\n") == []

    def test_function_scope_import_is_deferred(self):
        edges = edges_of(
            "def f():\n"
            "    from repro.engine import executor\n"
        )
        assert len(edges) == 1 and edges[0].deferred

    def test_type_checking_gate_is_recorded(self):
        edges = edges_of(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.engine import executor\n"
        )
        assert len(edges) == 1 and edges[0].type_checking

    def test_relative_import_resolves_against_module(self):
        # Symbol imports overshoot by one component on purpose; the
        # graph's longest-prefix resolve lands them on the real module.
        edges = edges_of(
            "from . import lru\nfrom .clock import VirtualClock\n",
            module="repro.storage.device",
        )
        assert [e.target for e in edges] == [
            "repro.storage.lru", "repro.storage.clock.VirtualClock",
        ]

    def test_relative_import_from_package_init(self):
        edges = edges_of(
            "from .device import SimulatedSSD\n",
            module="repro.storage",
            is_package=True,
        )
        assert [e.target for e in edges] == [
            "repro.storage.device.SimulatedSSD"
        ]

    def test_suppression_tags_ride_along(self):
        edges = edges_of(
            "from repro.engine import executor\n",
            tags={1: frozenset({"allow-layering"})},
        )
        assert edges[0].tags == frozenset({"allow-layering"})

    def test_conditional_and_try_imports_are_module_scope(self):
        edges = edges_of(
            "try:\n"
            "    import repro.bench.perf\n"
            "except ImportError:\n"
            "    repro_perf = None\n"
            "if True:\n"
            "    from repro.errors import ReproError\n"
        )
        assert all(not e.deferred and not e.type_checking for e in edges)
        assert len(edges) == 2


class TestPackageOf:
    def test_submodules_map_to_their_package(self):
        assert package_of("repro.policies.lru") == "repro.policies"
        assert package_of("repro.bufferpool.manager") == "repro.bufferpool"

    def test_top_level_modules_own_their_key(self):
        assert package_of("repro.errors") == "repro.errors"
        assert package_of("repro") == "repro"


class TestProjectGraph:
    def test_resolve_longest_known_prefix(self):
        graph = ProjectGraph([], ["repro.storage", "repro.storage.device"])
        assert graph.resolve("repro.storage.device") == "repro.storage.device"
        assert graph.resolve("repro.storage.device.SimulatedSSD") == \
            "repro.storage.device"
        assert graph.resolve("repro.storage.clock") == "repro.storage"
        assert graph.resolve("repro.engine") is None

    def test_runtime_edges_skip_deferred_and_type_checking(self):
        modules = ["repro.a", "repro.b"]
        mk = lambda **kw: dict(  # noqa: E731 - local edge factory
            src_path="x.py", src_module="repro.a", target="repro.b",
            lineno=1, col=0, deferred=False, type_checking=False,
        ) | kw
        from repro.analyze.graph import ImportEdge

        edges = [
            ImportEdge(**mk()),
            ImportEdge(**mk(deferred=True, lineno=2)),
            ImportEdge(**mk(type_checking=True, lineno=3)),
        ]
        adjacency = ProjectGraph(edges, modules).runtime_module_edges()
        assert adjacency["repro.a"] == {"repro.b"}

    def test_two_module_cycle_detected(self):
        graph = ProjectGraph(
            edges_of("from repro.core.b import x\n", module="repro.core.a")
            + edges_of("from repro.core.a import y\n", module="repro.core.b"),
            ["repro.core.a", "repro.core.b"],
        )
        assert graph.cycles() == [["repro.core.a", "repro.core.b"]]

    def test_three_module_cycle_rotated_deterministically(self):
        graph = ProjectGraph(
            edges_of("import repro.core.b\n", module="repro.core.a")
            + edges_of("import repro.core.c\n", module="repro.core.b")
            + edges_of("import repro.core.a\n", module="repro.core.c"),
            ["repro.core.a", "repro.core.b", "repro.core.c"],
        )
        assert graph.cycles() == [
            ["repro.core.a", "repro.core.b", "repro.core.c"]
        ]

    def test_deferred_import_breaks_the_cycle(self):
        graph = ProjectGraph(
            edges_of("import repro.core.b\n", module="repro.core.a")
            + edges_of(
                "def late():\n    import repro.core.a\n",
                module="repro.core.b",
            ),
            ["repro.core.a", "repro.core.b"],
        )
        assert graph.cycles() == []

    def test_edge_for_finds_the_reporting_site(self):
        edges = edges_of(
            "import os\nfrom repro.core.b import x\n", module="repro.core.a"
        )
        graph = ProjectGraph(edges, ["repro.core.a", "repro.core.b"])
        edge = graph.edge_for("repro.core.a", "repro.core.b")
        assert edge is not None and edge.lineno == 2


class TestLayerDeclaration:
    def test_shipped_declaration_is_valid(self):
        validate_layer_declaration()

    def test_policies_and_bufferpool_cannot_reach_up(self):
        for low in ("repro.policies", "repro.bufferpool"):
            assert "repro.engine" not in LAYER_DEPS[low]
            assert "repro.bench" not in LAYER_DEPS[low]

    def test_analyze_stands_alone(self):
        assert LAYER_DEPS["repro.analyze"] == frozenset({"repro.errors"})
