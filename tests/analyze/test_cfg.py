"""Tests for the per-function CFG builder: shape, edges, must-pass."""

import ast

from repro.analyze.cfg import CFG, build_cfg


def cfg_of(source, with_exceptions=False):
    func = ast.parse(source).body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func, with_exceptions=with_exceptions)


def line_block(cfg, lineno):
    """The block holding the statement that *starts* at the given line."""
    for block in cfg.blocks:
        for stmt in block.statements:
            if stmt.lineno == lineno:
                return block
    raise AssertionError(f"no statement at line {lineno}")


class TestLinear:
    def test_straight_line_is_one_body_block(self):
        cfg = cfg_of("def f():\n    a = 1\n    b = a + 1\n    return b\n")
        body = line_block(cfg, 2)
        assert [s.lineno for s in body.statements] == [2, 3, 4]
        assert body.successors == {CFG.EXIT}

    def test_fall_off_the_end_reaches_exit(self):
        cfg = cfg_of("def f():\n    a = 1\n")
        assert CFG.EXIT in line_block(cfg, 2).successors


class TestBranches:
    SRC = (
        "def f(x):\n"
        "    if x:\n"        # 2
        "        a = 1\n"    # 3
        "    else:\n"
        "        a = 2\n"    # 5
        "    return a\n"     # 6
    )

    def test_then_and_else_join(self):
        cfg = cfg_of(self.SRC)
        head = line_block(cfg, 2)
        then = line_block(cfg, 3)
        orelse = line_block(cfg, 5)
        join = line_block(cfg, 6)
        assert head.successors == {then.index, orelse.index}
        assert join.index in then.successors
        assert join.index in orelse.successors

    def test_if_without_else_falls_through(self):
        cfg = cfg_of("def f(x):\n    if x:\n        a = 1\n    return x\n")
        head = line_block(cfg, 2)
        join = line_block(cfg, 4)
        assert join.index in head.successors  # the test-false path

    def test_return_in_branch_goes_to_exit(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        return 1\n"
            "    return 2\n"
        )
        assert line_block(cfg, 3).successors == {CFG.EXIT}


class TestLoops:
    SRC = (
        "def f(items):\n"
        "    total = 0\n"          # 2
        "    for item in items:\n" # 3
        "        total += item\n"  # 4
        "    return total\n"       # 5
    )

    def test_body_loops_back_to_head(self):
        cfg = cfg_of(self.SRC)
        head = line_block(cfg, 3)
        body = line_block(cfg, 4)
        assert body.index in head.successors
        assert head.index in body.successors  # the back edge

    def test_head_exits_to_after(self):
        cfg = cfg_of(self.SRC)
        head = line_block(cfg, 3)
        after = line_block(cfg, 5)
        assert after.index in head.successors

    def test_break_jumps_past_the_loop(self):
        cfg = cfg_of(
            "def f(items):\n"
            "    for item in items:\n"  # 2
            "        break\n"           # 3
            "    return 0\n"            # 4
        )
        assert line_block(cfg, 4).index in line_block(cfg, 3).successors

    def test_continue_jumps_to_the_head(self):
        cfg = cfg_of(
            "def f(items):\n"
            "    for item in items:\n"  # 2
            "        continue\n"        # 3
        )
        assert line_block(cfg, 2).index in line_block(cfg, 3).successors

    def test_while_else_runs_on_normal_exit(self):
        cfg = cfg_of(
            "def f(x):\n"
            "    while x:\n"     # 2
            "        x -= 1\n"   # 3
            "    else:\n"
            "        x = -1\n"   # 5
            "    return x\n"     # 6
        )
        head = line_block(cfg, 2)
        orelse = line_block(cfg, 5)
        assert orelse.index in head.successors


class TestExceptions:
    def test_calls_gain_edge_to_exit_without_handler(self):
        cfg = cfg_of("def f(m):\n    m.work()\n", with_exceptions=True)
        assert CFG.EXIT in line_block(cfg, 2).successors

    def test_no_exceptional_edges_by_default(self):
        cfg = cfg_of("def f(m):\n    m.work()\n    x = 1\n")
        body = line_block(cfg, 2)
        assert body.successors == {CFG.EXIT}  # only the fall-off edge
        assert len(body.statements) == 2      # no block split either

    def test_calls_raise_into_innermost_finally(self):
        cfg = cfg_of(
            "def f(m):\n"
            "    try:\n"            # 2
            "        m.work()\n"    # 3
            "    finally:\n"
            "        m.close()\n"   # 5
            , with_exceptions=True,
        )
        fin = line_block(cfg, 5)
        assert fin.index in line_block(cfg, 3).successors
        # The finally flows both onward and out (re-raise path).
        assert CFG.EXIT in fin.successors

    def test_handler_catches_before_finally(self):
        cfg = cfg_of(
            "def f(m):\n"
            "    try:\n"
            "        m.work()\n"          # 3
            "    except ValueError:\n"
            "        m.recover()\n"       # 5
            "    return 1\n"              # 6
            , with_exceptions=True,
        )
        body = line_block(cfg, 3)
        handler = line_block(cfg, 5)
        # The raise edge lands on the dispatch block, which feeds the
        # handler; the handler rejoins normal flow.
        dispatch = next(
            index for index in body.successors
            if handler.index in cfg.blocks[index].successors
        )
        assert dispatch != CFG.EXIT
        assert line_block(cfg, 6).index in handler.successors

    def test_pure_arithmetic_cannot_raise(self):
        cfg = cfg_of(
            "def f(x):\n    y = 1\n    y = y if x else 2\n",
            with_exceptions=True,
        )
        assert line_block(cfg, 2).successors == {CFG.EXIT}


class TestMustPass:
    def test_finally_flush_dominates_exit(self):
        cfg = cfg_of(
            "def f(m, s):\n"
            "    n = 0\n"
            "    try:\n"
            "        for item in m.items():\n"  # 4
            "            n += 1\n"              # 5
            "    finally:\n"
            "        s.stats.n += n\n"          # 7
            , with_exceptions=True,
        )
        acc = line_block(cfg, 5)
        flush = line_block(cfg, 7)
        assert cfg.always_passes_through(acc.index, {flush.index})

    def test_unprotected_flush_is_bypassable(self):
        cfg = cfg_of(
            "def f(m, s):\n"
            "    n = 0\n"
            "    for item in m.items():\n"  # 3
            "        n += 1\n"              # 4
            "    s.stats.n += n\n"          # 5
            , with_exceptions=True,
        )
        acc = line_block(cfg, 4)
        flush = line_block(cfg, 5)
        assert not cfg.always_passes_through(acc.index, {flush.index})

    def test_start_in_target_passes_trivially(self):
        cfg = cfg_of("def f():\n    a = 1\n")
        block = line_block(cfg, 2)
        assert cfg.always_passes_through(block.index, {block.index})


class TestQueries:
    def test_reachable_excludes_code_after_return(self):
        cfg = cfg_of("def f():\n    return 1\n    x = 2\n")
        dead = line_block(cfg, 3)
        assert dead.index not in cfg.reachable()
        assert cfg.block_of(dead.statements[0]) is dead

    def test_rpo_starts_at_entry_and_respects_edges(self):
        cfg = cfg_of(
            "def f(x):\n    if x:\n        a = 1\n    return x\n"
        )
        order = cfg.rpo()
        assert order[0] == CFG.ENTRY
        positions = {index: pos for pos, index in enumerate(order)}
        head = line_block(cfg, 2)
        then = line_block(cfg, 3)
        assert positions[head.index] < positions[then.index]
