"""Tests for the repo-specific AST lint rules (R001-R014).

Each rule gets at least one positive test (a fixture file written to
violate it, laid out under ``fixtures/repro/...`` so package scoping
applies) and one negative test (the sanctioned pattern passes clean).
The fixtures are never imported — only parsed.
"""

from pathlib import Path

import pytest

from repro.analyze.lint import (
    SourceModule,
    Violation,
    collect_files,
    module_name,
    run_lint,
)
from repro.analyze.rules import DEFAULT_RULES
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_file(path: Path) -> list[Violation]:
    violations, files = run_lint([path])
    assert files == 1
    return violations


def codes(violations: list[Violation]) -> set[str]:
    return {violation.rule for violation in violations}


class TestFramework:
    def test_module_name_roots_at_repro(self):
        assert module_name(Path("src/repro/policies/lru.py")) == \
            "repro.policies.lru"
        fixture = FIXTURES / "policies" / "r001_unseeded.py"
        assert module_name(fixture) == "repro.policies.r001_unseeded"

    def test_module_name_init_is_package(self):
        assert module_name(Path("src/repro/bufferpool/__init__.py")) == \
            "repro.bufferpool"

    def test_module_name_outside_repro_is_stem(self):
        assert module_name(Path("scripts/helper.py")) == "helper"

    def test_in_package_scoping(self):
        module = SourceModule(Path("src/repro/policies/lru.py"), "x = 1\n")
        assert module.in_package("repro.policies")
        assert module.in_package("repro.core", "repro.policies")
        assert not module.in_package("repro.bufferpool")
        assert not module.in_package("repro.pol")  # no prefix false-match

    def test_collect_files_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-312.py").write_text("x = 1\n")
        assert collect_files([tmp_path]) == [tmp_path / "a.py"]

    def test_collect_files_missing_path_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "nope"])

    def test_syntax_error_becomes_e000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        violations = lint_file(bad)
        assert codes(violations) == {"E000"}
        assert "syntax error" in violations[0].message

    def test_violation_format(self):
        violation = Violation("a/b.py", 3, 4, "R001", "boom")
        assert violation.format() == "a/b.py:3:4: R001 boom"

    def test_rule_catalogue_complete(self):
        assert [rule.code for rule in DEFAULT_RULES] == [
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
            "R008", "R009", "R010", "R011", "R012", "R013", "R014",
        ]
        for rule in DEFAULT_RULES:
            assert rule.name and rule.description
            assert rule.scope in {"file", "graph", "project"}


class TestDeterminismRule:
    def test_flags_unseeded_sources(self):
        violations = lint_file(FIXTURES / "policies" / "r001_unseeded.py")
        assert codes(violations) == {"R001"}
        messages = " | ".join(violation.message for violation in violations)
        assert "random.random" in messages
        assert "random.randint" in messages
        assert "time.time" in messages
        assert "os.environ" in messages
        assert "os.getenv" in messages
        assert "random.shuffle" in messages  # from-import resolved
        assert "random.Random()" in messages  # unseeded construction
        assert len(violations) == 7

    def test_seeded_rng_is_clean(self):
        assert lint_file(FIXTURES / "policies" / "r001_seeded_ok.py") == []

    def test_scoped_to_simulation_packages(self, tmp_path):
        # The same source outside the repro.* packages is not the lint's
        # business (scripts, tests, tools may use the wall clock freely).
        source = (FIXTURES / "policies" / "r001_unseeded.py").read_text()
        free = tmp_path / "r001_unseeded.py"
        free.write_text(source)
        assert lint_file(free) == []


class TestEncapsulationRule:
    def test_flags_descriptor_assignment_outside_bufferpool(self):
        violations = lint_file(FIXTURES / "core" / "r002_descriptor_poke.py")
        assert codes(violations) == {"R002"}
        fields = " | ".join(violation.message for violation in violations)
        for field in ("dirty", "pin_count", "usage", "cold", "prefetched"):
            assert field in fields
        assert len(violations) == 5

    def test_reads_are_clean(self):
        assert lint_file(FIXTURES / "core" / "r002_view_ok.py") == []

    def test_bufferpool_itself_may_assign(self, tmp_path):
        # The manager is the one sanctioned writer of descriptor bits.
        pool_dir = tmp_path / "repro" / "bufferpool"
        pool_dir.mkdir(parents=True)
        inside = pool_dir / "poke.py"
        inside.write_text("def f(d):\n    d.dirty = True\n")
        assert lint_file(inside) == []


class TestVirtualOrderPurityRule:
    def test_flags_mutation_inside_eviction_order(self):
        violations = lint_file(FIXTURES / "policies" / "r003_impure_order.py")
        assert codes(violations) == {"R003"}
        messages = " | ".join(violation.message for violation in violations)
        assert "pop" in messages          # mutating container method
        assert "heapq.heappush" in messages  # heap mutator on self state
        assert "on_access" in messages    # known-mutating policy method
        assert len(violations) == 5

    def test_allow_mutation_hatch_suppresses(self):
        violations = lint_file(FIXTURES / "policies" / "r003_impure_order.py")
        source = (FIXTURES / "policies" / "r003_impure_order.py").read_text()
        hatch_line = next(
            lineno
            for lineno, line in enumerate(source.splitlines(), start=1)
            if "allow-mutation" in line
        )
        assert all(violation.line != hatch_line for violation in violations)

    def test_pure_simulation_on_copies_is_clean(self):
        assert lint_file(FIXTURES / "policies" / "r003_pure_order.py") == []


class TestPicklabilityRule:
    def test_flags_local_callables_into_jobs(self):
        violations = lint_file(FIXTURES / "bench" / "r004_unpicklable_jobs.py")
        assert codes(violations) == {"R004"}
        messages = " | ".join(violation.message for violation in violations)
        assert "lambda" in messages
        assert "local_trace" in messages
        assert "LocalSpec" in messages
        assert "make_spec" in messages
        assert len(violations) == 4

    def test_module_level_callables_are_clean(self):
        assert lint_file(FIXTURES / "bench" / "r004_module_level_ok.py") == []


class TestIORetryRule:
    def test_flags_swallowed_faults(self):
        violations = lint_file(FIXTURES / "io" / "r005_swallowed_fault.py")
        assert codes(violations) == {"R005"}
        messages = " | ".join(violation.message for violation in violations)
        assert "IOFaultError" in messages
        assert "(bare except)" in messages
        assert "Exception" in messages
        assert len(violations) == 3

    def test_allow_io_swallow_hatch_suppresses(self):
        source = (FIXTURES / "io" / "r005_swallowed_fault.py").read_text()
        hatch_line = next(
            lineno
            for lineno, line in enumerate(source.splitlines(), start=1)
            if "allow-io-swallow" in line
        )
        violations = lint_file(FIXTURES / "io" / "r005_swallowed_fault.py")
        assert all(violation.line != hatch_line for violation in violations)

    def test_sanctioned_handlers_are_clean(self):
        assert lint_file(FIXTURES / "io" / "r005_handled_ok.py") == []

    def test_scoped_to_repro_package(self, tmp_path):
        source = (FIXTURES / "io" / "r005_swallowed_fault.py").read_text()
        free = tmp_path / "r005_swallowed_fault.py"
        free.write_text(source)
        assert lint_file(free) == []


class TestServingVirtualTimeRule:
    def test_flags_wall_clock_in_serving(self):
        violations = lint_file(
            FIXTURES / "engine" / "serving" / "r006_wall_clock.py"
        )
        assert codes(violations) == {"R006"}
        messages = " | ".join(violation.message for violation in violations)
        assert "import time" in messages
        assert "from datetime import" in messages
        assert "time.sleep" in messages  # not in R001's denylist
        assert len(violations) == 3

    def test_allow_wall_clock_hatch_suppresses(self):
        fixture = FIXTURES / "engine" / "serving" / "r006_wall_clock.py"
        hatch_line = next(
            lineno
            for lineno, line in enumerate(
                fixture.read_text().splitlines(), start=1
            )
            if "allow-wall-clock" in line
        )
        violations = lint_file(fixture)
        assert all(violation.line != hatch_line for violation in violations)

    def test_virtual_clock_arithmetic_is_clean(self):
        assert lint_file(
            FIXTURES / "engine" / "serving" / "r006_virtual_ok.py"
        ) == []

    def test_scoped_to_serving_package(self, tmp_path):
        # The same source elsewhere in repro.engine is R001's business
        # (which allows time.sleep); R006 only polices the serving package.
        source = (
            FIXTURES / "engine" / "serving" / "r006_wall_clock.py"
        ).read_text()
        engine_dir = tmp_path / "repro" / "engine"
        engine_dir.mkdir(parents=True)
        free = engine_dir / "r006_wall_clock.py"
        free.write_text(source)
        assert lint_file(free) == []


class TestTranslationEncapsulationRule:
    def test_flags_foreign_translation_access(self):
        violations = lint_file(FIXTURES / "core" / "r007_translation_poke.py")
        assert codes(violations) == {"R007"}
        messages = " | ".join(violation.message for violation in violations)
        assert "._frame_of" in messages
        assert "._slots" in messages
        assert len(violations) == 3

    def test_own_state_public_api_and_hatch_are_clean(self):
        assert lint_file(FIXTURES / "core" / "r007_translation_ok.py") == []

    def test_table_module_itself_is_exempt(self, tmp_path):
        # The home module manipulates the dict/vector freely, including
        # cross-object moves (e.g. rebuilding one backend from another).
        pool_dir = tmp_path / "repro" / "bufferpool"
        pool_dir.mkdir(parents=True)
        inside = pool_dir / "table.py"
        inside.write_text(
            "def rebuild(old, new):\n"
            "    for page, frame in old._frame_of.items():\n"
            "        new._slots[page] = frame\n"
        )
        assert lint_file(inside) == []

    def test_scoped_to_repro_package(self, tmp_path):
        source = (FIXTURES / "core" / "r007_translation_poke.py").read_text()
        free = tmp_path / "r007_translation_poke.py"
        free.write_text(source)
        assert lint_file(free) == []


class TestLayeringRule:
    def test_flags_cross_layer_import(self):
        violations = lint_file(FIXTURES / "policies" / "r008_cross_layer.py")
        assert codes(violations) == {"R008"}
        assert "repro.policies must not import repro.engine" in \
            violations[0].message

    def test_flags_module_scope_cycle_only_with_both_files(self):
        pair = [
            FIXTURES / "core" / "r008_cycle_a.py",
            FIXTURES / "core" / "r008_cycle_b.py",
        ]
        violations, _ = run_lint(pair)
        assert codes(violations) == {"R008"}
        assert "import cycle" in violations[0].message
        assert "r008_cycle_a" in violations[0].message
        # Each half alone is invisible — the cycle only exists on the
        # assembled project graph, which is the point of the rule.
        assert lint_file(pair[0]) == []
        assert lint_file(pair[1]) == []

    def test_sanctioned_imports_are_clean(self):
        # Downward import + TYPE_CHECKING-gated upward annotation import.
        assert lint_file(FIXTURES / "policies" / "r008_layering_ok.py") == []

    def test_layer_declaration_is_a_dag(self):
        from repro.analyze.graph import validate_layer_declaration

        validate_layer_declaration()  # must not raise on the shipped DAG

    def test_broken_declaration_fails_loudly(self):
        from repro.analyze.graph import validate_layer_declaration

        with pytest.raises(ValueError, match="unknown"):
            validate_layer_declaration(
                {"repro.a": frozenset({"repro.nope"})}
            )
        with pytest.raises(ValueError, match="cycle"):
            validate_layer_declaration({
                "repro.a": frozenset({"repro.b"}),
                "repro.b": frozenset({"repro.a"}),
            })


class TestIterationOrderRule:
    def test_flags_ordered_outputs_of_set_iteration(self):
        violations = lint_file(FIXTURES / "policies" / "r009_set_order.py")
        assert codes(violations) == {"R009"}
        messages = " | ".join(violation.message for violation in violations)
        assert ".append" in messages      # loop-var into a list
        assert "list()" in messages       # direct materialisation
        assert "str.join" in messages     # string assembly
        assert len(violations) == 3

    def test_sorted_and_order_free_consumers_are_clean(self):
        assert lint_file(FIXTURES / "policies" / "r009_sorted_ok.py") == []


class TestBatchedCounterFlushRule:
    def test_flags_unprotected_and_early_exit_flush(self):
        violations = lint_file(FIXTURES / "engine" / "r010_unflushed.py")
        assert codes(violations) == {"R010"}
        messages = " | ".join(violation.message for violation in violations)
        assert "'hits'" in messages
        assert "'misses'" in messages
        assert "'accesses'" in messages
        assert "finally" in messages
        assert len(violations) == 3

    def test_finally_flush_and_pure_loop_are_clean(self):
        assert lint_file(FIXTURES / "engine" / "r010_finally_ok.py") == []


class TestWallClockTaintRule:
    def test_flags_state_and_control_flow_sinks(self):
        violations = lint_file(FIXTURES / "bench" / "r011_wall_clock_taint.py")
        assert codes(violations) == {"R011"}
        messages = " | ".join(violation.message for violation in violations)
        assert "time.perf_counter()" in messages
        assert "time.monotonic()" in messages
        assert "os.environ" in messages
        assert "stored into object state" in messages
        assert "control flow depends" in messages
        assert len(violations) == 3

    def test_taint_reports_point_back_at_the_source_line(self):
        violations = lint_file(FIXTURES / "bench" / "r011_wall_clock_taint.py")
        store = next(v for v in violations if "state" in v.message)
        # The sink is on line 9; the message names the source on line 8.
        assert store.line == 9
        assert "(line 8)" in store.message

    def test_virtual_clock_hatch_and_return_are_clean(self):
        assert lint_file(FIXTURES / "bench" / "r011_virtual_ok.py") == []


class TestFaultDispatchRule:
    def test_unhandled_member_fires(self):
        violations = lint_file(FIXTURES / "faultsim" / "r012_unhandled_kind.py")
        assert codes(violations) == {"R012"}
        assert len(violations) == 1
        assert "GAMMA_RAY" in violations[0].message
        # The violation anchors at the member's definition line.
        assert violations[0].line == 10

    def test_suppressed_member_is_quiet(self):
        violations = lint_file(FIXTURES / "faultsim" / "r012_unhandled_kind.py")
        assert all("COSMIC_RAY" not in v.message for v in violations)

    def test_exhaustive_dispatch_is_clean(self):
        assert lint_file(FIXTURES / "faultsim" / "r012_exhaustive_ok.py") == []

    def test_enum_without_any_dispatch_is_quiet(self):
        # A lint scope containing the enum but no FaultyDevice has no
        # dispatch contract to enforce.
        violations, _ = run_lint(
            [FIXTURES / "faultsim" / "r012_exhaustive_ok.py"],
            select=["R012"],
        )
        assert violations == []

    def test_cross_file_pairing_covers_the_real_injector(self):
        # The shipped enum (faults/plan.py) and dispatch (faults/device.py)
        # live in different files; the project scope must pair them.
        violations, _ = run_lint(
            [
                REPO_ROOT / "src" / "repro" / "faults" / "plan.py",
                REPO_ROOT / "src" / "repro" / "faults" / "device.py",
            ],
            select=["R012"],
        )
        assert violations == []


class TestWorkerSharedStateRule:
    def test_worker_mutations_fire(self):
        violations = lint_file(FIXTURES / "bench" / "r013_shared_state.py")
        assert codes(violations) == {"R013"}
        assert len(violations) == 4
        messages = " | ".join(violation.message for violation in violations)
        # Direct mutation in the entry point, transitive mutation through
        # same-module callees, and a `global` rebinding all fire.
        assert "_TOTALS" in messages
        assert "_RESULTS" in messages
        assert "_LOG" in messages
        assert "_COUNTER" in messages

    def test_hatched_cache_is_quiet(self):
        violations = lint_file(FIXTURES / "bench" / "r013_shared_state.py")
        assert all("_CACHE" not in v.message for v in violations)

    def test_pure_worker_is_clean(self):
        assert lint_file(FIXTURES / "bench" / "r013_worker_ok.py") == []

    def test_scoped_to_repro_packages(self, tmp_path):
        # The same source outside repro.* (scripts, tests) is not the
        # rule's business.
        source = (FIXTURES / "bench" / "r013_shared_state.py").read_text()
        free = tmp_path / "r013_shared_state.py"
        free.write_text(source)
        violations, _ = run_lint([free], select=["R013"])
        assert violations == []

    def test_module_without_fanout_is_quiet(self, tmp_path):
        # Mutating module globals is only a worker hazard; a module that
        # never hands a function to a pool is untouched.
        src = tmp_path / "repro"
        src.mkdir()
        module = src / "no_pool.py"
        module.write_text(
            "_CACHE = {}\n\n\ndef warm(key):\n    _CACHE[key] = key\n"
        )
        violations, _ = run_lint([module], select=["R013"])
        assert violations == []


class TestReplicaWritePathRule:
    def test_replica_mutations_fire(self):
        violations = lint_file(
            FIXTURES / "cluster" / "r014_replica_poke.py"
        )
        assert codes(violations) == {"R014"}
        assert len(violations) == 4
        messages = " | ".join(violation.message for violation in violations)
        # Pool access, device write, dirty marking and batched writes on
        # replica-named receivers (attribute chains, subscripts) all fire.
        assert ".access()" in messages
        assert ".write_page()" in messages
        assert ".mark_dirty()" in messages
        assert ".write_batch()" in messages

    def test_reads_primary_writes_and_hatch_are_clean(self):
        assert lint_file(
            FIXTURES / "cluster" / "r014_wal_apply_ok.py"
        ) == []

    def test_replication_module_itself_is_exempt(self):
        # The fixture resolves to repro.cluster.replication — the
        # shipping/apply machinery owns the replica write path.
        assert lint_file(FIXTURES / "cluster" / "replication.py") == []

    def test_scoped_to_repro_package(self, tmp_path):
        # The same source outside repro.* (scripts, tests) is not the
        # rule's business.
        source = (
            FIXTURES / "cluster" / "r014_replica_poke.py"
        ).read_text()
        free = tmp_path / "r014_replica_poke.py"
        free.write_text(source)
        violations, _ = run_lint([free], select=["R014"])
        assert violations == []


class TestShippedTree:
    def test_src_is_clean(self):
        violations, files = run_lint([REPO_ROOT / "src"])
        assert violations == []
        assert files > 50  # the whole tree was actually collected

    def test_tests_and_benchmarks_are_clean_for_ci_subset(self):
        # Mirrors the CI step: R001/R004/R009 over the suites themselves,
        # with the deliberately-violating fixture tree excluded.
        violations, files = run_lint(
            [REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            select=["R001", "R004", "R009"],
            exclude=["*/fixtures/*"],
        )
        assert violations == []
        assert files > 50


class TestLintCli:
    def test_fixtures_exit_nonzero(self, capsys):
        assert main(["lint", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006", "R007",
                     "R008", "R009", "R010", "R011", "R012", "R013", "R014"):
            assert code in out
        assert "violation(s)" in out

    def test_src_exits_zero(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006", "R007",
                     "R008", "R009", "R010", "R011", "R012", "R013", "R014"):
            assert code in out
