"""Tests for the lint driver: selection, parallelism, formats, baseline."""

import json
from pathlib import Path

import pytest

from repro.analyze.baseline import (
    fingerprints,
    load_baseline,
    split_by_baseline,
    write_baseline_file,
)
from repro.analyze.lint import (
    Violation,
    module_name,
    render_json,
    render_sarif,
    run_lint,
)
from repro.analyze.rules import DEFAULT_RULES
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


class TestModuleNameRoots:
    def test_tests_and_benchmarks_root_like_repro(self):
        assert module_name(Path("tests/engine/test_executor.py")) == \
            "tests.engine.test_executor"
        assert module_name(Path("benchmarks/bench_replay.py")) == \
            "benchmarks.bench_replay"

    def test_innermost_root_wins_for_fixture_trees(self):
        path = Path("tests/analyze/fixtures/repro/policies/r001_unseeded.py")
        assert module_name(path) == "repro.policies.r001_unseeded"


class TestSelection:
    def test_select_runs_only_named_rules(self):
        violations, _ = run_lint([FIXTURES], select=["R005"])
        assert violations and {v.rule for v in violations} == {"R005"}

    def test_select_is_case_insensitive(self):
        violations, _ = run_lint([FIXTURES], select=["r005"])
        assert {v.rule for v in violations} == {"R005"}

    def test_unknown_select_code_errors(self):
        with pytest.raises(ValueError, match="R999"):
            run_lint([FIXTURES], select=["R999"])

    def test_exclude_drops_matching_paths(self):
        all_v, all_files = run_lint([FIXTURES], select=["R001"])
        none_v, none_files = run_lint(
            [FIXTURES], select=["R001"], exclude=["*/fixtures/*"]
        )
        assert all_v and all_files > 0
        assert none_v == [] and none_files == 0


class TestParseErrors:
    def test_unreadable_file_is_a_structured_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_bytes(b"\xff\xfe\x00invalid")
        violations, files = run_lint([bad])
        assert files == 1
        assert [v.rule for v in violations] == ["E000"]
        assert "cannot read file" in violations[0].message

    def test_empty_file_is_clean_not_an_error(self, tmp_path):
        empty = tmp_path / "empty.py"
        empty.write_text("")
        assert run_lint([empty]) == ([], 1)

    def test_parse_error_does_not_hide_other_findings(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        pol = tmp_path / "repro" / "policies"
        pol.mkdir(parents=True)
        (pol / "dirty.py").write_text("import random\nrandom.random()\n")
        violations, files = run_lint([tmp_path])
        assert files == 2
        assert {v.rule for v in violations} == {"E000", "R001"}


class TestParallel:
    def test_jobs_match_serial_results(self):
        serial = run_lint([FIXTURES])
        parallel = run_lint([FIXTURES], jobs=2)
        assert parallel == serial
        assert parallel[0]  # the fixture tree does violate

    def test_custom_rules_fall_back_to_serial(self):
        from repro.analyze.lint import LintRule

        class Everything(LintRule):
            code = "X001"
            name = "everything"
            description = "flags every module once"

            def check(self, module):
                yield self.violation(module, module.tree.body[0], "seen")

        violations, files = run_lint(
            [FIXTURES / "policies"], rules=[Everything()], jobs=4
        )
        assert files > 0 and len(violations) == files


class TestFormats:
    def test_json_document_shape(self):
        violations, files = run_lint([FIXTURES], select=["R005"])
        document = json.loads(render_json(violations, files))
        assert document["files"] == files
        assert len(document["violations"]) == len(violations)
        first = document["violations"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}

    def test_sarif_document_shape(self):
        violations, _ = run_lint([FIXTURES], select=["R005"])
        document = json.loads(render_sarif(violations, DEFAULT_RULES))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {f"R{i:03d}" for i in range(1, 12)} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "R005"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_cli_writes_sarif_to_output_file(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        code = main([
            "lint", str(FIXTURES / "io"), "--format", "sarif",
            "--output", str(out),
        ])
        assert code == 1
        document = json.loads(out.read_text())
        assert document["runs"][0]["results"]
        assert "violation(s)" in capsys.readouterr().out

    def test_cli_select_and_jobs_flags(self, capsys):
        code = main([
            "lint", str(FIXTURES), "--select", "R005", "--jobs", "2",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "R005" in out and "R001" not in out


class TestBaseline:
    def test_fingerprints_ignore_line_motion(self):
        a = Violation("p.py", 10, 0, "R001", "boom")
        b = Violation("p.py", 99, 4, "R001", "boom")
        assert fingerprints([a]) == fingerprints([b])

    def test_fingerprints_distinguish_duplicates_by_occurrence(self):
        a = Violation("p.py", 10, 0, "R001", "boom")
        b = Violation("p.py", 20, 0, "R001", "boom")
        fps = fingerprints([a, b])
        assert len(set(fps)) == 2

    def test_roundtrip_and_split(self, tmp_path):
        violations, _ = run_lint([FIXTURES / "io"])
        path = tmp_path / "baseline.json"
        write_baseline_file(path, violations)
        accepted = load_baseline(path)
        new, known = split_by_baseline(violations, accepted)
        assert new == [] and known == violations

    def test_malformed_baseline_errors(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{\"nope\": true}")
        with pytest.raises(ValueError, match="baseline"):
            load_baseline(path)

    def test_cli_baseline_demotes_known_findings(self, tmp_path, capsys):
        target = str(FIXTURES / "io")
        base = tmp_path / "baseline.json"
        assert main(["lint", target, "--write-baseline", str(base)]) == 0
        capsys.readouterr()
        # Every current finding is baselined: exit 0, findings warned.
        assert main(["lint", target, "--baseline", str(base)]) == 0
        out = capsys.readouterr().out
        assert "baselined finding(s) suppressed" in out
        assert "warning (baselined):" in out

    def test_cli_baseline_still_fails_on_new_findings(self, tmp_path, capsys):
        base = tmp_path / "baseline.json"
        assert main([
            "lint", str(FIXTURES / "io"), "--write-baseline", str(base),
        ]) == 0
        capsys.readouterr()
        # Linting a *wider* tree against the narrow baseline must fail.
        assert main([
            "lint", str(FIXTURES / "policies"), "--baseline", str(base),
        ]) == 1
        assert "violation(s)" in capsys.readouterr().out
