"""Tests for the closed-form ideal-speedup model (Figures 2 and 10h)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.model import (
    amortization_factor,
    ideal_speedup,
    speedup_grid,
    speedup_vs_alpha,
)


class TestAmortization:
    def test_single_write_no_amortization(self):
        assert amortization_factor(1, 8) == 1.0

    def test_full_wave(self):
        assert amortization_factor(8, 8) == pytest.approx(1 / 8)

    def test_over_wave(self):
        assert amortization_factor(9, 8) == pytest.approx(2 / 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            amortization_factor(0, 8)


class TestIdealSpeedup:
    def test_no_asymmetry_no_writes_means_no_gain(self):
        assert ideal_speedup(1.0, 8, 8, dirty_fraction=0.0) == pytest.approx(1.0)

    def test_read_only_workload_no_gain(self):
        assert ideal_speedup(4.0, 8, 8, dirty_fraction=0.0) == pytest.approx(1.0)

    def test_speedup_always_at_least_one(self):
        assert ideal_speedup(2.0, 4, 8) >= 1.0

    def test_monotone_in_alpha(self):
        values = [ideal_speedup(alpha, 8, 8) for alpha in (1.0, 2.0, 4.0, 8.0)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_peak_at_nw_equals_kw(self):
        """Figure 10g / 10h: best speedup at n_w = k_w."""
        values = {n_w: ideal_speedup(4.0, n_w, 8) for n_w in range(1, 17)}
        assert max(values, key=values.__getitem__) == 8

    def test_hits_dilute_gain(self):
        full_miss = ideal_speedup(4.0, 8, 8, miss_ratio=1.0)
        few_misses = ideal_speedup(4.0, 8, 8, miss_ratio=0.1, cpu_per_read=0.5)
        assert few_misses < full_miss

    def test_paper_magnitude(self):
        """Fig. 2's headline: ~2.5x at high asymmetry for an LRU baseline."""
        value = ideal_speedup(8.0, 8, 8, dirty_fraction=0.5)
        assert 2.0 < value < 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_speedup(0.5, 8, 8)
        with pytest.raises(ValueError):
            ideal_speedup(2.0, 8, 8, dirty_fraction=1.5)
        with pytest.raises(ValueError):
            ideal_speedup(2.0, 8, 8, miss_ratio=0.0)

    @given(
        alpha=st.floats(min_value=1.0, max_value=16.0),
        n_w=st.integers(1, 32),
        k_w=st.integers(1, 32),
        dirty=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_never_below_baseline_when_batched_sensibly(self, alpha, n_w, k_w, dirty):
        """For n_w <= k_w the amortization factor <= 1, so speedup >= 1."""
        if n_w <= k_w:
            assert ideal_speedup(alpha, n_w, k_w, dirty_fraction=dirty) >= 1.0 - 1e-12


class TestCurves:
    def test_speedup_vs_alpha_shape(self):
        curve = speedup_vs_alpha([1.0, 2.0, 4.0, 8.0], k_w=8)
        assert curve == sorted(curve)
        assert curve[0] == pytest.approx(1.0, abs=0.5)

    def test_grid_dimensions(self):
        grid = speedup_grid([1.0, 4.0], [1, 4, 8], k_w=8)
        assert len(grid) == 2
        assert len(grid[0]) == 3

    def test_grid_max_at_corner(self):
        """Fig 10h: max speedup at highest alpha and n_w = k_w."""
        alphas = [1.0, 2.0, 4.0, 8.0]
        n_ws = [1, 2, 4, 8]
        grid = speedup_grid(alphas, n_ws, k_w=8)
        flat_max = max(max(row) for row in grid)
        assert grid[-1][-1] == flat_max
