"""Tests for Che's approximation, cross-checked against the simulator."""

import numpy as np
import pytest

from repro.analysis.che import (
    characteristic_time,
    expected_hit_ratio,
    lru_hit_ratio,
    two_class_popularities,
)


class TestCharacteristicTime:
    def test_uniform_popularities(self):
        p = np.full(100, 0.01)
        t_c = characteristic_time(p, 50)
        # Uniform case: C = N (1 - exp(-T/N)) -> T = -N ln(1 - C/N).
        expected = -100 * np.log(1 - 0.5)
        assert t_c == pytest.approx(expected, rel=1e-6)

    def test_cache_fills_exactly(self):
        p = two_class_popularities(1000, 0.9, 0.1)
        t_c = characteristic_time(p, 100)
        filled = np.sum(-np.expm1(-p / p.sum() * t_c))
        assert filled == pytest.approx(100, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            characteristic_time(np.array([]), 1)
        with pytest.raises(ValueError):
            characteristic_time(np.array([0.5, 0.5]), 2)
        with pytest.raises(ValueError):
            characteristic_time(np.array([-0.1, 1.1]), 1)


class TestHitRatio:
    def test_bounds(self):
        p = two_class_popularities(500, 0.9, 0.1)
        hit = lru_hit_ratio(p, 100)
        assert 0.0 < hit < 1.0

    def test_monotone_in_capacity(self):
        p = two_class_popularities(1000, 0.9, 0.1)
        ratios = [lru_hit_ratio(p, c) for c in (20, 60, 120, 400)]
        assert ratios == sorted(ratios)

    def test_skew_beats_uniform(self):
        skewed = two_class_popularities(1000, 0.9, 0.1)
        uniform = np.full(1000, 1e-3)
        assert lru_hit_ratio(skewed, 60) > lru_hit_ratio(uniform, 60)

    def test_two_class_popularities_shape(self):
        p = two_class_popularities(100, 0.9, 0.1)
        assert p.sum() == pytest.approx(1.0)
        assert p[0] == pytest.approx(0.09)
        assert p[-1] == pytest.approx(0.1 / 90)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_class_popularities(1, 0.9, 0.1)
        with pytest.raises(ValueError):
            two_class_popularities(10, 1.0, 0.1)


class TestAgainstSimulation:
    @pytest.mark.parametrize("pool_fraction", (0.04, 0.06, 0.12))
    def test_predicts_simulated_lru_hit_ratio(self, pool_fraction):
        """Che's approximation matches the simulated LRU bufferpool.

        This cross-checks the whole bufferpool path against independent
        theory: an IRM 90/10 stream through the LRU manager must produce
        (nearly) the analytically predicted hit ratio.
        """
        from repro.bench.runner import StackConfig, run_config
        from repro.storage.profiles import PCIE_SSD
        from repro.workloads.synthetic import MS, generate_trace

        num_pages = 6000
        trace = generate_trace(MS, num_pages, 30_000, seed=5)
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="baseline",
            num_pages=num_pages, pool_fraction=pool_fraction,
        )
        metrics = run_config(config, trace)
        predicted = expected_hit_ratio(
            num_pages, config.pool_capacity, op_fraction=0.9, page_fraction=0.1
        )
        # Cold-start misses and finite-run noise keep this from being
        # exact; a few points of absolute tolerance is a strong check.
        assert metrics.buffer.hit_ratio == pytest.approx(predicted, abs=0.05)
