"""Cross-cutting property-based tests over the whole stack."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import StackConfig, build_stack
from repro.storage.profiles import PCIE_SSD, emulated_profile
from repro.workloads.trace import Trace


def replay(manager, trace):
    for page, is_write in zip(trace.pages, trace.writes):
        manager.access(page, is_write)
    return manager


def random_trace(rng, num_pages, ops, write_fraction=0.5):
    pages = [rng.randrange(num_pages) for _ in range(ops)]
    writes = [rng.random() < write_fraction for _ in range(ops)]
    return Trace(pages, writes)


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_identical_runs_are_bit_identical(self, seed):
        """The simulator is fully deterministic: same inputs, same clocks."""
        rng = random.Random(seed)
        trace = random_trace(rng, 256, 400)
        clocks = []
        for _ in range(2):
            config = StackConfig(
                profile=PCIE_SSD, policy="lru_wsr", variant="ace+pf",
                num_pages=256, pool_fraction=0.08,
            )
            manager = replay(build_stack(config), trace)
            clocks.append(manager.device.clock.now_us)
        assert clocks[0] == clocks[1]


class TestMonotonicity:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bigger_pool_never_more_misses_for_lru(self, seed):
        """LRU's inclusion property: capacity up, misses never up."""
        rng = random.Random(seed)
        trace = random_trace(rng, 300, 600)
        misses = []
        for fraction in (0.05, 0.10, 0.20):
            config = StackConfig(
                profile=PCIE_SSD, policy="lru", variant="baseline",
                num_pages=300, pool_fraction=fraction,
            )
            manager = replay(build_stack(config), trace)
            misses.append(manager.stats.misses)
        assert misses[0] >= misses[1] >= misses[2]

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        write_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_ace_never_loses_at_any_write_fraction(self, seed, write_fraction):
        rng = random.Random(seed)
        trace = random_trace(rng, 256, 500, write_fraction=write_fraction)
        times = {}
        for variant in ("baseline", "ace"):
            config = StackConfig(
                profile=PCIE_SSD, policy="lru", variant=variant,
                num_pages=256, pool_fraction=0.08,
            )
            manager = replay(build_stack(config), trace)
            times[variant] = manager.device.clock.now_us
        assert times["ace"] <= times["baseline"] * (1 + 1e-9)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_higher_asymmetry_never_reduces_ace_gain(self, seed):
        rng = random.Random(seed)
        trace = random_trace(rng, 256, 500, write_fraction=0.7)
        gains = []
        for alpha in (1.0, 4.0):
            profile = emulated_profile(alpha=alpha, k_w=8)
            times = {}
            for variant in ("baseline", "ace"):
                config = StackConfig(
                    profile=profile, policy="lru", variant=variant,
                    num_pages=256, pool_fraction=0.08,
                )
                manager = replay(build_stack(config), trace)
                times[variant] = manager.device.clock.now_us
            gains.append(times["baseline"] / times["ace"])
        assert gains[1] >= gains[0] - 1e-9


class TestConservation:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_io_accounting_conserved(self, seed):
        """Device reads = misses + prefetches; writes = write-backs."""
        rng = random.Random(seed)
        trace = random_trace(rng, 256, 500)
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace+pf",
            num_pages=256, pool_fraction=0.08,
        )
        manager = replay(build_stack(config), trace)
        stats = manager.stats
        device = manager.device.stats
        assert device.reads == stats.misses + stats.prefetch_issued
        assert device.writes == stats.writebacks

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_prefetch_outcomes_partition(self, seed):
        """Every prefetched page is eventually hit, evicted unused, or
        still resident awaiting its fate."""
        rng = random.Random(seed)
        trace = random_trace(rng, 256, 500)
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace+pf",
            num_pages=256, pool_fraction=0.08,
        )
        manager = replay(build_stack(config), trace)
        stats = manager.stats
        still_resident = sum(
            1 for d in manager.pool.descriptors if d.in_use and d.prefetched
        )
        assert (
            stats.prefetch_issued
            == stats.prefetch_hits + stats.prefetch_unused + still_resident
        )
