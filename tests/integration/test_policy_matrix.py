"""Consistency matrix: every registered policy x every manager variant.

Randomised mixed workloads driven through each (policy, variant) pair with
the full invariant set checked afterwards: pool bounds, policy/table
agreement, descriptor/fast-set consistency, durability after checkpoint.
"""

import random

import pytest

from repro.bench.runner import StackConfig, build_stack
from repro.policies.registry import POLICY_NAMES
from repro.storage.profiles import PCIE_SSD

NUM_PAGES = 512
CAPACITY_FRACTION = 0.05  # ~25 frames: heavy eviction pressure


def run_mixed(policy: str, variant: str, seed: int = 17, ops: int = 1200):
    config = StackConfig(
        profile=PCIE_SSD,
        policy=policy,
        variant=variant,
        num_pages=NUM_PAGES,
        pool_fraction=CAPACITY_FRACTION,
    )
    manager = build_stack(config)
    rng = random.Random(seed)
    versions: dict[int, int] = {}
    for _ in range(ops):
        page = rng.randrange(NUM_PAGES)
        if rng.random() < 0.5:
            versions[page] = manager.write_page(page)
        else:
            manager.read_page(page)
    return manager, versions


def check_invariants(manager, versions):
    # Pool bounds.
    assert manager.pool.used_count <= manager.capacity
    assert manager.pool.used_count + manager.pool.free_count == manager.capacity
    # Policy and buffer table agree on residency.
    assert set(manager.policy.pages()) == set(manager.resident_pages())
    assert len(manager.policy) == len(manager.table)
    # Fast dirty set mirrors the descriptors.
    descriptor_dirty = {
        d.page for d in manager.pool.descriptors if d.in_use and d.dirty
    }
    assert descriptor_dirty == manager._dirty_set
    # Checkpoint: every acknowledged write is durable afterwards.
    manager.flush_all()
    assert manager.dirty_pages() == []
    for page, version in versions.items():
        assert manager.device._payloads[page] == version


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("variant", ("baseline", "ace", "ace+pf"))
def test_policy_variant_matrix(policy, variant):
    manager, versions = run_mixed(policy, variant)
    check_invariants(manager, versions)


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_ace_improves_or_matches_every_policy(policy):
    """ACE wraps any registered policy without losing (paper's claim)."""
    base_manager, _ = run_mixed(policy, "baseline", seed=23)
    ace_manager, _ = run_mixed(policy, "ace", seed=23)
    assert (
        ace_manager.device.clock.now_us
        <= base_manager.device.clock.now_us * 1.001
    )
