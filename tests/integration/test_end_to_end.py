"""Integration tests: full stacks (device + policy + manager + workload).

These exercise the same paths as the paper's experiments at miniature scale,
asserting the qualitative results the paper reports.
"""

import pytest

from repro.bench.runner import StackConfig, build_stack, compare_policies, run_config
from repro.engine.executor import ExecutionOptions, run_transactions
from repro.engine.metrics import speedup
from repro.policies.registry import PAPER_POLICIES
from repro.storage.profiles import OPTANE_SSD, PCIE_SSD, emulated_profile
from repro.workloads.synthetic import MS, RIS, WIS, generate_trace, rw_ratio_spec
from repro.workloads.tpcc.driver import TPCCWorkload
from repro.workloads.tpcc.transactions import TransactionType

SMALL_PAGES = 4000
SMALL_OPS = 8000
FAST_OPTS = ExecutionOptions(cpu_us_per_op=5.0)


def small_trace(spec, seed=11):
    return generate_trace(spec, SMALL_PAGES, SMALL_OPS, seed=seed)


class TestAcrossPolicies:
    @pytest.mark.parametrize("policy", PAPER_POLICIES)
    def test_ace_beats_baseline_on_mixed_workload(self, policy):
        trace = small_trace(MS)
        results = compare_policies(
            PCIE_SSD, (policy,), trace, num_pages=SMALL_PAGES, options=FAST_OPTS
        )
        base = results[(policy, "baseline")]
        ace = results[(policy, "ace")]
        ace_pf = results[(policy, "ace+pf")]
        assert speedup(base, ace) > 1.1
        assert speedup(base, ace_pf) > 1.1
        # Functional sanity: same number of client ops served.
        assert ace.ops == base.ops == ace_pf.ops

    @pytest.mark.parametrize("policy", ("fifo", "second_chance", "twoq", "arc"))
    def test_ace_wraps_extra_policies_too(self, policy):
        """The paper's claim: ACE composes with ANY replacement policy."""
        trace = small_trace(MS)
        results = compare_policies(
            PCIE_SSD, (policy,), trace, num_pages=SMALL_PAGES,
            variants=("baseline", "ace"), options=FAST_OPTS,
        )
        assert speedup(results[(policy, "baseline")], results[(policy, "ace")]) > 1.05

    def test_miss_counts_identical_without_prefetch(self):
        """ACE (no prefetch) evicts exactly the pages the baseline evicts.

        This holds for policies whose victim choice ignores dirtiness (LRU,
        Clock Sweep).  CFLRU and LRU-WSR pick victims *by* dirtiness, and
        ACE's batched write-back legitimately changes which pages are dirty
        — their miss counts may therefore differ slightly.
        """
        trace = small_trace(MS)
        for policy in ("lru", "clock"):
            results = compare_policies(
                PCIE_SSD, (policy,), trace, num_pages=SMALL_PAGES,
                variants=("baseline", "ace"), options=FAST_OPTS,
            )
            base = results[(policy, "baseline")]
            ace = results[(policy, "ace")]
            assert ace.buffer.misses == base.buffer.misses, policy
        for policy in ("cflru", "lru_wsr"):
            results = compare_policies(
                PCIE_SSD, (policy,), trace, num_pages=SMALL_PAGES,
                variants=("baseline", "ace"), options=FAST_OPTS,
            )
            base = results[(policy, "baseline")]
            ace = results[(policy, "ace")]
            delta = abs(ace.buffer.misses - base.buffer.misses)
            assert delta <= base.buffer.misses * 0.02, policy


class TestWorkloadShape:
    def test_write_intensity_orders_gains(self):
        gains = {}
        for spec in (WIS, MS, RIS):
            trace = small_trace(spec)
            results = compare_policies(
                PCIE_SSD, ("lru",), trace, num_pages=SMALL_PAGES,
                variants=("baseline", "ace"), options=FAST_OPTS,
            )
            gains[spec.name] = speedup(
                results[("lru", "baseline")], results[("lru", "ace")]
            )
        assert gains["WIS"] > gains["MS"] > gains["RIS"] > 1.0

    def test_read_only_no_gain_no_writes(self):
        trace = small_trace(rw_ratio_spec(1.0))
        results = compare_policies(
            PCIE_SSD, ("lru",), trace, num_pages=SMALL_PAGES,
            variants=("baseline", "ace+pf"), options=FAST_OPTS,
        )
        base = results[("lru", "baseline")]
        ace = results[("lru", "ace+pf")]
        assert base.logical_writes == 0
        assert ace.logical_writes == 0  # no wear increase on read-only
        assert speedup(base, ace) == pytest.approx(1.0, abs=0.05)

    def test_asymmetry_orders_device_gains(self):
        trace = small_trace(rw_ratio_spec(0.2))
        gains = []
        for alpha in (1.0, 2.0, 4.0):
            profile = emulated_profile(alpha=alpha, k_w=8)
            results = compare_policies(
                profile, ("lru",), trace, num_pages=SMALL_PAGES,
                variants=("baseline", "ace"), options=FAST_OPTS,
            )
            gains.append(
                speedup(results[("lru", "baseline")], results[("lru", "ace")])
            )
        assert gains == sorted(gains)

    def test_low_asymmetry_device_still_gains(self):
        trace = small_trace(WIS)
        results = compare_policies(
            OPTANE_SSD, ("lru",), trace, num_pages=SMALL_PAGES,
            variants=("baseline", "ace"), options=FAST_OPTS,
        )
        assert speedup(
            results[("lru", "baseline")], results[("lru", "ace")]
        ) > 1.0


class TestSequentialPrefetching:
    def test_sequential_scan_with_writes_benefits_from_tap(self):
        """A scan that dirties pages triggers the prefetch path.

        Per Algorithm 1, prefetching happens on the dirty-victim path (and
        into free slots); a scan updating every 4th page keeps the pool
        supplied with dirty victims, so TaP-driven concurrent prefetching
        converts most scan misses into hits.
        """
        import random

        from repro.workloads.trace import Trace

        rng = random.Random(3)
        pages = list(range(2000)) * 2
        writes = [rng.random() < 0.25 for _ in pages]
        trace = Trace(pages, writes, name="scan")
        no_pf = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace",
            num_pages=SMALL_PAGES, options=FAST_OPTS,
        )
        with_pf = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace+pf",
            num_pages=SMALL_PAGES, options=FAST_OPTS,
        )
        plain = run_config(no_pf, trace)
        prefetched = run_config(with_pf, trace)
        # Prefetching fires on dirty-victim misses only (Algorithm 1), and
        # the Writer keeps dirty victims rare — so the reduction is real
        # but bounded, matching the paper's modest prefetch-only gains.
        assert prefetched.buffer.misses < plain.buffer.misses * 0.85
        assert prefetched.elapsed_us < plain.elapsed_us
        assert prefetched.buffer.prefetch_hits > 500
        assert prefetched.buffer.prefetch_accuracy > 0.9

    def test_read_only_scan_identical_to_classic(self):
        """Read-only: no dirty victims, no prefetch path — no change."""
        from repro.workloads.trace import Trace

        pages = list(range(2000)) * 2
        trace = Trace(pages, [False] * len(pages), name="ro-scan")
        plain = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="baseline",
                        num_pages=SMALL_PAGES, options=FAST_OPTS),
            trace,
        )
        ace = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="ace+pf",
                        num_pages=SMALL_PAGES, options=FAST_OPTS),
            trace,
        )
        # The only divergence is the initial free-slot prefetch warm-up.
        assert ace.buffer.misses <= plain.buffer.misses
        assert ace.elapsed_us <= plain.elapsed_us * 1.01


class TestTPCCIntegration:
    def test_tpcc_mix_end_to_end(self):
        workload = TPCCWorkload(warehouses=2, row_scale=0.02, seed=9)
        stream = list(workload.transaction_stream(150))
        metrics = {}
        for variant in ("baseline", "ace+pf"):
            config = StackConfig(
                profile=PCIE_SSD, policy="lru_wsr", variant=variant,
                num_pages=workload.total_pages, options=FAST_OPTS,
                with_wal=True,
            )
            manager = build_stack(config)
            metrics[variant] = run_transactions(
                manager, stream, options=FAST_OPTS
            )
        assert metrics["baseline"].transactions == 150
        assert metrics["ace+pf"].tpmc >= metrics["baseline"].tpmc
        assert metrics["baseline"].wal_pages_written > 0

    def test_read_only_transaction_no_gain(self):
        workload = TPCCWorkload(warehouses=2, row_scale=0.02, seed=9)
        stream = list(
            workload.transaction_stream(80, only=TransactionType.ORDER_STATUS)
        )
        results = {}
        for variant in ("baseline", "ace+pf"):
            config = StackConfig(
                profile=PCIE_SSD, policy="lru", variant=variant,
                num_pages=workload.total_pages, options=FAST_OPTS,
            )
            manager = build_stack(config)
            results[variant] = run_transactions(manager, stream, options=FAST_OPTS)
        assert results["baseline"].logical_writes == 0
        ratio = results["baseline"].elapsed_us / results["ace+pf"].elapsed_us
        assert ratio == pytest.approx(1.0, abs=0.05)


class TestFullSystemDurability:
    def test_checkpoint_after_tpcc_run_persists_everything(self):
        workload = TPCCWorkload(warehouses=1, row_scale=0.02, seed=3)
        config = StackConfig(
            profile=PCIE_SSD, policy="clock", variant="ace+pf",
            num_pages=workload.total_pages, options=FAST_OPTS,
            with_ftl=True,
        )
        manager = build_stack(config)
        run_transactions(
            manager, workload.transaction_stream(100), options=FAST_OPTS
        )
        manager.flush_all()
        assert manager.dirty_pages() == []
        manager.device.ftl.check_invariants()
