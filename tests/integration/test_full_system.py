"""Capstone: every subsystem composed in one scenario.

TPC-C transactions through an ACE+prefetch bufferpool with WAL, FTL,
background writer, checkpointer, and latency recording — then a crash and
redo recovery.  If the pieces compose, all of the following hold at once:
metrics consistent, wear accounted, writes batched, durability preserved.
"""

import pytest

from repro.bufferpool.background import BackgroundWriter, Checkpointer
from repro.bufferpool.recovery import recover, simulate_crash
from repro.bufferpool.wal import WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import ExecutionOptions, run_trace
from repro.engine.latency import LatencyRecorder
from repro.policies.lru_wsr import LRUWSRPolicy
from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import PCIE_SSD
from repro.storage.smart import SmartMonitor
from repro.workloads.tpcc.driver import TPCCWorkload


@pytest.fixture(scope="module")
def full_system_run():
    workload = TPCCWorkload(warehouses=2, row_scale=0.02, seed=13)
    clock = VirtualClock()
    device = SimulatedSSD(
        PCIE_SSD, num_pages=workload.total_pages, clock=clock,
        with_ftl=True, over_provision=0.1,
    )
    device.format_pages(range(workload.total_pages))
    wal = WriteAheadLog(clock, records_per_page=16)
    capacity = max(16, workload.total_pages // 16)
    manager = ACEBufferPoolManager(
        capacity, LRUWSRPolicy(), device, wal=wal,
        config=ACEConfig.for_device(PCIE_SSD, prefetch_enabled=True),
    )
    bg_writer = BackgroundWriter(manager, pages_per_round=8, batch_size=8)
    checkpointer = Checkpointer(manager, interval_us=0.05e6, batch_size=8)
    monitor = SmartMonitor(device)
    latencies = LatencyRecorder()
    options = ExecutionOptions(cpu_us_per_op=5.0)

    trace = workload.trace(250)
    metrics = run_trace(
        manager, trace, options=options, bg_writer=bg_writer,
        checkpointer=checkpointer, latencies=latencies,
    )
    wal.flush()  # final commit barrier before the crash
    committed = {
        record.page: record.payload
        for record in wal.durable_records()
        if record.page is not None
    }
    image = simulate_crash(manager)
    report = recover(image)
    return {
        "workload": workload,
        "metrics": metrics,
        "latencies": latencies,
        "monitor": monitor,
        "bg_writer": bg_writer,
        "checkpointer": checkpointer,
        "committed": committed,
        "image": image,
        "report": report,
    }


class TestFullSystem:
    def test_progress_made(self, full_system_run):
        metrics = full_system_run["metrics"]
        assert metrics.ops > 1000
        assert metrics.elapsed_us > 0
        assert 0.0 < metrics.miss_ratio < 1.0

    def test_writes_were_batched(self, full_system_run):
        metrics = full_system_run["metrics"]
        assert metrics.buffer.mean_writeback_batch > 2.0
        assert metrics.device.largest_write_batch >= 8

    def test_background_processes_ran(self, full_system_run):
        assert full_system_run["bg_writer"].rounds > 0
        assert full_system_run["checkpointer"].checkpoints_taken > 0

    def test_latencies_recorded(self, full_system_run):
        latencies = full_system_run["latencies"]
        metrics = full_system_run["metrics"]
        assert latencies.count == metrics.ops
        assert latencies.p99_us >= latencies.p50_us

    def test_wear_accounted(self, full_system_run):
        snapshot = full_system_run["monitor"].snapshot()
        assert snapshot.nand_writes >= snapshot.host_writes > 0
        full_system_run["image"].device.ftl.check_invariants()

    def test_io_accounting_consistent(self, full_system_run):
        metrics = full_system_run["metrics"]
        stats = metrics.buffer
        assert metrics.device.reads == stats.misses + stats.prefetch_issued
        assert metrics.device.writes == stats.writebacks

    def test_recovery_restored_committed_state(self, full_system_run):
        image = full_system_run["image"]
        report = full_system_run["report"]
        committed = full_system_run["committed"]
        assert report.records_scanned > 0
        for page, payload in committed.items():
            device_payload = image.device._payloads[page]
            assert isinstance(device_payload, int)
            assert device_payload >= payload if isinstance(payload, int) else True

    def test_wal_on_separate_device(self, full_system_run):
        """WAL traffic never hit the data device's counters."""
        metrics = full_system_run["metrics"]
        image = full_system_run["image"]
        assert image.wal.pages_written > 0
        assert image.wal.device is not image.device
        assert metrics.wal_pages_written == pytest.approx(
            image.wal.pages_written, abs=2
        )
