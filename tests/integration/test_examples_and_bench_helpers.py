"""Integration tests for the bench runner, reports, and experiment helpers."""

import pytest

from repro.bench.report import format_series, format_table, write_report
from repro.bench.runner import StackConfig, VARIANTS, build_stack
from repro.core.ace import ACEBufferPoolManager
from repro.engine.executor import ExecutionOptions
from repro.storage.profiles import PCIE_SSD


class TestStackConfig:
    def test_pool_capacity_fraction(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="baseline", num_pages=1000
        )
        assert config.pool_capacity == 60  # 6% default

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            StackConfig(
                profile=PCIE_SSD, policy="lru", variant="turbo", num_pages=1000
            )

    def test_invalid_pool_fraction_rejected(self):
        with pytest.raises(ValueError):
            StackConfig(
                profile=PCIE_SSD, policy="lru", variant="baseline",
                num_pages=1000, pool_fraction=0.0,
            )

    def test_tiny_database_rejected(self):
        with pytest.raises(ValueError):
            StackConfig(
                profile=PCIE_SSD, policy="lru", variant="baseline", num_pages=4
            )

    def test_label(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="cflru", variant="ace", num_pages=1000
        )
        assert config.label == "cflru/ace"


class TestBuildStack:
    def test_baseline_build(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="baseline", num_pages=500
        )
        manager = build_stack(config)
        assert manager.variant == "baseline"
        assert manager.device.num_pages == 500
        assert manager.device.contains(499)  # formatted

    def test_ace_build_uses_device_kw(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace", num_pages=500
        )
        manager = build_stack(config)
        assert isinstance(manager, ACEBufferPoolManager)
        assert manager.config.n_w == PCIE_SSD.k_w
        assert not manager.prefetching_enabled

    def test_ace_pf_build(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace+pf", num_pages=500
        )
        manager = build_stack(config)
        assert manager.prefetching_enabled
        assert manager.variant == "ace+pf"

    def test_nw_override(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace", num_pages=500, n_w=3
        )
        manager = build_stack(config)
        assert manager.config.n_w == 3

    def test_wal_and_ftl_attachments(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace", num_pages=500,
            with_wal=True, with_ftl=True,
        )
        manager = build_stack(config)
        assert manager.wal is not None
        assert manager.device.ftl is not None

    def test_variants_constant(self):
        assert VARIANTS == ("baseline", "ace", "ace+pf")


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.123456]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.1235" in text  # 4 significant digits

    def test_format_table_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("x", [1, 2], {"y": [10, 20], "z": [3, 4]})
        assert "x" in text and "y" in text and "z" in text
        assert "20" in text

    def test_write_report(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_report("unit", "hello table")
        assert path.read_text() == "hello table\n"
        assert "hello table" in capsys.readouterr().out


class TestExecutionOptionsDefaults:
    def test_defaults_sane(self):
        options = ExecutionOptions()
        assert options.cpu_us_per_op > 0
        assert options.checkpoint_interval_us > options.bg_writer_interval_us
