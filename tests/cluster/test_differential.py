"""Differential battery: the cluster must degenerate to the single pool.

Three equivalence claims pin the merge semantics down:

* a **1-shard cluster** is the unsharded engine — merged ``RunMetrics``
  byte-identical to :func:`repro.bench.runner.run_config` across
  policies and variants (max = sum for one shard, penalty zero);
* an **N-shard cluster on a shard-local workload** does exactly the
  single pool's work — counters sum to the unsharded run's and the
  shard virtual times sum to the unsharded elapsed (exact-binary
  latencies make the float sums order-free);
* the merged metrics are **byte-identical at any worker count** — the
  process fan-out only moves where each pure shard replay happens.
"""

from dataclasses import asdict

import pytest

from repro.bench.runner import StackConfig, run_config
from repro.cluster.engine import ClusterConfig, run_cluster
from repro.engine.executor import ExecutionOptions
from repro.storage.profiles import PCIE_SSD, DeviceProfile
from repro.workloads.synthetic import MS, generate_trace

OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)

#: Every latency an exact binary float: sums of per-op costs are exact
#: whatever order they run in, so sharded totals equal unsharded totals
#: bit for bit.
BINARY_PROFILE = DeviceProfile(
    name="binary", alpha=4.0, k_r=4, k_w=4, read_latency_us=64.0,
    submit_overhead_us=0.0, queue_overhead_us=0.0,
)
BINARY_OPTIONS = ExecutionOptions(cpu_us_per_op=32.0)


class TestSingleShardEquivalence:
    @pytest.mark.parametrize("policy", ["lru", "clock", "cflru"])
    @pytest.mark.parametrize("variant", ["baseline", "ace"])
    def test_merged_metrics_identical_to_unsharded(self, policy, variant):
        trace = generate_trace(MS, 600, 1500, seed=11)
        stack = StackConfig(
            profile=PCIE_SSD, policy=policy, variant=variant,
            num_pages=600, options=OPTIONS,
        )
        expected = run_config(stack, trace, label="diff")
        config = ClusterConfig(
            profile=PCIE_SSD, policy=policy, variant=variant,
            num_pages=600, num_shards=1, options=OPTIONS,
        )
        got = run_cluster(config, trace, workers=1, label="diff")
        assert asdict(got.merged) == asdict(expected)
        assert got.serial_elapsed_us == expected.elapsed_us
        assert got.per_shard_ops == [len(trace)]


class TestShardLocalEquivalence:
    def test_n_shard_cluster_does_the_single_pool_work(self):
        """Working set fits every pool, pages split cleanly by hash: the
        4-shard cluster must do exactly the unsharded run's work."""
        num_pages = 64
        trace = generate_trace(MS, num_pages, 2000, seed=5)
        stack = StackConfig(
            profile=BINARY_PROFILE, policy="lru", variant="baseline",
            num_pages=num_pages, pool_fraction=1.0, options=BINARY_OPTIONS,
        )
        expected = run_config(stack, trace, label="local")
        config = ClusterConfig(
            profile=BINARY_PROFILE, policy="lru", variant="baseline",
            num_pages=num_pages, num_shards=4, pool_fraction=1.0,
            options=BINARY_OPTIONS,
        )
        got = run_cluster(config, trace, workers=1, label="local")
        assert got.ops == expected.ops
        assert asdict(got.merged.buffer) == asdict(expected.buffer)
        assert asdict(got.merged.device) == asdict(expected.device)
        # No evictions anywhere: misses = cold misses = one per touched
        # page, in the cluster exactly as in the single pool.
        assert got.merged.buffer.evictions == 0
        assert got.merged.buffer.misses == len(set(trace.pages))
        # Virtual work is conserved exactly (binary latencies): the sum
        # of shard clocks is the single node's clock, the makespan is
        # what parallel shard service buys.
        assert got.serial_elapsed_us == expected.elapsed_us
        assert got.merged.io_time_us == expected.io_time_us
        assert got.merged.cpu_time_us == expected.cpu_time_us
        assert got.merged.elapsed_us == max(
            shard.elapsed_us for shard in got.per_shard
        )
        assert got.merged.elapsed_us < expected.elapsed_us


class TestWorkerCountDeterminism:
    @pytest.mark.parametrize("policy,variant", [
        ("lru", "baseline"), ("cflru", "ace"),
    ])
    def test_merged_metrics_identical_at_any_worker_count(
        self, policy, variant
    ):
        trace = generate_trace(MS, 400, 800, seed=3)
        config = ClusterConfig(
            profile=PCIE_SSD, policy=policy, variant=variant,
            num_pages=400, num_shards=4, options=OPTIONS,
        )
        serial = run_cluster(config, trace, workers=1)
        parallel = run_cluster(config, trace, workers=4)
        assert asdict(serial.merged) == asdict(parallel.merged)
        assert [asdict(shard) for shard in serial.per_shard] == [
            asdict(shard) for shard in parallel.per_shard
        ]
        assert serial.per_shard_ops == parallel.per_shard_ops
        assert serial.serial_elapsed_us == parallel.serial_elapsed_us
