"""Tests for the deterministic page->shard routers."""

import pytest

from repro.cluster.router import (
    CrossShardStats,
    HashShardRouter,
    MappedShardRouter,
    ShardRouter,
    StaleRouteError,
)
from repro.workloads.trace import PageRequest


class TestHashShardRouter:
    def test_small_ints_route_modulo(self):
        router = HashShardRouter(4)
        for page in range(100):
            assert router.shard_of(page) == page % 4

    def test_deterministic_across_instances(self):
        a = HashShardRouter(3)
        b = HashShardRouter(3)
        assert [a.shard_of(p) for p in range(50)] == [
            b.shard_of(p) for p in range(50)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            HashShardRouter(0)

    def test_placement_name(self):
        assert HashShardRouter(2).placement == "hash"


class TestMappedShardRouter:
    def test_assignment_is_authoritative(self):
        router = MappedShardRouter([2, 0, 1, 2], 3)
        assert [router.shard_of(p) for p in range(4)] == [2, 0, 1, 2]

    def test_hash_fallback_outside_vector(self):
        router = MappedShardRouter([0, 0], 3)
        for page in (2, 7, 1000):
            assert router.shard_of(page) == hash(page) % 3

    def test_rejects_out_of_range_assignment(self):
        with pytest.raises(ValueError):
            MappedShardRouter([0, 3], 3)

    def test_placement_name(self):
        assert MappedShardRouter([0], 1).placement == "locality"


class TestSplit:
    def test_split_preserves_relative_order(self):
        router = HashShardRouter(2)
        pages = [0, 1, 2, 3, 4, 5, 2, 0]
        writes = [False, True, False, True, False, True, True, False]
        split = router.split(pages, writes)
        assert split[0] == ([0, 2, 4, 2, 0], [False, False, False, True, False])
        assert split[1] == ([1, 3, 5], [True, True, True])

    def test_split_covers_every_request(self):
        router = HashShardRouter(3)
        pages = list(range(30)) * 2
        writes = [p % 2 == 0 for p in pages]
        split = router.split(pages, writes)
        assert sum(len(sub_pages) for sub_pages, _ in split) == len(pages)

    def test_split_length_mismatch(self):
        with pytest.raises(ValueError):
            HashShardRouter(2).split([1, 2], [True])


class TestSplitTransactions:
    @staticmethod
    def _txn(pages):
        return ("t", [PageRequest(page=p, is_write=False) for p in pages])

    def test_local_transaction_stays_whole(self):
        router = HashShardRouter(2)
        split = router.split_transactions([self._txn([0, 2, 4])])
        assert len(split.per_shard[0]) == 1
        assert split.per_shard[1] == []
        assert split.stats.cross_shard_transactions == 0
        assert split.stats.extra_shard_touches == 0

    def test_cross_shard_transaction_sliced_and_counted(self):
        router = HashShardRouter(2)
        split = router.split_transactions([self._txn([0, 1, 2, 3])])
        assert [r.page for _, r0 in split.per_shard[0] for r in r0] == [0, 2]
        assert [r.page for _, r1 in split.per_shard[1] for r in r1] == [1, 3]
        assert split.stats.cross_shard_transactions == 1
        assert split.stats.cross_shard_accesses == 4
        assert split.stats.extra_shard_touches == 1

    def test_extra_touches_scale_with_spread(self):
        router = HashShardRouter(4)
        split = router.split_transactions([self._txn([0, 1, 2, 3])])
        assert split.stats.extra_shard_touches == 3

    def test_cross_shard_ratio(self):
        stats = CrossShardStats(cross_shard_transactions=1, transactions=4)
        assert stats.cross_shard_ratio == 0.25
        assert CrossShardStats().cross_shard_ratio == 0.0

    def test_base_router_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ShardRouter(2).shard_of(1)


class TestRemapEpochs:
    def test_fresh_router_is_epoch_zero_node_zero(self):
        router = HashShardRouter(3)
        assert router.epoch == 0
        assert [router.node_of(s) for s in range(3)] == [0, 0, 0]

    def test_route_checks_the_epoch(self):
        router = HashShardRouter(2)
        assert router.route(5, epoch=0) == router.shard_of(5)
        with pytest.raises(StaleRouteError) as excinfo:
            router.route(5, epoch=1)
        assert excinfo.value.presented == 1
        assert excinfo.value.current == 0

    def test_with_failover_bumps_epoch_not_ownership(self):
        router = HashShardRouter(2)
        promoted = router.with_failover(1, 2)
        assert promoted.epoch == 1
        assert promoted.node_of(1) == 2
        assert promoted.node_of(0) == 0
        # Page ownership is unchanged; the old router is intact but stale.
        assert [promoted.shard_of(p) for p in range(20)] == [
            router.shard_of(p) for p in range(20)
        ]
        assert router.epoch == 0
        assert router.node_of(1) == 0
        with pytest.raises(StaleRouteError):
            promoted.route(5, epoch=0)

    def test_failover_chain_accumulates(self):
        router = HashShardRouter(2)
        twice = router.with_failover(0, 1).with_failover(1, 2)
        assert twice.epoch == 2
        assert twice.node_of(0) == 1
        assert twice.node_of(1) == 2

    def test_with_failover_validation(self):
        router = HashShardRouter(2)
        with pytest.raises(ValueError):
            router.with_failover(2, 1)
        with pytest.raises(ValueError):
            router.with_failover(0, -1)

    def test_node_of_validates_shard(self):
        with pytest.raises(ValueError):
            HashShardRouter(2).node_of(2)

    def test_with_reassignment_moves_exactly_the_range(self):
        router = MappedShardRouter([0, 0, 1, 1], 2)
        moved = router.with_reassignment(range(2, 4), 0)
        assert moved.epoch == 1
        assert [moved.shard_of(p) for p in range(4)] == [0, 0, 0, 0]
        # The old router still answers (its view is consistent), but its
        # epoch no longer routes.
        assert [router.shard_of(p) for p in range(4)] == [0, 0, 1, 1]
        with pytest.raises(StaleRouteError):
            moved.route(0, epoch=0)

    def test_with_reassignment_materializes_hash_fallback(self):
        # Extending the vector must freeze the previous (hash) owner of
        # newly covered pages, so only the requested range changes owner.
        router = MappedShardRouter([0, 0], 2)
        before = [router.shard_of(p) for p in range(10)]
        moved = router.with_reassignment(range(6, 8), 0)
        after = [moved.shard_of(p) for p in range(10)]
        for page in range(10):
            expected = 0 if page in (6, 7) else before[page]
            assert after[page] == expected

    def test_with_reassignment_preserves_primary_map(self):
        router = MappedShardRouter([0, 1], 2).with_failover(1, 2)
        moved = router.with_reassignment(range(0, 1), 1)
        assert moved.epoch == 2
        assert moved.node_of(1) == 2

    def test_with_reassignment_validation(self):
        router = MappedShardRouter([0, 1], 2)
        with pytest.raises(ValueError):
            router.with_reassignment(range(0, 1), 2)
        with pytest.raises(ValueError):
            router.with_reassignment(range(3, 3), 0)
        with pytest.raises(ValueError):
            router.with_reassignment(range(-2, 1), 0)
