"""Tests for the co-access graph and the locality partitioner."""

import pytest

from repro.cluster.placement import (
    CoAccessGraph,
    coaccess_from_trace,
    coaccess_from_transactions,
    cut_weight,
    hash_placement,
    imbalance,
    locality_placement,
    placement_report,
)
from repro.workloads.trace import PageRequest
from repro.workloads.tpcc.driver import TPCCWorkload


class TestCoAccessGraph:
    def test_edges_are_symmetric(self):
        graph = CoAccessGraph(num_pages=8)
        graph.add_edge(1, 2)
        graph.add_edge(1, 2)
        assert graph.adjacency[1][2] == 2
        assert graph.adjacency[2][1] == 2
        assert graph.total_edge_weight == 2

    def test_self_edges_ignored(self):
        graph = CoAccessGraph(num_pages=4)
        graph.add_edge(1, 1)
        assert graph.adjacency == {}

    def test_trace_window_links_neighbours(self):
        graph = coaccess_from_trace([0, 1, 2], 4, window=2)
        assert graph.adjacency[0].get(1) == 1
        assert graph.adjacency[1].get(2) == 1
        assert 2 not in graph.adjacency.get(0, {})

    def test_per_client_windows_carry_no_cross_affinity(self):
        # Interleaved clients: client 0 touches {0,1}, client 1 {10,11}.
        pages = [0, 10, 1, 11]
        clients = [0, 1, 0, 1]
        graph = coaccess_from_trace(pages, 16, client_ids=clients, window=4)
        assert graph.adjacency[0].get(1) == 1
        assert graph.adjacency[10].get(11) == 1
        assert 10 not in graph.adjacency.get(0, {})

    def test_transactions_link_all_pairs(self):
        txn = ("t", [PageRequest(page=p, is_write=False) for p in (0, 1, 2)])
        graph = coaccess_from_transactions([txn], 4)
        assert graph.adjacency[0][1] == 1
        assert graph.adjacency[0][2] == 1
        assert graph.adjacency[1][2] == 1


class TestPlacement:
    def test_hash_placement_matches_router(self):
        assert hash_placement(10, 4) == [hash(p) % 4 for p in range(10)]

    def test_locality_placement_total_and_in_range(self):
        graph = coaccess_from_trace(list(range(20)) * 3, 32)
        assignment = locality_placement(graph, 4)
        assert len(assignment) == 32
        assert all(0 <= shard < 4 for shard in assignment)

    def test_locality_keeps_cliques_together(self):
        # Two disjoint 4-cliques must not be split across shards.
        graph = CoAccessGraph(num_pages=8)
        for clique in ([0, 1, 2, 3], [4, 5, 6, 7]):
            for page in clique:
                graph.add_access(page, 5)
            for i, a in enumerate(clique):
                for b in clique[i + 1:]:
                    graph.add_edge(a, b, 10)
        assignment = locality_placement(graph, 2)
        assert len({assignment[p] for p in (0, 1, 2, 3)}) == 1
        assert len({assignment[p] for p in (4, 5, 6, 7)}) == 1
        assert cut_weight(graph, assignment) == 0
        assert imbalance(graph, assignment, 2) == 1.0

    def test_balance_bound_respected(self):
        graph = coaccess_from_trace(list(range(40)) * 5, 64)
        slack = 0.10
        assignment = locality_placement(graph, 4, balance_slack=slack)
        assert imbalance(graph, assignment, 4) <= 1.0 + slack + 1e-9

    def test_deterministic(self):
        graph = coaccess_from_trace([p % 13 for p in range(200)], 16)
        assert locality_placement(graph, 3) == locality_placement(graph, 3)

    def test_single_shard_trivial(self):
        graph = coaccess_from_trace([0, 1, 2], 4)
        assert locality_placement(graph, 1) == [0, 0, 0, 0]

    def test_validation(self):
        graph = CoAccessGraph(num_pages=4)
        with pytest.raises(ValueError):
            locality_placement(graph, 0)
        with pytest.raises(ValueError):
            locality_placement(graph, 2, balance_slack=-0.1)


class TestTPCCImprovement:
    def test_locality_strictly_beats_hash_at_equal_imbalance(self):
        """The acceptance claim: on the TPC-C co-access graph, the greedy
        partitioner cuts strictly fewer edges than hash placement while
        staying within the imbalance hash placement itself exhibits."""
        workload = TPCCWorkload(warehouses=4, row_scale=0.05, seed=7)
        stream = list(workload.transaction_stream(200))
        num_pages = workload.total_pages
        graph = coaccess_from_transactions(stream, num_pages)
        num_shards = 4

        hash_assignment = hash_placement(num_pages, num_shards)
        hash_score = placement_report(graph, hash_assignment, num_shards)
        # Allow the optimizer exactly the imbalance hash routing shows.
        slack = max(0.0, hash_score["imbalance"] - 1.0)
        locality_assignment = locality_placement(
            graph, num_shards, balance_slack=slack
        )
        locality_score = placement_report(
            graph, locality_assignment, num_shards
        )
        assert locality_score["cut_edges"] < hash_score["cut_edges"]
        assert locality_score["imbalance"] <= hash_score["imbalance"] + 1e-9

    def test_scores_are_pareto_coordinates(self):
        graph = coaccess_from_trace([p % 11 for p in range(100)], 16)
        report = placement_report(graph, hash_placement(16, 2), 2)
        assert set(report) == {"cut_edges", "cut_fraction", "imbalance"}
        assert 0.0 <= report["cut_fraction"] <= 1.0
