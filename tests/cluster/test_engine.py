"""Unit tests for cluster configuration, stacks, and the metric merge."""

import pytest

from repro.cluster.engine import (
    ClusterConfig,
    MAX_SHARD_ATTEMPTS,
    ShardJob,
    ShardResult,
    _replay_shard,
    build_router,
    build_shard_stack,
    merge_shard_metrics,
    run_cluster_transactions,
)
from repro.cluster.router import HashShardRouter, MappedShardRouter
from repro.core.ace import ACEBufferPoolManager
from repro.engine.executor import ExecutionOptions
from repro.errors import ClusterReplayError, ReproError
from repro.storage.profiles import PCIE_SSD
from repro.workloads.trace import PageRequest

OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


def make_config(**overrides):
    kwargs = dict(
        profile=PCIE_SSD,
        policy="lru",
        variant="baseline",
        num_pages=256,
        num_shards=4,
        options=OPTIONS,
    )
    kwargs.update(overrides)
    return ClusterConfig(**kwargs)


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_config(variant="nope")
        with pytest.raises(ValueError):
            make_config(num_shards=0)
        with pytest.raises(ValueError):
            make_config(num_pages=4)
        with pytest.raises(ValueError):
            make_config(pool_fraction=0.0)
        with pytest.raises(ValueError):
            make_config(placement="random")
        with pytest.raises(ValueError):
            make_config(placement="locality")  # needs an assignment
        with pytest.raises(ValueError):
            make_config(cross_shard_penalty_us=-1.0)

    def test_capacity_split(self):
        config = make_config(num_pages=256, num_shards=4, pool_fraction=0.06)
        # 256 * 0.06 = 15 < 4 * 4 shards -> the per-shard minimum wins.
        assert config.total_capacity == 16
        assert [config.shard_capacity(s) for s in range(4)] == [4, 4, 4, 4]

    def test_capacity_remainder_to_first_shards(self):
        config = make_config(num_pages=1000, num_shards=3, pool_fraction=0.06)
        capacities = [config.shard_capacity(s) for s in range(3)]
        assert sum(capacities) == config.total_capacity == 60
        assert capacities == [20, 20, 20]
        config = make_config(num_pages=1100, num_shards=3, pool_fraction=0.06)
        assert [config.shard_capacity(s) for s in range(3)] == [22, 22, 22]

    def test_label(self):
        assert make_config().label == "lru/baseline/s4/hash"


class TestBuildRouter:
    def test_hash_config_builds_hash_router(self):
        assert isinstance(build_router(make_config()), HashShardRouter)

    def test_locality_config_builds_mapped_router(self):
        assignment = tuple(p % 4 for p in range(256))
        router = build_router(
            make_config(placement="locality", assignment=assignment)
        )
        assert isinstance(router, MappedShardRouter)
        assert router.shard_of(5) == 1


class TestBuildShardStack:
    def test_shard_devices_cover_global_space(self):
        config = make_config()
        manager = build_shard_stack(config, 0)
        assert manager.capacity == config.shard_capacity(0)
        # Global page ids stay valid on every shard node.
        manager.read_page(255)

    def test_ace_variant(self):
        manager = build_shard_stack(make_config(variant="ace"), 1)
        assert isinstance(manager, ACEBufferPoolManager)

    def test_shard_index_validated(self):
        with pytest.raises(ValueError):
            build_shard_stack(make_config(), 4)


class TestShardJob:
    def test_needs_exactly_one_stream(self):
        config = make_config()
        with pytest.raises(ValueError):
            ShardJob(shard=0, config=config)
        with pytest.raises(ValueError):
            ShardJob(shard=0, config=config, pages=(1,), writes=(False,),
                     transactions=())
        with pytest.raises(ValueError):
            ShardJob(shard=0, config=config, pages=(1,))


class TestMerge:
    @staticmethod
    def _result(shard, pages, writes, config):
        job = ShardJob(
            shard=shard, config=config,
            pages=tuple(pages), writes=tuple(writes),
        )
        return _replay_shard(job)

    def test_merge_is_makespan_plus_sums(self):
        config = make_config(num_shards=2)
        a = self._result(0, [0, 2, 4, 0], [False] * 4, config)
        b = self._result(1, [1, 3], [True, True], config)
        merged = merge_shard_metrics([a, b], "merged")
        assert merged.ops == a.metrics.ops + b.metrics.ops
        assert merged.elapsed_us == max(
            a.metrics.elapsed_us, b.metrics.elapsed_us
        )
        assert merged.io_time_us == pytest.approx(
            a.metrics.io_time_us + b.metrics.io_time_us
        )
        assert merged.buffer.misses == (
            a.metrics.buffer.misses + b.metrics.buffer.misses
        )
        assert merged.device.reads == (
            a.metrics.device.reads + b.metrics.device.reads
        )

    def test_merge_order_independent(self):
        config = make_config(num_shards=2)
        a = self._result(0, [0, 2], [False, False], config)
        b = self._result(1, [1, 3], [True, False], config)
        assert merge_shard_metrics([a, b], "m") == merge_shard_metrics(
            [b, a], "m"
        )

    def test_penalty_added_to_elapsed(self):
        config = make_config(num_shards=1)
        a = self._result(0, [0, 1], [False, False], config)
        plain = merge_shard_metrics([a], "m")
        charged = merge_shard_metrics([a], "m", cross_shard_penalty_us=7.5)
        assert charged.elapsed_us == plain.elapsed_us + 7.5

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_shard_metrics([], "m")


class TestTransactions:
    @staticmethod
    def _txn(pages, is_write=False):
        return ("t", [PageRequest(page=p, is_write=is_write) for p in pages])

    def test_cross_shard_penalty_charged(self):
        config = make_config(num_shards=2, cross_shard_penalty_us=100.0)
        stream = [self._txn([0, 1, 2, 3]), self._txn([0, 2])]
        metrics = run_cluster_transactions(config, stream, workers=1)
        assert metrics.cross_shard.cross_shard_transactions == 1
        assert metrics.cross_shard.extra_shard_touches == 1
        assert metrics.cross_shard_penalty_us == 100.0
        no_penalty = run_cluster_transactions(
            make_config(num_shards=2), stream, workers=1
        )
        assert metrics.merged.elapsed_us == (
            no_penalty.merged.elapsed_us + 100.0
        )

    def test_transaction_counts_merge(self):
        config = make_config(num_shards=2)
        stream = [self._txn([0, 2]), self._txn([1, 3]), self._txn([0, 1])]
        metrics = run_cluster_transactions(config, stream, workers=1)
        # The split transaction is counted once per shard branch replayed.
        assert metrics.merged.transactions == 4
        assert metrics.cross_shard.transactions == 3


class TestClusterReplayError:
    def test_attributes_and_message(self):
        error = ClusterReplayError(shard=2, attempts=MAX_SHARD_ATTEMPTS,
                                   error="OSError: boom")
        assert isinstance(error, ReproError)
        assert error.shard == 2
        assert error.attempts == MAX_SHARD_ATTEMPTS
        assert "shard 2" in str(error)
        assert "OSError: boom" in str(error)
