"""Tests for replica groups: WAL shipping, failover, rejoin, divergence.

The load-bearing claims: a replicated cluster survives any storm that
leaves one live node per group with zero committed loss and zero phantom
redo; a stranded group dies loudly as a structured
:class:`~repro.errors.NodeFailure`; replay is byte-identical at any
worker count; and a promoted replica's durable state is byte-identical
to a never-crashed reference's durable prefix at the same commit point
(the divergence battery).
"""

import dataclasses

import pytest

from repro.bufferpool.recovery import recover, simulate_crash
from repro.cluster.engine import (
    ClusterConfig,
    run_cluster,
    run_cluster_transactions,
)
from repro.cluster.replication import build_replica_stack
from repro.engine.executor import ExecutionOptions
from repro.errors import ClusterReplayError, NodeFailure
from repro.faults.nodes import NodeFault, NodeFaultPlan
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS, generate_trace

OPTIONS = ExecutionOptions(cpu_us_per_op=2.0, commit_every_ops=32)
NUM_PAGES = 1_200
NUM_OPS = 2_400


def make_config(
    policy="lru",
    variant="ace",
    num_shards=2,
    replication_factor=1,
    faults=(),
    seed=0,
    capture=False,
):
    plan = NodeFaultPlan(seed=seed, faults=tuple(faults)) if faults else None
    return ClusterConfig(
        profile=PCIE_SSD,
        policy=policy,
        variant=variant,
        num_pages=NUM_PAGES,
        num_shards=num_shards,
        options=OPTIONS,
        replication_factor=replication_factor,
        node_faults=plan,
        capture_promotion_images=capture,
    )


def make_trace(seed=42, num_ops=NUM_OPS):
    return generate_trace(MS, NUM_PAGES, num_ops, seed=seed)


class TestConfig:
    def test_label_gains_replication_suffix(self):
        assert make_config(replication_factor=2).label.endswith("/r2")
        base = ClusterConfig(
            profile=PCIE_SSD, policy="lru", variant="baseline",
            num_pages=NUM_PAGES, num_shards=2,
        )
        assert "/r" not in base.label

    def test_fault_plan_must_fit_the_cluster(self):
        with pytest.raises(ValueError):
            make_config(num_shards=2, faults=[
                NodeFault(shard=2, node=0, crash_at_access=1),
            ])
        with pytest.raises(ValueError):
            make_config(replication_factor=1, faults=[
                NodeFault(shard=0, node=2, crash_at_access=1),
            ])

    def test_negative_replication_rejected(self):
        with pytest.raises(ValueError):
            make_config(replication_factor=-1)

    def test_transactions_refuse_replication(self):
        with pytest.raises(ValueError):
            run_cluster_transactions(make_config(), [])


class TestFailover:
    def test_single_primary_crash_fails_over_and_audits_clean(self):
        config = make_config(faults=[
            NodeFault(shard=0, node=0, crash_at_access=101),
        ])
        metrics = run_cluster(config, make_trace(), workers=1)
        summary = metrics.replication
        assert summary is not None
        assert summary.failovers == 1
        assert summary.node_crashes == 1
        assert summary.lost_updates == 0
        assert summary.phantom_pages == 0
        assert summary.ok
        assert summary.final_epoch == 1
        assert summary.final_primaries == (1, 0)
        assert summary.max_failover_latency_us > 0
        # The in-flight window died with the primary and was retried:
        # 101 = 3 full commits of 32 plus 5 in-flight accesses.
        shard0 = summary.per_shard[0]
        assert shard0.retried_accesses == 5
        assert 0 < summary.availability < 1
        assert metrics.ops == NUM_OPS

    def test_no_faults_means_no_failovers_but_real_shipping(self):
        metrics = run_cluster(make_config(), make_trace(), workers=1)
        summary = metrics.replication
        assert summary.failovers == 0
        assert summary.availability == 1.0
        assert summary.final_epoch == 0
        assert all(r.shipped_records > 0 for r in summary.per_shard)
        assert summary.ok

    def test_unreplicated_config_has_no_summary(self):
        config = ClusterConfig(
            profile=PCIE_SSD, policy="lru", variant="baseline",
            num_pages=NUM_PAGES, num_shards=2, options=OPTIONS,
        )
        metrics = run_cluster(config, make_trace(), workers=1)
        assert metrics.replication is None

    def test_virtual_time_trigger(self):
        config = make_config(faults=[
            NodeFault(shard=0, node=0, crash_at_us=30_000.0),
        ])
        summary = run_cluster(config, make_trace(), workers=1).replication
        assert summary.failovers == 1
        event = summary.per_shard[0].failovers[0]
        assert event.virtual_time_us >= 30_000.0
        assert summary.ok

    def test_double_failure_falls_through_to_second_replica(self):
        config = make_config(replication_factor=2, faults=[
            NodeFault(shard=0, node=0, crash_at_access=101),
            NodeFault(shard=0, node=1, crash_at_access=101),
        ])
        summary = run_cluster(config, make_trace(), workers=1).replication
        shard0 = summary.per_shard[0]
        assert len(shard0.failovers) == 1
        event = shard0.failovers[0]
        assert event.promoted_node == 2
        assert event.candidates_lost == 1
        assert shard0.node_crashes == 2
        assert summary.final_primaries[0] == 2
        assert summary.ok

    def test_rejoin_and_fail_back(self):
        config = make_config(faults=[
            NodeFault(shard=0, node=0, crash_at_access=60,
                      rejoin_after_accesses=100),
            NodeFault(shard=0, node=1, crash_at_access=400),
        ])
        summary = run_cluster(config, make_trace(), workers=1).replication
        shard0 = summary.per_shard[0]
        assert len(shard0.failovers) == 2
        assert shard0.rejoins == 1
        # Node 0 crashed, rejoined via anti-entropy, and took back over
        # when the promoted node 1 died in turn.
        assert shard0.final_primary == 0
        assert summary.ok


class TestNodeFailurePath:
    def test_stranded_group_raises_structured_failure(self):
        # R=0 with a primary fault: nobody to fail over to.
        config = ClusterConfig(
            profile=PCIE_SSD, policy="lru", variant="baseline",
            num_pages=NUM_PAGES, num_shards=2, options=OPTIONS,
            node_faults=NodeFaultPlan(faults=(
                NodeFault(shard=0, node=0, crash_at_access=101),
            )),
        )
        with pytest.raises(ClusterReplayError) as excinfo:
            run_cluster(config, make_trace(), workers=1)
        failure = excinfo.value.failure
        assert isinstance(failure, NodeFailure)
        assert failure.shard == 0
        assert failure.node == 0
        assert failure.virtual_time_us > 0
        assert "no live replica" in failure.cause
        # Partial metrics cover exactly the committed prefix (the last
        # commit boundary before the crash: 3 full commits of 32).
        assert failure.partial_metrics is not None
        assert failure.partial_metrics.ops == 96

    def test_parallel_workers_raise_the_same_failure(self):
        config = ClusterConfig(
            profile=PCIE_SSD, policy="lru", variant="baseline",
            num_pages=NUM_PAGES, num_shards=2, options=OPTIONS,
            node_faults=NodeFaultPlan(faults=(
                NodeFault(shard=0, node=0, crash_at_access=101),
            )),
        )
        with pytest.raises(ClusterReplayError) as excinfo:
            run_cluster(config, make_trace(), workers=2)
        assert excinfo.value.failure.partial_metrics.ops == 96


class TestWorkerDeterminism:
    def test_merged_metrics_identical_across_worker_counts(self):
        config = make_config(replication_factor=2, faults=[
            NodeFault(shard=0, node=0, crash_at_access=101),
            NodeFault(shard=1, node=0, crash_at_access=300,
                      rejoin_after_accesses=200),
        ], seed=3)
        trace = make_trace()
        serial = run_cluster(config, trace, workers=1)
        parallel = run_cluster(config, trace, workers=2)
        # Wall-clock fields aside, the merged metrics and the complete
        # failover history must be byte-identical.
        a = dataclasses.asdict(serial)
        b = dataclasses.asdict(parallel)
        for entry in (a, b):
            entry.pop("replay_wall_s", None)
            entry.pop("elapsed_wall_s", None)
            entry.pop("replication", None)
        assert a == b
        assert serial.replication.per_shard == parallel.replication.per_shard
        assert serial.replication.final_primaries == \
            parallel.replication.final_primaries


def reference_durable_images(config, pages, writes, committed):
    """A never-crashed single-stack replay of the committed prefix.

    Replays exactly ``committed`` accesses on a fresh WAL-bearing stack,
    flushes, then crashes and recovers it — the durable images are the
    ground truth a promoted replica must match byte-for-byte.
    """
    manager = build_replica_stack(config, 0)
    for index in range(committed):
        manager.access(pages[index], writes[index])
    manager.wal.flush()
    image = simulate_crash(manager)
    recover(image)
    return tuple(
        (page, image.device.peek(page))
        for page in range(config.num_pages)
        if image.device.peek(page) != 0
    )


class TestDivergenceBattery:
    """Satellite 3: promoted replicas never diverge from the reference.

    Every swept policy x variant, with the crash point deliberately
    inside an ACE batch window (101 = 3 x 32 + 5), plus a double-failure
    sweep at R=2 — the second-choice candidate's promotion images must
    match the reference too.
    """

    POLICIES = ("lru", "clock", "cflru")
    VARIANTS = ("baseline", "ace")

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_promoted_images_match_reference_prefix(self, policy, variant):
        config = make_config(
            policy=policy, variant=variant, num_shards=1,
            faults=[NodeFault(shard=0, node=0, crash_at_access=101)],
            capture=True,
        )
        trace = make_trace(num_ops=600)
        summary = run_cluster(config, trace, workers=1).replication
        shard0 = summary.per_shard[0]
        assert len(shard0.promotion_images) == 1
        committed, node, images = shard0.promotion_images[0]
        assert node == 1
        assert committed == 96  # the last commit boundary before 101
        reference = reference_durable_images(
            config, trace.pages, trace.writes, committed
        )
        assert images == reference
        assert summary.ok

    @pytest.mark.parametrize("policy", POLICIES)
    def test_double_failure_second_choice_matches_reference(self, policy):
        config = make_config(
            policy=policy, variant="ace", num_shards=1,
            replication_factor=2,
            faults=[
                NodeFault(shard=0, node=0, crash_at_access=101),
                NodeFault(shard=0, node=1, crash_at_access=101),
            ],
            capture=True,
        )
        trace = make_trace(num_ops=600)
        summary = run_cluster(config, trace, workers=1).replication
        shard0 = summary.per_shard[0]
        committed, node, images = shard0.promotion_images[0]
        assert node == 2
        assert shard0.failovers[0].candidates_lost == 1
        reference = reference_durable_images(
            config, trace.pages, trace.writes, committed
        )
        assert images == reference
        assert summary.ok

    def test_rejoined_node_promotes_to_reference_state(self):
        # Anti-entropy catch-up then promotion: the rebuilt node's
        # durable images must equal the reference at the *second* crash
        # point, proving the catch-up shipped the whole history.
        config = make_config(
            policy="lru", variant="ace", num_shards=1,
            faults=[
                NodeFault(shard=0, node=0, crash_at_access=60,
                          rejoin_after_accesses=100),
                NodeFault(shard=0, node=1, crash_at_access=400),
            ],
            capture=True,
        )
        trace = make_trace(num_ops=600)
        summary = run_cluster(config, trace, workers=1).replication
        shard0 = summary.per_shard[0]
        assert len(shard0.promotion_images) == 2
        committed, node, images = shard0.promotion_images[1]
        assert node == 0  # the rejoiner took back over
        reference = reference_durable_images(
            config, trace.pages, trace.writes, committed
        )
        assert images == reference
        assert summary.ok
