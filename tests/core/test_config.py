"""Tests for ACEConfig."""

import pytest

from repro.core.config import ACEConfig
from repro.storage.profiles import OPTANE_SSD, PCIE_SSD, VIRTUAL_SSD


class TestValidation:
    def test_positive_batch_sizes_required(self):
        with pytest.raises(ValueError):
            ACEConfig(n_w=0, n_e=1)
        with pytest.raises(ValueError):
            ACEConfig(n_w=1, n_e=-1)

    def test_placement_validated(self):
        with pytest.raises(ValueError):
            ACEConfig(n_w=1, n_e=1, prefetch_placement="middle")
        assert ACEConfig(n_w=1, n_e=1, prefetch_placement="hot").prefetch_placement == "hot"

    def test_frozen(self):
        config = ACEConfig(n_w=2, n_e=2)
        with pytest.raises(AttributeError):
            config.n_w = 4


class TestForDevice:
    def test_follows_kw(self):
        for profile in (PCIE_SSD, OPTANE_SSD, VIRTUAL_SSD):
            config = ACEConfig.for_device(profile)
            assert config.n_w == profile.k_w
            assert config.n_e == profile.k_w
            assert not config.prefetch_enabled

    def test_ne_defaults_to_nw_override(self):
        config = ACEConfig.for_device(PCIE_SSD, n_w=4)
        assert config.n_e == 4

    def test_explicit_ne(self):
        config = ACEConfig.for_device(PCIE_SSD, n_w=8, n_e=2)
        assert config.n_e == 2

    def test_prefetch_flag(self):
        assert ACEConfig.for_device(PCIE_SSD, prefetch_enabled=True).prefetch_enabled
