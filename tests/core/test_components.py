"""Unit tests for the ACE Writer, Evictor, and Reader components."""

import pytest

from repro.core.evictor import Evictor
from repro.core.reader import Reader
from repro.core.writer import Writer

from tests.core.conftest import ScriptedPrefetcher, make_ace


class TestWriter:
    def test_validation(self):
        manager = make_ace()
        with pytest.raises(ValueError):
            Writer(manager, 0)

    def test_select_set_led_by_victim(self):
        manager = make_ace(capacity=6, n_w=3)
        for page in (0, 1, 2, 3):
            manager.write_page(page)
        # Pretend 2 is the victim even though 0 precedes it in LRU order.
        selected = manager.writer.select_writeback_set(2)
        assert selected[0] == 2
        assert len(selected) == 3
        assert 0 in selected  # next dirty pages follow the virtual order

    def test_select_set_capped_at_nw(self):
        manager = make_ace(capacity=8, n_w=2)
        for page in range(6):
            manager.write_page(page)
        assert len(manager.writer.select_writeback_set(0)) == 2

    def test_flush_counts(self):
        manager = make_ace(capacity=6, n_w=4)
        for page in (0, 1):
            manager.write_page(page)
        written = manager.writer.flush([0, 1])
        assert written == 2
        assert manager.writer.batches_issued == 1
        assert manager.writer.pages_written == 2
        assert not manager.is_dirty(0)

    def test_flush_empty_is_noop(self):
        manager = make_ace()
        assert manager.writer.flush([]) == 0
        assert manager.writer.batches_issued == 0


class TestEvictor:
    def test_validation(self):
        manager = make_ace()
        with pytest.raises(ValueError):
            Evictor(manager, 0)

    def test_select_eviction_set(self):
        manager = make_ace(capacity=6, n_e=3)
        for page in range(4):
            manager.read_page(page)
        selected = manager.evictor.select_eviction_set(1)
        assert selected[0] == 1
        assert len(selected) == 3

    def test_evict_counts(self):
        manager = make_ace(capacity=6, n_e=4)
        for page in range(4):
            manager.read_page(page)
        evicted = manager.evictor.evict([0, 1, 2])
        assert evicted == 3
        assert manager.evictor.multi_evictions == 1
        assert manager.evictor.pages_evicted == 3
        assert not manager.contains(0)

    def test_single_eviction_not_counted_as_multi(self):
        manager = make_ace(capacity=6)
        manager.read_page(0)
        manager.evictor.evict([0])
        assert manager.evictor.multi_evictions == 0


class TestReader:
    def test_select_prefetch_set_filters(self):
        prefetcher = ScriptedPrefetcher({5: [6, 7, 6, 5, 9999]})
        manager = make_ace(capacity=8, num_pages=256, prefetch=True,
                           prefetcher=prefetcher)
        manager.read_page(7)  # make 7 resident
        reader = manager.reader
        selected = reader.select_prefetch_set(5, limit=5)
        # 6 kept; duplicate 6 dropped; 5 (self) dropped; 7 resident dropped;
        # 9999 out of range dropped.
        assert selected == [6]

    def test_limit_zero_returns_empty(self):
        prefetcher = ScriptedPrefetcher({5: [6]})
        manager = make_ace(prefetch=True, prefetcher=prefetcher)
        assert manager.reader.select_prefetch_set(5, 0) == []

    def test_fetch_installs_hot_and_cold(self):
        prefetcher = ScriptedPrefetcher({})
        manager = make_ace(capacity=8, prefetch=True, prefetcher=prefetcher)
        manager.reader.fetch(5, [6, 7])
        assert manager.contains(5) and manager.contains(6)
        order = list(manager.policy.eviction_order())
        assert order[-1] == 5          # requested page at MRU
        assert set(order[:2]) == {6, 7}  # prefetched pages at LRU end
        assert manager.reader.pages_prefetched == 2
        assert manager.reader.batched_fetches == 1

    def test_hot_placement_ablation(self):
        prefetcher = ScriptedPrefetcher({})
        manager = make_ace(capacity=8, prefetch=True, prefetcher=prefetcher)
        manager.reader.cold_placement = False
        manager.read_page(0)
        manager.reader.fetch(5, [6])
        order = list(manager.policy.eviction_order())
        # With hot placement, the prefetched page is NOT first to evict.
        assert order[0] == 0
