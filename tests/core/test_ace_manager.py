"""Tests for the ACE bufferpool manager (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ACEConfig
from repro.errors import PoolExhaustedError
from repro.storage.profiles import PCIE_SSD

from tests.core.conftest import ScriptedPrefetcher, make_ace


def fill_dirty(manager, pages):
    """Write each page once so the pool holds them dirty."""
    for page in pages:
        manager.write_page(page)


class TestCleanPath:
    def test_clean_victim_behaves_classically(self):
        manager = make_ace(capacity=2)
        manager.read_page(0)
        manager.read_page(1)
        manager.read_page(2)  # victim 0 is clean: drop + single read
        assert not manager.contains(0)
        assert manager.device.stats.writes == 0
        assert manager.stats.clean_evictions == 1

    def test_read_only_workload_identical_to_baseline(self):
        """The paper's no-penalty property: zero writes -> zero difference."""
        from repro.bufferpool.manager import BufferPoolManager
        from repro.policies.lru import LRUPolicy
        from repro.storage.device import SimulatedSSD
        from tests.core.conftest import ACE_TEST_PROFILE

        pattern = [0, 1, 2, 3, 1, 4, 0, 5, 6, 2, 7, 8, 1, 9] * 20

        def run(cls, **kwargs):
            device = SimulatedSSD(ACE_TEST_PROFILE, num_pages=64)
            device.format_pages(range(64))
            manager = cls(4, LRUPolicy(), device, **kwargs)
            for page in pattern:
                manager.read_page(page)
            return manager

        baseline = run(BufferPoolManager)
        ace = make_ace(capacity=4, num_pages=64)
        for page in pattern:
            ace.read_page(page)
        assert ace.stats.misses == baseline.stats.misses
        assert ace.device.stats.writes == baseline.device.stats.writes == 0
        assert ace.device.clock.now_us == baseline.device.clock.now_us


class TestDirtyPathWithoutPrefetch:
    def test_writer_batches_nw_dirty_pages(self):
        manager = make_ace(capacity=4, n_w=4)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)  # victim 0 dirty -> batch-write all 4
        assert manager.device.stats.writes == 4
        assert manager.device.stats.write_batches == 1
        assert manager.device.stats.largest_write_batch == 4

    def test_only_victim_evicted(self):
        manager = make_ace(capacity=4, n_w=4)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        assert not manager.contains(0)
        for page in (1, 2, 3):
            assert manager.contains(page)
            assert not manager.is_dirty(page)  # cleaned, not evicted

    def test_subsequent_evictions_are_free(self):
        """After one batched write-back the next n_w - 1 evictions are free."""
        manager = make_ace(capacity=4, n_w=4)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        writes_after_first = manager.device.stats.writes
        manager.read_page(11)
        manager.read_page(12)
        manager.read_page(13)
        assert manager.device.stats.writes == writes_after_first

    def test_batch_limited_by_available_dirty_pages(self):
        manager = make_ace(capacity=4, n_w=4)
        manager.write_page(0)
        manager.read_page(1)
        manager.read_page(2)
        manager.read_page(3)
        manager.read_page(10)  # victim 0 dirty, but it is the only dirty page
        assert manager.device.stats.writes == 1

    def test_writer_follows_virtual_order(self):
        manager = make_ace(capacity=4, n_w=2)
        fill_dirty(manager, [0, 1, 2, 3])
        # LRU order is 0,1,2,3 -> the write-back set must be {0, 1}.
        manager.read_page(10)
        assert not manager.is_dirty(0) if manager.contains(0) else True
        assert not manager.is_dirty(1)
        assert manager.is_dirty(2)
        assert manager.is_dirty(3)

    def test_batch_write_costs_single_wave(self):
        manager = make_ace(capacity=4, n_w=4)
        fill_dirty(manager, [0, 1, 2, 3])
        t0 = manager.device.clock.now_us
        manager.read_page(10)
        elapsed = manager.device.clock.now_us - t0
        # One write wave (200us for alpha=2) + one read (100us).
        assert elapsed == pytest.approx(300.0)

    def test_amortization_beats_baseline_on_dirty_churn(self):
        from repro.bufferpool.manager import BufferPoolManager
        from repro.policies.lru import LRUPolicy
        from repro.storage.device import SimulatedSSD
        from tests.core.conftest import ACE_TEST_PROFILE

        def churn(manager):
            for page in range(64):
                manager.write_page(page)
            return manager.device.clock.now_us

        device = SimulatedSSD(ACE_TEST_PROFILE, num_pages=64)
        device.format_pages(range(64))
        baseline_time = churn(BufferPoolManager(4, LRUPolicy(), device))
        ace_time = churn(make_ace(capacity=4, n_w=4))
        assert ace_time < baseline_time


class TestDirtyPathWithPrefetch:
    def test_evicts_ne_pages_and_prefetches(self):
        prefetcher = ScriptedPrefetcher({10: [20, 21, 22]})
        manager = make_ace(capacity=4, n_w=4, prefetch=True, prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        # n_e = 4 pages evicted, requested page + 3 prefetched installed.
        for page in (0, 1, 2, 3):
            assert not manager.contains(page)
        for page in (10, 20, 21, 22):
            assert manager.contains(page)
        assert manager.stats.prefetch_issued == 3

    def test_prefetched_pages_sit_at_eviction_end(self):
        prefetcher = ScriptedPrefetcher({10: [20, 21, 22]})
        manager = make_ace(capacity=4, n_w=4, prefetch=True, prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        order = list(manager.policy.eviction_order())
        # Requested page 10 is MRU (last); prefetched pages come first.
        assert order[-1] == 10
        assert set(order[:3]) == {20, 21, 22}

    def test_prefetch_batch_read_is_concurrent(self):
        prefetcher = ScriptedPrefetcher({10: [20, 21, 22]})
        manager = make_ace(capacity=4, n_w=4, prefetch=True, prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        t0 = manager.device.clock.now_us
        manager.read_page(10)
        elapsed = manager.device.clock.now_us - t0
        # One write wave (200) + one concurrent read wave of 4 <= k_r (100).
        assert elapsed == pytest.approx(300.0)

    def test_prefetch_hit_counted(self):
        prefetcher = ScriptedPrefetcher({10: [20]})
        manager = make_ace(capacity=4, n_w=4, prefetch=True, prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        assert manager.stats.misses == 5
        manager.read_page(20)  # hit on a prefetched page
        assert manager.stats.misses == 5
        assert manager.stats.prefetch_hits == 1

    def test_unused_prefetch_counted_on_eviction(self):
        prefetcher = ScriptedPrefetcher({10: [20]})
        manager = make_ace(capacity=4, n_w=4, prefetch=True, prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        # Page 20 was prefetched cold; evict it by pressure without use.
        for page in range(30, 40):
            manager.read_page(page)
        assert manager.stats.prefetch_unused >= 1

    def test_dirty_coeviction_candidates_are_flushed(self):
        """Eviction set members that are dirty join the same write batch."""
        prefetcher = ScriptedPrefetcher({10: [20, 21, 22]})
        manager = make_ace(capacity=4, n_w=2, n_e=4, prefetch=True,
                           prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        # n_w=2 would clean {0,1}, but eviction of {0,1,2,3} forces 2 and 3
        # into the batch too; nothing dirty may be dropped.
        assert manager.device.stats.writes == 4
        assert manager.device.stats.write_batches == 1

    def test_no_suggestions_still_makes_progress(self):
        prefetcher = ScriptedPrefetcher({})
        manager = make_ace(capacity=4, n_w=4, prefetch=True, prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        assert manager.contains(10)
        assert manager.pool.free_count == 3  # evicted 4, refilled 1

    def test_resident_suggestions_filtered(self):
        prefetcher = ScriptedPrefetcher({10: [1, 20]})
        manager = make_ace(capacity=4, n_w=4, prefetch=True, prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        # Page 1 was evicted before the fetch, so it is actually fetchable;
        # re-run with a still-resident suggestion instead.
        manager2 = make_ace(capacity=4, n_w=4, prefetch=True,
                            prefetcher=ScriptedPrefetcher({10: [11]}))
        manager2.read_page(11)   # 11 resident
        manager2.read_page(10)   # suggestion 11 must be filtered
        assert manager2.stats.prefetch_issued == 0

    def test_out_of_range_suggestions_filtered(self):
        prefetcher = ScriptedPrefetcher({10: [9999, -3]})
        manager = make_ace(capacity=4, num_pages=256, n_w=4, prefetch=True,
                           prefetcher=prefetcher)
        fill_dirty(manager, [0, 1, 2, 3])
        manager.read_page(10)
        assert manager.stats.prefetch_issued == 0

    def test_free_slot_prefetch_bounded_by_ne(self):
        prefetcher = ScriptedPrefetcher({10: [20, 21, 22, 23, 24, 25]})
        manager = make_ace(capacity=16, n_w=4, n_e=4, prefetch=True,
                           prefetcher=prefetcher)
        manager.read_page(10)  # plenty of free slots, but limit is n_e - 1
        assert manager.stats.prefetch_issued == 3


class TestMissTraining:
    def test_prefetcher_sees_misses_and_accesses(self):
        prefetcher = ScriptedPrefetcher({})
        manager = make_ace(capacity=4, prefetch=True, prefetcher=prefetcher)
        manager.read_page(0)
        manager.read_page(0)
        manager.read_page(1)
        assert prefetcher.misses == [0, 1]
        assert prefetcher.observed == [0, 0, 1]


class TestConfig:
    def test_defaults_to_device_kw(self):
        from repro.storage.device import SimulatedSSD
        from repro.policies.lru import LRUPolicy
        from repro.core.ace import ACEBufferPoolManager

        device = SimulatedSSD(PCIE_SSD, num_pages=64)
        device.format_pages(range(64))
        manager = ACEBufferPoolManager(8, LRUPolicy(), device)
        assert manager.config.n_w == 8
        assert manager.config.n_e == 8
        assert not manager.prefetching_enabled

    def test_for_device_overrides(self):
        config = ACEConfig.for_device(PCIE_SSD, n_w=4)
        assert config.n_w == 4
        assert config.n_e == 4
        config = ACEConfig.for_device(PCIE_SSD, n_w=4, n_e=2)
        assert config.n_e == 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ACEConfig(n_w=0, n_e=1)
        with pytest.raises(ValueError):
            ACEConfig(n_w=1, n_e=0)

    def test_variant_labels(self):
        assert make_ace().variant == "ace"
        assert make_ace(prefetch=True).variant == "ace+pf"

    def test_default_prefetcher_is_composite(self):
        manager = make_ace(prefetch=True)
        from repro.prefetch.composite import CompositePrefetcher
        assert isinstance(manager.reader.prefetcher, CompositePrefetcher)


class TestFlushAll:
    def test_checkpoint_batches_by_nw(self):
        manager = make_ace(capacity=10, n_w=4)
        fill_dirty(manager, range(10))
        manager.flush_all()
        assert manager.dirty_pages() == []
        # 10 pages in batches of 4 -> 3 batches (4 + 4 + 2).
        assert manager.device.stats.write_batches == 3


class TestExhaustion:
    def test_all_pinned_raises(self):
        manager = make_ace(capacity=2)
        manager.read_page(0)
        manager.read_page(1)
        manager.pin(0)
        manager.pin(1)
        with pytest.raises(PoolExhaustedError):
            manager.read_page(2)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.booleans()),
            min_size=1,
            max_size=300,
        ),
        st.booleans(),
    )
    def test_functional_equivalence_with_baseline(self, requests, prefetch):
        """ACE returns the same data as the baseline for any request mix."""
        from repro.bufferpool.manager import BufferPoolManager
        from repro.policies.lru import LRUPolicy
        from repro.storage.device import SimulatedSSD
        from tests.core.conftest import ACE_TEST_PROFILE

        device = SimulatedSSD(ACE_TEST_PROFILE, num_pages=64)
        device.format_pages(range(64))
        baseline = BufferPoolManager(6, LRUPolicy(), device)
        ace = make_ace(capacity=6, num_pages=64, prefetch=prefetch)
        for page, is_write in requests:
            expected = baseline.access(page, is_write)
            actual = ace.access(page, is_write)
            assert actual == expected
            assert ace.pool.used_count <= 6

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.booleans()),
            min_size=1,
            max_size=300,
        )
    )
    def test_no_dirty_page_ever_dropped(self, requests):
        """Durability: flushing at the end reconciles device and truth."""
        manager = make_ace(capacity=6, num_pages=64, n_w=4)
        versions: dict[int, int] = {}
        for page, is_write in requests:
            if is_write:
                versions[page] = manager.write_page(page)
            else:
                manager.read_page(page)
        manager.flush_all()
        for page, version in versions.items():
            assert manager.device._payloads[page] == version

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_ace_never_slower_than_baseline_on_mixed_churn(self, seed):
        import random

        from repro.bufferpool.manager import BufferPoolManager
        from repro.policies.lru import LRUPolicy
        from repro.storage.device import SimulatedSSD
        from tests.core.conftest import ACE_TEST_PROFILE

        rng = random.Random(seed)
        requests = [(rng.randrange(64), rng.random() < 0.5) for _ in range(400)]

        device = SimulatedSSD(ACE_TEST_PROFILE, num_pages=64)
        device.format_pages(range(64))
        baseline = BufferPoolManager(6, LRUPolicy(), device)
        for page, is_write in requests:
            baseline.access(page, is_write)

        ace = make_ace(capacity=6, num_pages=64, n_w=4)
        for page, is_write in requests:
            ace.access(page, is_write)

        assert ace.device.clock.now_us <= baseline.device.clock.now_us + 1e-6
