"""Tests for the adaptive (self-tuning) ACE manager."""

import random

import pytest

from repro.core.adaptive import AdaptiveACEBufferPoolManager
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import emulated_profile


def make_adaptive(
    k_w=8,
    alpha=3.0,
    capacity=64,
    num_pages=512,
    ladder=(1, 2, 4, 8, 16),
    explore_pages=32,
    exploit_pages=512,
):
    profile = emulated_profile(alpha=alpha, k_w=k_w).with_(
        submit_overhead_us=0.5, queue_overhead_us=0.0,
        queue_overhead_write_us=0.2,
    )
    device = SimulatedSSD(profile, num_pages=num_pages)
    device.format_pages(range(num_pages))
    return AdaptiveACEBufferPoolManager(
        capacity, LRUPolicy(), device,
        ladder=ladder, explore_pages=explore_pages,
        exploit_pages=exploit_pages,
    )


def churn(manager, ops=6000, num_pages=512, write_fraction=0.8, seed=1):
    rng = random.Random(seed)
    for _ in range(ops):
        manager.access(rng.randrange(num_pages), rng.random() < write_fraction)


class TestConstruction:
    def test_starts_with_smallest_candidate(self):
        manager = make_adaptive()
        assert manager.current_n_w == 1
        assert manager.tuned_n_w is None  # still exploring

    def test_ladder_capped_by_capacity(self):
        manager = make_adaptive(capacity=4, ladder=(1, 2, 4, 8, 64))
        assert manager.ladder == (1, 2, 4)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            make_adaptive(capacity=4, ladder=(8, 16))

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            make_adaptive(explore_pages=0)


class TestConvergence:
    def test_converges_to_device_kw(self):
        """The tuner recovers n_w = k_w without being told k_w."""
        manager = make_adaptive(k_w=8)
        churn(manager)
        assert manager.tuned_n_w == 8

    def test_converges_for_small_kw(self):
        manager = make_adaptive(k_w=2)
        churn(manager)
        assert manager.tuned_n_w == 2

    def test_measured_costs_ordered_sensibly(self):
        manager = make_adaptive(k_w=8)
        churn(manager)
        costs = manager.measured_costs()
        # One full wave (8) is cheaper per page than single writes and
        # cheaper than oversubmitting (16).
        assert costs[8] < costs[1]
        assert costs[8] < costs[16]

    def test_reprobes_after_exploit_budget(self):
        manager = make_adaptive(exploit_pages=64)
        churn(manager, ops=12_000)
        assert manager.reprobes >= 1
        # After re-probing it still lands on the right answer.
        if manager.tuned_n_w is not None:
            assert manager.tuned_n_w == 8

    def test_evictor_follows_writer(self):
        manager = make_adaptive()
        churn(manager, ops=4000)
        assert manager.evictor.n_e == manager.writer.n_w


class TestBehaviour:
    def test_adaptive_beats_static_worst_choice(self):
        """Adaptive ACE outperforms a deliberately bad static n_w."""
        from repro.core.ace import ACEBufferPoolManager
        from repro.core.config import ACEConfig

        profile = emulated_profile(alpha=3.0, k_w=8).with_(
            submit_overhead_us=0.5, queue_overhead_write_us=0.2,
        )

        def build_static(n_w):
            device = SimulatedSSD(profile, num_pages=512)
            device.format_pages(range(512))
            return ACEBufferPoolManager(
                64, LRUPolicy(), device, config=ACEConfig(n_w=n_w, n_e=n_w)
            )

        adaptive = make_adaptive(k_w=8)
        static_bad = build_static(1)
        churn(adaptive, ops=8000, seed=2)
        churn(static_bad, ops=8000, seed=2)
        assert adaptive.device.clock.now_us < static_bad.device.clock.now_us

    def test_adaptive_close_to_static_optimum(self):
        from repro.core.ace import ACEBufferPoolManager
        from repro.core.config import ACEConfig

        profile = emulated_profile(alpha=3.0, k_w=8).with_(
            submit_overhead_us=0.5, queue_overhead_write_us=0.2,
        )
        device = SimulatedSSD(profile, num_pages=512)
        device.format_pages(range(512))
        static_best = ACEBufferPoolManager(
            64, LRUPolicy(), device, config=ACEConfig(n_w=8, n_e=8)
        )
        adaptive = make_adaptive(k_w=8)
        churn(adaptive, ops=8000, seed=3)
        churn(static_best, ops=8000, seed=3)
        # Exploration costs something, but the overhead stays small.
        assert adaptive.device.clock.now_us < static_best.device.clock.now_us * 1.25

    def test_durability_preserved_under_adaptation(self):
        manager = make_adaptive()
        versions = {}
        rng = random.Random(7)
        for _ in range(3000):
            page = rng.randrange(512)
            versions[page] = manager.write_page(page)
        manager.flush_all()
        for page, version in versions.items():
            assert manager.device._payloads[page] == version
