"""Shared fixtures for ACE tests."""

from __future__ import annotations

from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.policies.lru import LRUPolicy
from repro.prefetch.base import Prefetcher
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile

#: Overhead-free profile with k_w = 4 so batch effects are easy to assert.
ACE_TEST_PROFILE = DeviceProfile(
    name="ace-test", alpha=2.0, k_r=8, k_w=4, read_latency_us=100.0,
    submit_overhead_us=0.0, queue_overhead_us=0.0,
)


class ScriptedPrefetcher(Prefetcher):
    """Suggests a fixed successor mapping — fully controllable in tests."""

    name = "scripted"

    def __init__(self, suggestions: dict[int, list[int]] | None = None) -> None:
        self.suggestions = suggestions if suggestions is not None else {}
        self.observed: list[int] = []
        self.misses: list[int] = []

    def observe(self, page: int) -> None:
        self.observed.append(page)

    def on_miss(self, page: int) -> None:
        self.misses.append(page)

    def suggest(self, page: int, n: int) -> list[int]:
        return list(self.suggestions.get(page, []))[:n]


def make_ace(
    capacity=8,
    num_pages=256,
    n_w=4,
    n_e=None,
    prefetch=False,
    prefetcher=None,
    policy=None,
    profile=ACE_TEST_PROFILE,
):
    device = SimulatedSSD(profile, num_pages=num_pages)
    device.format_pages(range(num_pages))
    config = ACEConfig(
        n_w=n_w,
        n_e=n_e if n_e is not None else n_w,
        prefetch_enabled=prefetch,
    )
    return ACEBufferPoolManager(
        capacity,
        policy if policy is not None else LRUPolicy(),
        device,
        config=config,
        prefetcher=prefetcher,
    )
