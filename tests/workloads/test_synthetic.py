"""Tests for the MS/WIS/RIS/MU synthetic workload generators (Table II)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.synthetic import (
    MS,
    MU,
    PAPER_WORKLOADS,
    RIS,
    WIS,
    WorkloadSpec,
    generate_trace,
    rw_ratio_spec,
)


class TestSpecs:
    def test_paper_workload_definitions(self):
        assert MS.read_fraction == 0.5 and MS.locality == (0.9, 0.1)
        assert WIS.read_fraction == 0.1 and WIS.locality == (0.9, 0.1)
        assert RIS.read_fraction == 0.9 and RIS.locality == (0.9, 0.1)
        assert MU.read_fraction == 0.5 and MU.locality is None
        assert PAPER_WORKLOADS == (MS, WIS, RIS, MU)

    def test_invalid_read_fraction(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", 1.5, None)

    def test_invalid_locality(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", 0.5, (1.0, 0.1))

    def test_rw_ratio_spec(self):
        spec = rw_ratio_spec(0.3)
        assert spec.read_fraction == 0.3
        assert spec.locality == (0.9, 0.1)
        assert spec.name == "30/70"


class TestGeneration:
    def test_deterministic_by_seed(self):
        a = generate_trace(MS, 1000, 5000, seed=7)
        b = generate_trace(MS, 1000, 5000, seed=7)
        assert a.pages == b.pages
        assert a.writes == b.writes

    def test_different_seeds_differ(self):
        a = generate_trace(MS, 1000, 5000, seed=7)
        b = generate_trace(MS, 1000, 5000, seed=8)
        assert a.pages != b.pages

    def test_read_fraction_approximate(self):
        for spec in PAPER_WORKLOADS:
            trace = generate_trace(spec, 1000, 20_000, seed=1)
            assert trace.read_fraction == pytest.approx(spec.read_fraction, abs=0.02)

    def test_skewed_locality(self):
        trace = generate_trace(MS, 2000, 30_000, seed=1)
        measured = trace.locality(hot_fraction=0.1, total_pages=2000)
        assert measured == pytest.approx(0.9, abs=0.03)

    def test_uniform_locality(self):
        trace = generate_trace(MU, 2000, 30_000, seed=1)
        measured = trace.locality(hot_fraction=0.1, total_pages=2000)
        assert measured < 0.2

    def test_pages_within_range(self):
        trace = generate_trace(WIS, 500, 5000, seed=3)
        low, high = trace.footprint()
        assert low >= 0
        assert high < 500

    def test_hot_set_is_random_subset_not_prefix(self):
        """Hot pages should not be the contiguous low page numbers."""
        trace = generate_trace(MS, 10_000, 20_000, seed=2)
        counts: dict[int, int] = {}
        for page in trace.pages:
            counts[page] = counts.get(page, 0) + 1
        hottest = sorted(counts, key=counts.__getitem__, reverse=True)[:100]
        assert max(hottest) > 2000  # hot pages scattered over the space

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(MS, 1, 100)
        with pytest.raises(ValueError):
            generate_trace(MS, 100, 0)

    @settings(max_examples=15, deadline=None)
    @given(
        read_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_any_ratio_generates_valid_trace(self, read_fraction, seed):
        spec = rw_ratio_spec(read_fraction)
        trace = generate_trace(spec, 300, 2000, seed=seed)
        assert len(trace) == 2000
        assert 0 <= min(trace.pages) and max(trace.pages) < 300
        assert trace.read_fraction == pytest.approx(read_fraction, abs=0.05)
