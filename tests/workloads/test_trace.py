"""Tests for trace structures."""

import numpy as np
import pytest

from repro.workloads.trace import PageRequest, Trace


class TestPageRequest:
    def test_str(self):
        assert str(PageRequest(3, True)) == "W(3)"
        assert str(PageRequest(3, False)) == "R(3)"


class TestTrace:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Trace([1, 2], [True])

    def test_len_and_indexing(self):
        trace = Trace([1, 2, 3], [True, False, True])
        assert len(trace) == 3
        assert trace[1] == PageRequest(2, False)

    def test_iteration_yields_requests(self):
        trace = Trace([1, 2], [True, False])
        assert list(trace) == [PageRequest(1, True), PageRequest(2, False)]

    def test_from_arrays(self):
        trace = Trace.from_arrays(
            np.array([5, 6]), np.array([True, False]), name="x"
        )
        assert trace.pages == [5, 6]
        assert trace.writes == [True, False]
        assert isinstance(trace.pages[0], int)

    def test_from_requests(self):
        trace = Trace.from_requests([PageRequest(1, True)], name="y")
        assert trace.pages == [1]

    def test_read_write_counts(self):
        trace = Trace([1, 2, 3, 4], [True, False, False, False])
        assert trace.num_writes == 1
        assert trace.num_reads == 3
        assert trace.read_fraction == pytest.approx(0.75)

    def test_unique_pages_and_footprint(self):
        trace = Trace([5, 5, 9, 2], [False] * 4)
        assert trace.unique_pages() == 3
        assert trace.footprint() == (2, 9)

    def test_empty_footprint_raises(self):
        with pytest.raises(ValueError):
            Trace([], []).footprint()

    def test_concat(self):
        a = Trace([1], [True], name="a")
        b = Trace([2], [False], name="b")
        combined = a.concat(b)
        assert combined.pages == [1, 2]
        assert combined.name == "a+b"

    def test_slice(self):
        trace = Trace([1, 2, 3], [True, False, True])
        part = trace.slice(1, 3)
        assert part.pages == [2, 3]

    def test_locality_measures_skew(self):
        pages = [0] * 90 + list(range(1, 11))
        trace = Trace(pages, [False] * 100)
        assert trace.locality(hot_fraction=0.1, total_pages=100) > 0.85

    def test_locality_uniform_is_low(self):
        trace = Trace(list(range(100)), [False] * 100)
        assert trace.locality(hot_fraction=0.1, total_pages=100) == pytest.approx(0.1)

    def test_locality_validation(self):
        with pytest.raises(ValueError):
            Trace([1], [True]).locality(hot_fraction=0.0)


class TestClientIds:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace([1, 2], [True, False], client_ids=[0])

    def test_defaults_to_none(self):
        assert Trace([1], [True]).client_ids is None

    def test_slice_carries_client_ids(self):
        trace = Trace([1, 2, 3], [True, False, True], client_ids=[0, 1, 2])
        part = trace.slice(1, 3)
        assert part.client_ids == [1, 2]

    def test_slice_without_client_ids_stays_none(self):
        assert Trace([1, 2], [True, False]).slice(0, 1).client_ids is None

    def test_concat_fills_missing_side_with_client_zero(self):
        tagged = Trace([1, 2], [True, False], client_ids=[3, 4])
        plain = Trace([5], [False])
        assert tagged.concat(plain).client_ids == [3, 4, 0]
        assert plain.concat(tagged).client_ids == [0, 3, 4]

    def test_concat_of_untagged_traces_stays_none(self):
        a = Trace([1], [True])
        b = Trace([2], [False])
        assert a.concat(b).client_ids is None
