"""Tests for trace persistence."""

import pytest

from repro.workloads.synthetic import MS, generate_trace
from repro.workloads.trace import Trace
from repro.workloads.traceio import load_trace, save_trace


@pytest.fixture
def trace():
    return Trace([5, 2, 9, 2], [True, False, True, False], name="small")


class TestNpzRoundTrip:
    def test_round_trip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.pages == trace.pages
        assert loaded.writes == trace.writes
        assert loaded.name == "small"

    def test_large_generated_trace(self, tmp_path):
        trace = generate_trace(MS, 2000, 10_000, seed=4)
        loaded = load_trace(save_trace(trace, tmp_path / "ms.npz"))
        assert loaded.pages == trace.pages
        assert loaded.writes == trace.writes

    def test_name_override(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.npz")
        assert load_trace(path, name="renamed").name == "renamed"


class TestCsvRoundTrip:
    def test_round_trip(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.csv")
        loaded = load_trace(path)
        assert loaded.pages == trace.pages
        assert loaded.writes == trace.writes
        assert loaded.name == "t"  # csv stores no name; stem used

    def test_header_written(self, trace, tmp_path):
        path = save_trace(trace, tmp_path / "t.csv")
        assert path.read_text().splitlines()[0] == "page,is_write"

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,0\n")
        with pytest.raises(ValueError, match="header"):
            load_trace(path)


class TestErrors:
    def test_unknown_format_save(self, trace, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            save_trace(trace, tmp_path / "t.parquet")

    def test_unknown_format_load(self, tmp_path):
        (tmp_path / "t.bin").write_bytes(b"x")
        with pytest.raises(ValueError, match="unsupported"):
            load_trace(tmp_path / "t.bin")

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.npz")
