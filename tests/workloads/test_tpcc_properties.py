"""Property-based tests over the TPC-C substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.tpcc.driver import TPCCWorkload
from repro.workloads.tpcc.schema import DISTRICTS_PER_WAREHOUSE, TPCCDatabase
from repro.workloads.tpcc.transactions import TransactionType


class TestSchemaProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        warehouses=st.integers(1, 6),
        row_scale=st.floats(min_value=0.01, max_value=0.3),
    )
    def test_every_mapping_is_in_its_relation(self, warehouses, row_scale):
        db = TPCCDatabase(warehouses=warehouses, row_scale=row_scale, seed=1)
        rng = random.Random(2)
        for _ in range(50):
            w = rng.randrange(warehouses)
            d = rng.randrange(DISTRICTS_PER_WAREHOUSE)
            checks = [
                (db.warehouse, db.warehouse_page(w)),
                (db.district, db.district_page(w, d)),
                (db.customer, db.customer_page(
                    w, d, rng.randrange(db.customers_per_district))),
                (db.stock, db.stock_page(w, rng.randrange(db.num_items))),
                (db.item, db.item_page(rng.randrange(db.num_items))),
            ]
            for relation, page in checks:
                assert relation.base_page <= page < relation.end_page

    @settings(max_examples=10, deadline=None)
    @given(warehouses=st.integers(1, 4))
    def test_order_rings_almost_disjoint_across_districts(self, warehouses):
        """Districts own disjoint order rows; since rows are packed into
        pages without district alignment, adjacent districts may share at
        most the single boundary page (as a real heap would)."""
        db = TPCCDatabase(warehouses=warehouses, row_scale=0.02, seed=3)
        pages_per_district: dict[tuple[int, int], set[int]] = {}
        for w in range(warehouses):
            for d in range(DISTRICTS_PER_WAREHOUSE):
                pages = set()
                for seq in range(db.orders_per_district):
                    pages.add(db.order_page(w, d, seq))
                pages_per_district[(w, d)] = pages
        keys = list(pages_per_district)
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                overlap = pages_per_district[a] & pages_per_district[b]
                assert len(overlap) <= 1, (a, b, overlap)


class TestTransactionProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_all_transaction_pages_in_database(self, seed):
        workload = TPCCWorkload(warehouses=2, row_scale=0.03, seed=seed)
        for _, requests in workload.transaction_stream(60):
            for request in requests:
                assert 0 <= request.page < workload.total_pages

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_read_only_transactions_never_write(self, seed):
        workload = TPCCWorkload(warehouses=2, row_scale=0.03, seed=seed)
        for kind in (TransactionType.ORDER_STATUS, TransactionType.STOCK_LEVEL):
            for _, requests in workload.transaction_stream(15, only=kind):
                assert all(not r.is_write for r in requests), kind

    def test_stream_deterministic_by_seed(self):
        def flatten(seed):
            workload = TPCCWorkload(warehouses=2, row_scale=0.03, seed=seed)
            return [
                (kind, tuple((r.page, r.is_write) for r in requests))
                for kind, requests in workload.transaction_stream(100)
            ]

        assert flatten(9) == flatten(9)
        assert flatten(9) != flatten(10)

    def test_delivery_exhausts_then_emits_nothing(self):
        workload = TPCCWorkload(
            warehouses=1, row_scale=0.02, seed=4,
            initial_orders_per_district=1,
        )
        first = workload.generator.delivery()
        assert first  # consumes the single pending order per district
        second = workload.generator.delivery()
        assert second == []  # queue empty
