"""Tests for the TPC-C schema, transactions, and driver."""

import pytest

from repro.workloads.tpcc.driver import TPCCWorkload
from repro.workloads.tpcc.schema import DISTRICTS_PER_WAREHOUSE, TPCCDatabase, nurand
from repro.workloads.tpcc.transactions import (
    STANDARD_MIX,
    TPCCTransactionGenerator,
    TransactionType,
)


def make_db(warehouses=2, row_scale=0.05):
    return TPCCDatabase(warehouses=warehouses, row_scale=row_scale, seed=1)


class TestSchema:
    def test_nine_tables(self):
        db = make_db()
        names = {relation.name for relation in db.database.relations()}
        assert names == {
            "warehouse", "district", "customer", "stock", "item",
            "orders", "new_order", "order_line", "history",
        }

    def test_relative_footprints(self):
        """Stock and order-line dominate; warehouse/district are tiny."""
        db = make_db(warehouses=4, row_scale=0.1)
        assert db.order_line.num_pages > db.customer.num_pages
        assert db.stock.num_pages > db.customer.num_pages
        assert db.warehouse.num_pages <= 2
        assert db.district.num_pages <= 8

    def test_page_mapping_disjoint(self):
        db = make_db()
        seen = set()
        for relation in db.database.relations():
            pages = set(range(relation.base_page, relation.end_page))
            assert not pages & seen
            seen |= pages

    def test_mapping_bounds_checked(self):
        db = make_db(warehouses=2)
        with pytest.raises(IndexError):
            db.warehouse_page(2)
        with pytest.raises(IndexError):
            db.district_page(0, 10)
        with pytest.raises(IndexError):
            db.customer_page(0, 0, db.customers_per_district)
        with pytest.raises(IndexError):
            db.item_page(db.num_items)

    def test_stock_page_distinct_per_warehouse(self):
        db = make_db(warehouses=2)
        assert db.stock_page(0, 5) != db.stock_page(1, 5)

    def test_order_sequencing(self):
        db = make_db()
        assert db.latest_order(0, 0) is None
        first = db.allocate_order(0, 0)
        second = db.allocate_order(0, 0)
        assert second == first + 1
        assert db.latest_order(0, 0) == second
        assert db.pop_oldest_new_order(0, 0) == first
        assert db.pop_oldest_new_order(0, 0) == second
        assert db.pop_oldest_new_order(0, 0) is None

    def test_recent_orders(self):
        db = make_db()
        for _ in range(5):
            db.allocate_order(0, 1)
        assert db.recent_orders(0, 1, 3) == [2, 3, 4]
        assert db.recent_orders(0, 1, 10) == [0, 1, 2, 3, 4]

    def test_order_line_pages_contiguous(self):
        db = make_db()
        pages = db.order_line_pages(0, 0, 0, 10)
        assert pages == sorted(pages)
        assert len(pages) <= 10

    def test_row_scale_validation(self):
        with pytest.raises(ValueError):
            TPCCDatabase(warehouses=1, row_scale=0.0)
        with pytest.raises(ValueError):
            TPCCDatabase(warehouses=0)


class TestNURand:
    def test_range(self):
        import random
        rng = random.Random(1)
        for _ in range(1000):
            value = nurand(rng, 1023, 0, 2999, c=77)
            assert 0 <= value <= 2999

    def test_non_uniform(self):
        """NURand concentrates mass (it is the OR of two uniforms)."""
        import random
        rng = random.Random(2)
        values = [nurand(rng, 255, 0, 999, c=0) for _ in range(20_000)]
        counts: dict[int, int] = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        top_decile = sorted(counts.values(), reverse=True)[: len(counts) // 10]
        assert sum(top_decile) / len(values) > 0.15


class TestTransactions:
    def make_generator(self):
        db = make_db(warehouses=2)
        for w in range(2):
            for d in range(DISTRICTS_PER_WAREHOUSE):
                for _ in range(5):
                    db.allocate_order(w, d)
        return db, TPCCTransactionGenerator(db, seed=3)

    def test_new_order_shape(self):
        db, generator = self.make_generator()
        requests = generator.new_order()
        writes = [r for r in requests if r.is_write]
        reads = [r for r in requests if not r.is_write]
        assert len(writes) >= 5  # district + stocks + order + new_order + lines
        assert len(reads) >= 8   # warehouse, district, customer, items, stocks

    def test_new_order_pages_valid(self):
        db, generator = self.make_generator()
        for _ in range(50):
            for request in generator.new_order():
                assert 0 <= request.page < db.total_pages

    def test_new_order_aborts_about_one_percent(self):
        db, generator = self.make_generator()
        for _ in range(2000):
            generator.new_order()
        assert 2 <= generator.aborted_new_orders <= 60

    def test_payment_touches_warehouse_district_customer_history(self):
        db, generator = self.make_generator()
        requests = generator.payment()
        pages = {r.page for r in requests}
        assert any(
            db.warehouse.base_page <= p < db.warehouse.end_page for p in pages
        )
        assert any(
            db.history.base_page <= p < db.history.end_page for p in pages
        )
        assert requests[-1].is_write  # history insert

    def test_order_status_is_read_only(self):
        db, generator = self.make_generator()
        requests = generator.order_status()
        assert requests
        assert all(not r.is_write for r in requests)

    def test_stock_level_is_read_only(self):
        db, generator = self.make_generator()
        requests = generator.stock_level()
        assert requests
        assert all(not r.is_write for r in requests)

    def test_delivery_is_write_heavy(self):
        db, generator = self.make_generator()
        requests = generator.delivery()
        writes = sum(1 for r in requests if r.is_write)
        assert writes / len(requests) >= 0.4

    def test_delivery_consumes_new_orders(self):
        db, generator = self.make_generator()
        before = [db.pop_oldest_new_order(0, d) for d in range(1)]
        # popping moved district 0's pointer; delivery still processes rest
        requests = generator.delivery()
        assert requests  # some districts still had pending orders

    def test_generate_dispatch(self):
        db, generator = self.make_generator()
        for kind in TransactionType:
            requests = generator.generate(kind)
            assert isinstance(requests, list)


class TestDriver:
    def test_mix_frequencies(self):
        workload = TPCCWorkload(warehouses=2, row_scale=0.05, seed=4)
        counts = dict.fromkeys(TransactionType, 0)
        for kind, _ in workload.transaction_stream(4000):
            counts[kind] += 1
        assert counts[TransactionType.NEW_ORDER] / 4000 == pytest.approx(0.45, abs=0.03)
        assert counts[TransactionType.PAYMENT] / 4000 == pytest.approx(0.43, abs=0.03)
        assert counts[TransactionType.DELIVERY] / 4000 == pytest.approx(0.04, abs=0.02)

    def test_only_filter(self):
        workload = TPCCWorkload(warehouses=1, row_scale=0.05, seed=4)
        kinds = {
            kind
            for kind, _ in workload.transaction_stream(
                50, only=TransactionType.PAYMENT
            )
        }
        assert kinds == {TransactionType.PAYMENT}

    def test_trace_pages_in_range(self):
        workload = TPCCWorkload(warehouses=2, row_scale=0.05, seed=5)
        trace = workload.trace(200)
        low, high = trace.footprint()
        assert low >= 0
        assert high < workload.total_pages

    def test_mix_is_write_mixed(self):
        workload = TPCCWorkload(warehouses=2, row_scale=0.05, seed=6)
        trace = workload.trace(500)
        assert 0.15 < 1 - trace.read_fraction < 0.6

    def test_standard_mix_sums_to_one(self):
        assert sum(STANDARD_MIX.values()) == pytest.approx(1.0)

    def test_initial_orders_seeded(self):
        workload = TPCCWorkload(
            warehouses=1, row_scale=0.05, initial_orders_per_district=7
        )
        assert workload.db.latest_order(0, 0) == 6

    def test_negative_count_rejected(self):
        workload = TPCCWorkload(warehouses=1, row_scale=0.05)
        with pytest.raises(ValueError):
            list(workload.transaction_stream(-1))
