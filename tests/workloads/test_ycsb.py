"""Tests for the YCSB core workload generators."""

import numpy as np
import pytest

from repro.workloads.ycsb import (
    YCSB_WORKLOADS,
    YCSBConfig,
    generate_ycsb_trace,
    zipfian_ranks,
)


class TestConfig:
    def test_six_core_workloads(self):
        assert sorted(YCSB_WORKLOADS) == ["A", "B", "C", "D", "E", "F"]

    def test_mixes_sum_to_one(self):
        for config in YCSB_WORKLOADS.values():
            total = (
                config.read_fraction + config.update_fraction
                + config.insert_fraction + config.scan_fraction
                + config.rmw_fraction
            )
            assert total == pytest.approx(1.0), config.name

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            YCSBConfig("X", read_fraction=0.7, update_fraction=0.7)

    def test_invalid_distribution_rejected(self):
        with pytest.raises(ValueError):
            YCSBConfig("X", read_fraction=1.0, update_fraction=0.0,
                       distribution="gaussian")


class TestZipf:
    def test_ranks_in_range(self):
        rng = np.random.default_rng(1)
        ranks = zipfian_ranks(rng, 5000, 1000)
        assert ranks.min() >= 0
        assert ranks.max() < 1000

    def test_skew_towards_low_ranks(self):
        rng = np.random.default_rng(2)
        ranks = zipfian_ranks(rng, 20_000, 1000, theta=0.99)
        top_ten_share = np.mean(ranks < 10)
        assert top_ten_share > 0.15  # zipf(0.99): top 1% of keys ~20% of traffic

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            zipfian_ranks(rng, 10, 0)
        with pytest.raises(ValueError):
            zipfian_ranks(rng, 10, 10, theta=1.5)


class TestTraces:
    def test_deterministic(self):
        a = generate_ycsb_trace("A", 1000, 4000, seed=7)
        b = generate_ycsb_trace("A", 1000, 4000, seed=7)
        assert a.pages == b.pages and a.writes == b.writes

    def test_workload_a_mix(self):
        trace = generate_ycsb_trace("A", 1000, 10_000, seed=1)
        assert trace.read_fraction == pytest.approx(0.5, abs=0.02)

    def test_workload_c_read_only(self):
        trace = generate_ycsb_trace("C", 1000, 5000, seed=1)
        assert trace.num_writes == 0

    def test_workload_d_reads_concentrate_on_recent(self):
        trace = generate_ycsb_trace("D", 1000, 10_000, seed=1)
        # Latest distribution: reads cluster near the insertion frontier,
        # which starts at page 999 and wraps slowly.
        reads = [p for p, w in zip(trace.pages, trace.writes) if not w]
        near_frontier = sum(1 for p in reads if p > 700 or p < 300)
        assert near_frontier / len(reads) > 0.6

    def test_workload_e_scans_are_sequential(self):
        trace = generate_ycsb_trace("E", 1000, 2000, seed=1)
        sequential = sum(
            1 for a, b in zip(trace.pages, trace.pages[1:]) if b == (a + 1) % 1000
        )
        assert sequential / len(trace) > 0.5
        assert len(trace) > 2000  # scans expand the op count

    def test_workload_f_rmw_pairs(self):
        trace = generate_ycsb_trace("F", 1000, 4000, seed=1)
        rmw_pairs = sum(
            1
            for (p1, w1), (p2, w2) in zip(
                zip(trace.pages, trace.writes),
                zip(trace.pages[1:], trace.writes[1:]),
            )
            if p1 == p2 and not w1 and w2
        )
        assert rmw_pairs > 1500  # ~50% of 4000 ops are RMW pairs

    def test_inserts_advance_cursor(self):
        trace = generate_ycsb_trace("D", 1000, 5000, seed=2)
        inserts = [p for p, w in zip(trace.pages, trace.writes) if w]
        assert len(set(inserts)) > len(inserts) * 0.8  # mostly fresh pages

    def test_pages_in_range(self):
        for name in YCSB_WORKLOADS:
            trace = generate_ycsb_trace(name, 500, 2000, seed=3)
            low, high = trace.footprint()
            assert low >= 0 and high < 500, name

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown YCSB workload"):
            generate_ycsb_trace("Z", 100, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_ycsb_trace("A", 1, 100)

    def test_ace_gains_on_update_heavy_ycsb(self):
        """Integration: ACE accelerates YCSB-A (the update-heavy mix)."""
        from repro.bench.runner import StackConfig, run_config
        from repro.engine.metrics import speedup
        from repro.storage.profiles import PCIE_SSD

        trace = generate_ycsb_trace("A", 3000, 8000, seed=4)
        base = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="baseline",
                        num_pages=3000), trace,
        )
        ace = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="ace",
                        num_pages=3000), trace,
        )
        assert speedup(base, ace) > 1.2
