"""Tests for the pgbench (TPC-B-like) workload."""

import pytest

from repro.workloads.pgbench import PgbenchWorkload


class TestSchema:
    def test_cardinalities_scale(self):
        workload = PgbenchWorkload(scale=3)
        assert workload.num_accounts == 300_000
        assert workload.num_tellers == 30
        assert workload.num_branches == 3

    def test_relative_footprints(self):
        workload = PgbenchWorkload(scale=5)
        assert workload.accounts.num_pages > workload.tellers.num_pages
        assert workload.tellers.num_pages >= workload.branches.num_pages

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            PgbenchWorkload(scale=0)


class TestTransaction:
    def test_shape(self):
        workload = PgbenchWorkload(scale=1, seed=1)
        requests = workload.transaction()
        assert len(requests) == 5
        writes = [r for r in requests if r.is_write]
        assert len(writes) == 4  # account, teller, branch, history

    def test_account_reread_hits_same_page(self):
        workload = PgbenchWorkload(scale=1, seed=1)
        requests = workload.transaction()
        assert requests[0].page == requests[1].page
        assert requests[0].is_write and not requests[1].is_write

    def test_pages_within_database(self):
        workload = PgbenchWorkload(scale=2, seed=3)
        for requests in workload.transactions(200):
            for request in requests:
                assert 0 <= request.page < workload.total_pages

    def test_history_appends_sequential(self):
        workload = PgbenchWorkload(scale=1, seed=1)
        history_pages = [workload.transaction()[-1].page for _ in range(500)]
        # Appends fill a page before advancing: non-decreasing until wrap.
        deltas = [b - a for a, b in zip(history_pages, history_pages[1:])]
        assert all(d >= 0 for d in deltas if abs(d) < 100)

    def test_branch_pages_are_hot(self):
        """Tiny branch table concentrates writes — pgbench's natural skew."""
        workload = PgbenchWorkload(scale=1, seed=2)
        trace = workload.trace(500)
        branch_range = range(
            workload.branches.base_page, workload.branches.end_page
        )
        branch_hits = sum(1 for page in trace.pages if page in branch_range)
        assert branch_hits == 500  # one branch update per transaction

    def test_trace_flattening(self):
        workload = PgbenchWorkload(scale=1, seed=1)
        trace = workload.trace(10)
        assert len(trace) == 50
        assert trace.name == "pgbench-s1"

    def test_transactions_count_validation(self):
        workload = PgbenchWorkload(scale=1)
        with pytest.raises(ValueError):
            workload.transactions(-1)
