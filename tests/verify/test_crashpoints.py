"""The crash-point enumeration engine: schedule, hook device, and sweeps.

The engine's own guarantees are what these tests pin down — deterministic
boundary enumeration, precise tear semantics at the hook device, the
non-circular WAL ledger, and the end-to-end verdict that every enumerated
crash point recovers to exactly the committed state (including when
recovery itself is re-crashed).
"""

import pytest

from repro.bufferpool.wal import WalRecord, WalRecordKind
from repro.errors import PowerFailure
from repro.storage.device import SimulatedSSD
from repro.verify.crashpoints import (
    END_OF_RUN,
    CrashHookDevice,
    CrashPoint,
    CrashSchedule,
    _ledger_from_records,
    _spread,
    run_crashpoint_config,
    run_crashpoints,
)

from tests.bufferpool.conftest import TEST_PROFILE


def make_hooked(num_pages=32):
    schedule = CrashSchedule()
    base = SimulatedSSD(TEST_PROFILE, num_pages=num_pages)
    base.format_pages(range(num_pages))
    return CrashHookDevice(base, schedule), base, schedule


class TestCrashSchedule:
    def test_record_mode_enumerates_without_firing(self):
        schedule = CrashSchedule()
        assert schedule.on_boundary("data-write", 3) is None
        assert schedule.on_boundary("wal-flush", 2) is None
        assert schedule.boundaries == [("data-write", 3), ("wal-flush", 2)]
        assert schedule.boundary_count == 2
        assert schedule.fired is None

    def test_armed_mode_fires_at_exactly_one_ordinal(self):
        schedule = CrashSchedule()
        schedule.reset("armed", target=(1, 2))
        assert schedule.on_boundary("data-write", 4) is None
        assert schedule.on_boundary("data-write", 4) == 2
        assert schedule.fired == (1, "data-write")
        assert schedule.on_boundary("data-write", 4) is None

    def test_site_override_relabels_boundaries(self):
        schedule = CrashSchedule()
        schedule.reset("record", site_override="redo-write")
        schedule.on_boundary("data-write", 1)
        assert schedule.boundaries == [("redo-write", 1)]

    def test_reset_clears_recording(self):
        schedule = CrashSchedule()
        schedule.on_boundary("data-write", 1)
        schedule.reset("record")
        assert schedule.boundaries == []
        assert schedule.boundary_count == 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            CrashSchedule().reset("chaos")

    def test_wal_flush_hook_labels_checkpoints(self):
        schedule = CrashSchedule()
        update = WalRecord(1, WalRecordKind.UPDATE, page=3, payload=1)
        marker = WalRecord(2, WalRecordKind.CHECKPOINT)
        schedule.wal_flush_hook((update,))
        schedule.wal_flush_hook((update, marker))
        assert schedule.boundaries == [("wal-flush", 1), ("wal-checkpoint", 2)]


class TestCrashHookDevice:
    def test_delegates_reads_and_metadata(self):
        device, base, schedule = make_hooked()
        base.write_batch({3: 42})
        assert device.peek(3) == 42
        assert device.read_page(3) == 42
        assert device.num_pages == base.num_pages
        assert device.clock is base.clock
        assert device.stats is base.stats

    def test_unarmed_write_passes_through_and_records(self):
        device, base, schedule = make_hooked()
        device.write_batch({1: 10, 2: 20})
        device.write_page(3, 30)
        assert base.peek(1) == 10 and base.peek(3) == 30
        assert schedule.boundaries == [("data-write", 2), ("data-write", 1)]

    def test_armed_tear_lands_prefix_then_power_fails(self):
        device, base, schedule = make_hooked()
        schedule.reset("armed", target=(0, 1))
        with pytest.raises(PowerFailure) as exc_info:
            device.write_batch({1: 10, 2: 20, 3: 30})
        assert exc_info.value.site == "data-write"
        # dict order is insertion order: exactly the first item landed.
        assert base.peek(1) == 10
        assert base.peek(2) == 0
        assert base.peek(3) == 0

    def test_tear_at_zero_lands_nothing(self):
        device, base, schedule = make_hooked()
        schedule.reset("armed", target=(0, 0))
        with pytest.raises(PowerFailure):
            device.write_batch({1: 10})
        assert base.peek(1) == 0

    def test_empty_batch_is_not_a_boundary(self):
        device, base, schedule = make_hooked()
        device.write_batch({})
        assert schedule.boundary_count == 0


class TestHelpers:
    def test_spread_is_deterministic_and_bounded(self):
        assert _spread(5, 10) == [0, 1, 2, 3, 4]
        picked = _spread(100, 7)
        assert picked == _spread(100, 7)
        assert len(picked) <= 7
        assert picked[0] == 0 and picked[-1] == 99
        assert picked == sorted(set(picked))
        assert _spread(100, 1) == [0]

    def test_ledger_counts_versions_per_page(self):
        records = [
            WalRecord(1, WalRecordKind.UPDATE, page=3, payload=1),
            WalRecord(2, WalRecordKind.UPDATE, page=5, payload=1),
            WalRecord(3, WalRecordKind.CHECKPOINT),
            WalRecord(4, WalRecordKind.UPDATE, page=3, payload=2),
        ]
        ledger, error = _ledger_from_records(records)
        assert error is None
        assert ledger == {3: 2, 5: 1}

    def test_ledger_reports_diverging_payload(self):
        records = [
            WalRecord(1, WalRecordKind.UPDATE, page=3, payload=7),
        ]
        ledger, error = _ledger_from_records(records)
        assert error is not None
        assert "page 3" in error


class TestEngine:
    # Tiny but real sweeps: every enumerated point must recover to the
    # exact committed ledger, re-crashes included.

    def run_tiny(self, policy, variant, seed=7):
        return run_crashpoint_config(
            policy, variant, num_pages=96, ops=220, seed=seed,
            commit_every=16, max_points=10, max_redo_crashes=2,
            profile=TEST_PROFILE,
        )

    def test_baseline_sweep_is_zero_loss(self):
        report = self.run_tiny("lru", "baseline")
        assert report.ok, [o.point.label for o in report.failures]
        assert report.boundaries > 0
        assert report.points_tested > 0
        assert report.points_enumerated == report.points_tested + \
            report.points_skipped
        for outcome in report.outcomes:
            assert outcome.committed_updates >= 0
            assert outcome.lost_updates == 0
            assert outcome.phantom_pages == 0

    def test_ace_sweep_is_zero_loss(self):
        report = self.run_tiny("clock", "ace")
        assert report.ok, [o.point.label for o in report.failures]

    def test_end_of_run_point_always_present(self):
        report = self.run_tiny("lru", "baseline")
        sites = [o.point.site for o in report.outcomes]
        assert sites[-1] == END_OF_RUN

    def test_redo_crashes_actually_ran(self):
        report = self.run_tiny("lru", "baseline")
        assert report.redo_crashes_tested > 0
        for outcome in report.outcomes:
            assert outcome.redo_crashes_ok == outcome.redo_crashes_tested

    def test_sweep_is_deterministic(self):
        first = self.run_tiny("lru", "baseline")
        second = self.run_tiny("lru", "baseline")
        assert first == second

    def test_run_crashpoints_aggregates_cells(self):
        report = run_crashpoints(
            policies=("lru",), variants=("baseline", "ace"),
            num_pages=96, ops=160, seed=7, commit_every=16,
            max_points=6, max_redo_crashes=1, profile=TEST_PROFILE,
        )
        assert report.ok
        assert [c.label for c in report.configs] == [
            "lru/baseline", "lru/ace",
        ]
        assert report.points_tested == sum(
            c.points_tested for c in report.configs
        )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_crashpoint_config(
                "lru", "turbo", num_pages=64, ops=10,
                profile=TEST_PROFILE,
            )


class TestCrashPointLabels:
    def test_label_formats(self):
        assert CrashPoint(3, "wal-flush", 0).label == "#3@wal-flush"
        assert CrashPoint(3, "data-write", 2).label == "#3@data-write+2"


class TestCli:
    def test_cli_tiny_sweep_exits_zero(self, capsys):
        from repro.cli import main

        code = main([
            "crashpoints", "--policies", "lru", "--variants", "baseline",
            "--pages", "96", "--ops", "160", "--max-points", "6",
            "--max-redo-crashes", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "lru/baseline" in out
