"""Tests for NodeFault / NodeFaultPlan: validation, ordering, seeding."""

import pickle

import pytest

from repro.faults.nodes import NodeFault, NodeFaultPlan


class TestNodeFault:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            NodeFault(shard=0, node=0)
        with pytest.raises(ValueError):
            NodeFault(shard=0, node=0, crash_at_access=5, crash_at_us=9.0)

    def test_trigger_bounds(self):
        with pytest.raises(ValueError):
            NodeFault(shard=0, node=0, crash_at_access=-1)
        with pytest.raises(ValueError):
            NodeFault(shard=0, node=0, crash_at_us=-1.0)

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            NodeFault(shard=-1, node=0, crash_at_access=1)
        with pytest.raises(ValueError):
            NodeFault(shard=0, node=-1, crash_at_access=1)

    def test_permanent_excludes_rejoin(self):
        with pytest.raises(ValueError):
            NodeFault(
                shard=0, node=0, crash_at_access=1,
                permanent=True, rejoin_after_accesses=10,
            )

    def test_rejoin_must_be_positive(self):
        with pytest.raises(ValueError):
            NodeFault(
                shard=0, node=0, crash_at_access=1, rejoin_after_accesses=0
            )

    def test_describe_names_the_trigger(self):
        fault = NodeFault(shard=1, node=2, crash_at_access=7)
        assert "s1/n2" in fault.describe()
        assert "@access 7" in fault.describe()
        timed = NodeFault(shard=0, node=0, crash_at_us=50.0, permanent=True)
        assert "50us" in timed.describe()
        assert "permanent" in timed.describe()
        rejoiner = NodeFault(
            shard=0, node=1, crash_at_access=3, rejoin_after_accesses=9
        )
        assert "rejoin+9" in rejoiner.describe()


class TestNodeFaultPlan:
    def test_defaults_are_null(self):
        plan = NodeFaultPlan()
        assert plan.is_null
        assert plan.max_shard() == -1
        assert plan.max_node() == -1
        assert plan.describe() == "no node faults"

    def test_faults_for_filters_and_orders(self):
        plan = NodeFaultPlan(faults=(
            NodeFault(shard=1, node=1, crash_at_access=90),
            NodeFault(shard=1, node=0, crash_at_access=10),
            NodeFault(shard=0, node=0, crash_at_access=5),
            NodeFault(shard=1, node=2, crash_at_us=1.0),
        ))
        ordered = plan.faults_for(1)
        assert [fault.node for fault in ordered] == [0, 1, 2]
        assert plan.faults_for(2) == ()

    def test_extrema(self):
        plan = NodeFaultPlan(faults=(
            NodeFault(shard=3, node=1, crash_at_access=2),
            NodeFault(shard=0, node=2, crash_at_access=2),
        ))
        assert plan.max_shard() == 3
        assert plan.max_node() == 2

    def test_plan_is_picklable_and_hashable(self):
        plan = NodeFaultPlan(seed=4, faults=(
            NodeFault(shard=0, node=0, crash_at_access=3),
        ))
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(
            NodeFaultPlan(seed=4, faults=(
                NodeFault(shard=0, node=0, crash_at_access=3),
            ))
        )


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        a = NodeFaultPlan.random(4, 2, 1.0, 500, seed=9)
        b = NodeFaultPlan.random(4, 2, 1.0, 500, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = NodeFaultPlan.random(4, 2, 1.0, 500, seed=9)
        b = NodeFaultPlan.random(4, 2, 1.0, 500, seed=10)
        assert a != b

    def test_zero_rate_is_null(self):
        assert NodeFaultPlan.random(4, 2, 0.0, 500, seed=1).is_null

    def test_never_faults_a_whole_group(self):
        # With R replicas a group has R+1 nodes; at rate 1.0 every shard
        # still keeps at least one survivor, so replicated replay always
        # completes.
        for replicas in (1, 2, 3):
            plan = NodeFaultPlan.random(
                6, replicas, 1.0, 1000, seed=13
            )
            for shard in range(6):
                faulted = {f.node for f in plan.faults_for(shard)}
                assert len(faulted) <= replicas

    def test_crash_points_inside_trace(self):
        plan = NodeFaultPlan.random(3, 2, 1.0, 250, seed=5)
        for fault in plan.faults:
            assert 1 <= fault.crash_at_access < 250

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            NodeFaultPlan.random(2, 1, -0.5, 100)
        with pytest.raises(ValueError):
            NodeFaultPlan.random(2, 1, 1.5, 100)
