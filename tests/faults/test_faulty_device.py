"""Tests for FaultyDevice: fault application semantics and pass-through."""

import dataclasses

import pytest

from repro.errors import IOFaultError, TornWriteError
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultKind, FaultPlan

from tests.faults.conftest import make_base_device, scripted_device

TRANSIENT_READ = FaultKind.TRANSIENT_READ
TRANSIENT_WRITE = FaultKind.TRANSIENT_WRITE
PERMANENT = FaultKind.PERMANENT_MEDIA
SPIKE = FaultKind.LATENCY_SPIKE
TORN = FaultKind.TORN_BATCH


class TestNullPlanPassThrough:
    def test_rate_zero_wrapper_matches_bare_device(self):
        bare = make_base_device()
        wrapped = FaultyDevice(make_base_device(), FaultPlan())
        assert not wrapped._armed
        for device in (bare, wrapped):
            for page in range(16):
                device.write_page(page)
            device.read_batch(list(range(8)))
            device.write_batch({20: "x", 21: "y"})
            device.read_page(5)
        assert wrapped.clock.now_us == bare.clock.now_us
        assert dataclasses.asdict(wrapped.stats) == dataclasses.asdict(bare.stats)
        assert wrapped.peek(20) == bare.peek(20) == "x"
        assert wrapped.stats.faults_injected == 0

    def test_delegated_surface(self):
        base = make_base_device(num_pages=32)
        wrapped = FaultyDevice(base, FaultPlan())
        assert wrapped.profile is base.profile
        assert wrapped.model is base.model
        assert wrapped.clock is base.clock
        assert wrapped.num_pages == 32
        assert wrapped.stats is base.stats
        assert wrapped.contains(3)
        assert not wrapped.contains(99)


class TestReadFaults:
    def test_transient_read_charges_latency_and_raises(self):
        device = scripted_device([TRANSIENT_READ])
        before = device.clock.now_us
        with pytest.raises(IOFaultError) as excinfo:
            device.read_page(7)
        assert not excinfo.value.permanent
        assert excinfo.value.pages == (7,)
        # The failed read still occupied the device for a full read.
        assert device.clock.now_us - before == \
            pytest.approx(device.model.read_batch_us(1))
        assert device.stats.read_faults == 1
        # The very next read (script exhausted) succeeds.
        assert device.read_page(7) == 0

    def test_permanent_read_fault(self):
        device = scripted_device([(PERMANENT, (7,))])
        with pytest.raises(IOFaultError) as excinfo:
            device.read_page(7)
        assert excinfo.value.permanent

    def test_read_batch_faults_once_per_operation(self):
        device = scripted_device([TRANSIENT_READ])
        with pytest.raises(IOFaultError) as excinfo:
            device.read_batch([1, 2, 3])
        assert excinfo.value.pages == (1, 2, 3)
        assert device.injector.operations == 1

    def test_latency_spike_succeeds_after_delay(self):
        device = scripted_device([(SPIKE, 1_500.0)])
        base_cost = device.model.read_batch_us(1)
        before = device.clock.now_us
        assert device.read_page(4) == 0
        assert device.clock.now_us - before == \
            pytest.approx(base_cost + 1_500.0)
        assert device.stats.latency_spikes == 1
        assert device.stats.fault_delay_us == pytest.approx(1_500.0)
        # Spikes are slowdowns, not failures: excluded from faults_injected.
        assert device.stats.faults_injected == 0


class TestWriteFaults:
    def test_transient_write_lands_nothing(self):
        device = scripted_device([TRANSIENT_WRITE])
        before = device.clock.now_us
        with pytest.raises(IOFaultError) as excinfo:
            device.write_batch({1: "a", 2: "b"})
        assert not excinfo.value.permanent
        assert excinfo.value.acknowledged == ()
        assert device.clock.now_us - before == \
            pytest.approx(device.model.write_batch_us(2))
        assert device.peek(1) == 0 and device.peek(2) == 0
        assert device.stats.write_faults == 1

    def test_torn_batch_lands_the_prefix(self):
        device = scripted_device([(TORN, 2)])
        with pytest.raises(TornWriteError) as excinfo:
            device.write_batch({1: "a", 2: "b", 3: "c"})
        fault = excinfo.value
        assert fault.acknowledged == (1, 2)
        assert fault.pages == (3,)
        assert not fault.permanent
        assert device.peek(1) == "a" and device.peek(2) == "b"
        assert device.peek(3) == 0  # the tail never landed
        assert device.stats.torn_batches == 1

    def test_permanent_media_write_lands_healthy_pages(self):
        device = scripted_device([(PERMANENT, (2,))])
        with pytest.raises(IOFaultError) as excinfo:
            device.write_batch({1: "a", 2: "b", 3: "c"})
        fault = excinfo.value
        assert fault.permanent
        assert fault.pages == (2,)
        assert fault.acknowledged == (1, 3)
        assert device.peek(1) == "a" and device.peek(3) == "c"
        assert device.peek(2) == 0

    def test_write_page_routes_through_write_batch(self):
        device = scripted_device([TRANSIENT_WRITE])
        with pytest.raises(IOFaultError):
            device.write_page(5, payload="x")
        assert device.peek(5) == 0

    def test_duplicate_pages_rejected_when_armed(self):
        device = scripted_device([])
        with pytest.raises(ValueError, match="duplicate"):
            device.write_batch([4, 4])

    def test_iterable_batch_uses_stored_payloads(self):
        device = scripted_device([])
        device.write_page(6, payload="kept")
        device.write_batch([6])  # re-writes the stored payload
        assert device.peek(6) == "kept"


class TestOutOfBandOperations:
    def test_format_pages_is_never_injected(self):
        device = scripted_device([TRANSIENT_WRITE])
        device.format_pages(range(10))
        assert device.injector.operations == 0
        assert len(device.injector.script) == 1

    def test_faults_injected_counts_only_failures(self):
        device = scripted_device(
            [TRANSIENT_READ, None, TRANSIENT_WRITE, (TORN, 1), SPIKE]
        )
        with pytest.raises(IOFaultError):
            device.read_page(1)
        device.read_page(1)
        with pytest.raises(IOFaultError):
            device.write_batch({1: "a"})
        with pytest.raises(TornWriteError):
            device.write_batch({1: "a", 2: "b"})
        device.read_page(2)  # spike: succeeds
        assert device.stats.faults_injected == 3
        assert device.stats.latency_spikes == 1
