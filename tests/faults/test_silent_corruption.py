"""Silent-corruption fault kinds: bitrot, misdirected writes, lost writes.

Unlike every other fault kind, these three *never raise at injection
time* — the operation reports success and the damage is latent.  The
contract under test: with checksums on, 100% of injected corruptions are
detectable on a later read; with checksums off the corruption is truly
silent (that is the scrubber's department, tested in
``tests/bufferpool/test_repair.py``).
"""

import pytest

from repro.errors import CorruptPageError
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultKind, FaultPlan

from tests.bufferpool.conftest import TEST_PROFILE
from tests.faults.conftest import ARMED_PLAN, ScriptedInjector

from repro.storage.device import SimulatedSSD


def make_checksummed(num_pages=32):
    device = SimulatedSSD(
        TEST_PROFILE, num_pages=num_pages, checksums=True
    )
    device.format_pages(range(num_pages))
    return device


def scripted(base, script):
    faulty = FaultyDevice(base, ARMED_PLAN)
    faulty.injector = ScriptedInjector(ARMED_PLAN, script)
    return faulty


class TestPlanSurface:
    def test_silent_constructor_and_parse(self):
        plan = FaultPlan.silent(0.01, seed=5)
        assert plan.bitrot_rate == plan.misdirected_write_rate == \
            plan.lost_write_rate == 0.01
        assert not plan.is_null
        parsed = FaultPlan.parse("bitrot=0.1,misdirect=0.2,lost=0.3,seed=5")
        assert parsed.bitrot_rate == 0.1
        assert parsed.misdirected_write_rate == 0.2
        assert parsed.lost_write_rate == 0.3
        for field in ("bitrot", "misdirect", "lost"):
            assert field in parsed.describe()

    def test_zero_silent_rates_stay_null(self):
        assert FaultPlan.silent(0.0).is_null

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(bitrot_rate=-0.1)


class TestBitrot:
    def test_bitrot_decays_before_the_read(self):
        base = make_checksummed()
        base.write_batch({3: 42})
        faulty = scripted(base, [FaultKind.BITROT])
        with pytest.raises(CorruptPageError) as exc_info:
            faulty.read_page(3)
        assert exc_info.value.page == 3
        assert base.stats.silent_corruptions == 1
        assert base.stats.checksum_failures == 1

    def test_bitrot_without_checksums_reads_garbage(self):
        base = SimulatedSSD(TEST_PROFILE, num_pages=32)
        base.format_pages(range(32))
        base.write_batch({3: 42})
        faulty = scripted(base, [FaultKind.BITROT])
        payload = faulty.read_page(3)
        assert payload != 42  # wrong data, no error: truly silent
        assert base.stats.silent_corruptions == 1


class TestLostWrite:
    def test_lost_write_keeps_old_payload(self):
        base = make_checksummed()
        base.write_batch({4: 1})
        faulty = scripted(base, [FaultKind.LOST_WRITE])
        faulty.write_page(4, payload=2)  # acknowledged, never persisted
        assert base.peek(4) == 1
        assert base.stats.silent_corruptions == 1

    def test_lost_write_detected_on_read(self):
        base = make_checksummed()
        base.write_batch({4: 1})
        faulty = scripted(base, [FaultKind.LOST_WRITE, None])
        faulty.write_page(4, payload=2)
        with pytest.raises(CorruptPageError):
            faulty.read_page(4)

    def test_lost_write_charges_normal_write_accounting(self):
        base = make_checksummed()
        faulty = scripted(base, [FaultKind.LOST_WRITE])
        before = base.stats.writes
        faulty.write_page(4, payload=2)
        assert base.stats.writes == before + 1  # looked healthy throughout
        assert base.stats.write_faults == 0


class TestMisdirectedWrite:
    def test_misdirect_clobbers_the_neighbour(self):
        base = make_checksummed()
        base.write_batch({5: 10, 6: 20})
        faulty = scripted(base, [FaultKind.MISDIRECTED_WRITE])
        faulty.write_page(5, payload=11)
        assert base.peek(5) == 10  # victim kept its old payload
        assert base.peek(6) == 11  # neighbour got the victim's payload
        assert base.stats.silent_corruptions == 1

    def test_both_damaged_pages_detected_on_read(self):
        base = make_checksummed()
        base.write_batch({5: 10, 6: 20})
        faulty = scripted(base, [FaultKind.MISDIRECTED_WRITE, None, None])
        faulty.write_page(5, payload=11)
        with pytest.raises(CorruptPageError):
            faulty.read_page(5)
        with pytest.raises(CorruptPageError):
            faulty.read_page(6)


class TestFullDetection:
    def test_every_injected_corruption_is_detectable(self):
        # Distinct victim pages, one corruption each; a full device scan
        # must flag every damaged page — 100% detection, the acceptance
        # bar for the checksum layer.
        base = make_checksummed(num_pages=64)
        base.write_batch({page: 100 + page for page in range(64)})
        script = []
        damaged = set()
        faulty = FaultyDevice(base, ARMED_PLAN)
        for page, kind in (
            (10, FaultKind.BITROT),
            (20, FaultKind.LOST_WRITE),
            (30, FaultKind.MISDIRECTED_WRITE),
            (40, FaultKind.BITROT),
        ):
            faulty.injector = ScriptedInjector(ARMED_PLAN, [kind])
            if kind is FaultKind.BITROT:
                with pytest.raises(CorruptPageError):
                    faulty.read_page(page)
                damaged.add(page)
            else:
                faulty.write_page(page, payload=7)
                damaged.add(page)
                if kind is FaultKind.MISDIRECTED_WRITE:
                    damaged.add(page + 1)
        del script
        flagged = {
            page for page in range(64) if not base.verify_page(page)
        }
        assert flagged == damaged

    def test_seeded_rate_one_detects_on_every_read(self):
        # The real injector at bitrot rate 1.0: every read of a committed
        # page must surface CorruptPageError, never silent garbage.
        base = make_checksummed(num_pages=16)
        base.write_batch({page: page + 1 for page in range(16)})
        faulty = FaultyDevice(base, FaultPlan(bitrot_rate=1.0, seed=3))
        for page in range(16):
            with pytest.raises(CorruptPageError):
                faulty.read_page(page)
        assert base.stats.silent_corruptions == 16
        assert base.stats.checksum_failures == 16


class TestRngBackCompat:
    def test_silent_rates_do_not_disturb_existing_schedules(self):
        # A plan with silent rates at zero must draw the same RNG stream
        # as before the kinds existed: identical fault schedules.
        def run(plan):
            base = SimulatedSSD(TEST_PROFILE, num_pages=64)
            base.format_pages(range(64))
            faulty = FaultyDevice(base, plan)
            for page in range(60):
                try:
                    faulty.write_page(page, payload=1)
                except Exception:
                    pass
                try:
                    faulty.read_page(page)
                except Exception:
                    pass
            return [
                (e.index, e.op, e.kind, e.pages)
                for e in faulty.injector.events
            ]

        baseline = run(FaultPlan.uniform(0.05, seed=11))
        silent_zero = run(FaultPlan(
            read_error_rate=0.05, write_error_rate=0.05,
            torn_batch_rate=0.05, latency_spike_rate=0.05,
            bitrot_rate=0.0, misdirected_write_rate=0.0,
            lost_write_rate=0.0, seed=11,
        ))
        assert baseline == silent_zero
