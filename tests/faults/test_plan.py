"""Tests for FaultPlan / FaultInjector: validation, parsing, determinism."""

import pickle

import pytest

from repro.faults.plan import FaultInjector, FaultKind, FaultPlan


class TestFaultPlan:
    def test_defaults_are_null(self):
        plan = FaultPlan()
        assert plan.is_null
        assert plan.describe() == "no faults"

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(torn_batch_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(latency_spike_us=-1.0)

    def test_uniform_sets_every_rate(self):
        plan = FaultPlan.uniform(0.05, seed=3)
        assert plan.seed == 3
        assert plan.read_error_rate == 0.05
        assert plan.write_error_rate == 0.05
        assert plan.torn_batch_rate == 0.05
        assert plan.latency_spike_rate == 0.05
        assert not plan.is_null

    def test_media_pages_alone_arm_the_plan(self):
        assert not FaultPlan(media_error_pages=frozenset({4})).is_null

    def test_media_pages_coerced_to_frozenset(self):
        plan = FaultPlan(media_error_pages=[3, 4, 3])  # type: ignore[arg-type]
        assert plan.media_error_pages == frozenset({3, 4})

    def test_plan_is_picklable_and_hashable(self):
        plan = FaultPlan.uniform(0.01, seed=9)
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(FaultPlan.uniform(0.01, seed=9))


class TestParse:
    def test_blank_is_null(self):
        assert FaultPlan.parse("").is_null
        assert FaultPlan.parse("  ").is_null

    def test_zero_is_null_passthrough(self):
        assert FaultPlan.parse("0").is_null

    def test_bare_float_is_uniform(self):
        assert FaultPlan.parse("0.01") == FaultPlan.uniform(0.01)

    def test_key_value_spec(self):
        plan = FaultPlan.parse("read=0.01, torn=0.005, seed=7, spike_us=500")
        assert plan.read_error_rate == 0.01
        assert plan.write_error_rate == 0.0
        assert plan.torn_batch_rate == 0.005
        assert plan.latency_spike_us == 500.0
        assert plan.seed == 7

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown fault key"):
            FaultPlan.parse("reed=0.01")

    def test_describe_roundtrips_the_interesting_fields(self):
        plan = FaultPlan.parse("read=0.01,torn=0.005,seed=7")
        text = plan.describe()
        assert "read=0.01" in text
        assert "torn=0.005" in text
        assert "seed=7" in text


class TestInjectorDeterminism:
    def drive(self, injector: FaultInjector) -> None:
        for index in range(200):
            injector.on_read((index % 11,))
            injector.on_write(tuple(range(index % 5 + 1)))
            injector.on_read((index % 7, index % 13, index % 17))

    def test_same_plan_same_ops_gives_identical_schedule(self):
        plan = FaultPlan.uniform(0.2, seed=42)
        first, second = FaultInjector(plan), FaultInjector(plan)
        self.drive(first)
        self.drive(second)
        assert first.events == second.events
        assert first.operations == second.operations
        assert first.faults_injected > 0

    def test_different_seed_gives_different_schedule(self):
        first = FaultInjector(FaultPlan.uniform(0.2, seed=1))
        second = FaultInjector(FaultPlan.uniform(0.2, seed=2))
        self.drive(first)
        self.drive(second)
        assert first.events != second.events


class TestInjectorSemantics:
    def test_torn_batches_need_more_than_one_page(self):
        injector = FaultInjector(FaultPlan(torn_batch_rate=1.0))
        assert injector.on_write((5,)) is None
        event = injector.on_write((1, 2, 3, 4))
        assert event is not None
        assert event.kind is FaultKind.TORN_BATCH

    def test_torn_split_is_a_proper_prefix(self):
        injector = FaultInjector(FaultPlan(torn_batch_rate=1.0, seed=3))
        for _ in range(50):
            event = injector.on_write((10, 11, 12, 13))
            assert event.acknowledged and event.pages
            assert event.acknowledged + event.pages == (10, 11, 12, 13)

    def test_permanent_media_decided_without_rng(self):
        plan = FaultPlan(read_error_rate=0.5, media_error_pages=frozenset({9}))
        injector = FaultInjector(plan)
        state = injector.rng.getstate()
        event = injector.on_read((9, 10))
        assert event.kind is FaultKind.PERMANENT_MEDIA
        assert event.pages == (9,)
        assert injector.rng.getstate() == state

    def test_permanent_write_acknowledges_healthy_pages_in_order(self):
        injector = FaultInjector(FaultPlan(media_error_pages=frozenset({2})))
        event = injector.on_write((1, 2, 3))
        assert event.kind is FaultKind.PERMANENT_MEDIA
        assert event.pages == (2,)
        assert event.acknowledged == (1, 3)

    def test_null_plan_never_faults(self):
        injector = FaultInjector(FaultPlan())
        for index in range(100):
            assert injector.on_read((index,)) is None
            assert injector.on_write((index, index + 1)) is None
        assert injector.events == []
