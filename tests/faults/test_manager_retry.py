"""Tests for the buffer manager's retry and graceful-degradation paths."""

import pytest

from repro.bufferpool.background import Checkpointer
from repro.bufferpool.recovery import recover, simulate_crash
from repro.errors import IOFaultError, RetriesExhaustedError
from repro.faults.plan import FaultKind
from repro.faults.retry import RetryPolicy

from tests.faults.conftest import scripted_manager

TRANSIENT_READ = FaultKind.TRANSIENT_READ
TRANSIENT_WRITE = FaultKind.TRANSIENT_WRITE
PERMANENT = FaultKind.PERMANENT_MEDIA
TORN = FaultKind.TORN_BATCH


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_us=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_us=50.0, multiplier=2.0,
                             max_backoff_us=300.0)
        assert policy.backoff_for(1) == 50.0
        assert policy.backoff_for(2) == 100.0
        assert policy.backoff_for(3) == 200.0
        assert policy.backoff_for(4) == 300.0  # capped
        with pytest.raises(ValueError):
            policy.backoff_for(0)

    def test_should_retry(self):
        policy = RetryPolicy(max_attempts=3)
        transient = IOFaultError("read", (1,), "transient")
        permanent = IOFaultError("read", (1,), "dead", permanent=True)
        assert policy.should_retry(transient, 1)
        assert policy.should_retry(transient, 2)
        assert not policy.should_retry(transient, 3)
        assert not policy.should_retry(permanent, 1)


class TestReadRetry:
    def test_read_succeeds_after_transient_faults(self):
        manager, _ = scripted_manager([TRANSIENT_READ, TRANSIENT_READ])
        clock_before = manager.device.clock.now_us
        assert manager.read_page(3) == 0
        stats = manager.stats
        assert stats.io_faults == 2
        assert stats.io_retries == 2
        expected_backoff = (manager.retry.backoff_for(1)
                            + manager.retry.backoff_for(2))
        assert stats.retry_backoff_us == pytest.approx(expected_backoff)
        # Backoff is charged to the virtual clock, on top of the I/O costs.
        assert manager.device.clock.now_us - clock_before > expected_backoff

    def test_read_retries_exhausted(self):
        retry = RetryPolicy(max_attempts=2)
        manager, _ = scripted_manager([TRANSIENT_READ] * 5, retry=retry)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            manager.read_page(3)
        assert excinfo.value.attempts == 2
        assert manager.stats.io_faults == 2
        assert manager.stats.io_retries == 1
        assert not manager.contains(3)

    def test_permanent_read_fault_is_never_retried(self):
        manager, _ = scripted_manager([(PERMANENT, (3,))])
        with pytest.raises(IOFaultError) as excinfo:
            manager.read_page(3)
        assert excinfo.value.permanent
        assert manager.stats.io_faults == 1
        assert manager.stats.io_retries == 0


class TestWriteBackRetry:
    def make_dirty(self, manager, pages):
        for page in pages:
            manager.write_page(page)

    def test_torn_batch_prefix_clean_remainder_retried(self):
        manager, _ = scripted_manager([None, None, None, (TORN, 2)])
        self.make_dirty(manager, [1, 2, 3])
        written = manager._write_back([1, 2, 3])
        assert written == 3
        assert manager._dirty_set == set()
        stats = manager.stats
        assert stats.degraded_writebacks == 1
        assert stats.io_faults == 1
        assert stats.io_retries == 1
        assert stats.writebacks == 3

    def test_torn_batch_remainder_stays_dirty_when_budget_spent(self):
        retry = RetryPolicy(max_attempts=1)
        script = [None, None, None, (TORN, 1)]
        manager, _ = scripted_manager(script, retry=retry)
        self.make_dirty(manager, [1, 2, 3])
        # max_attempts=1 leaves no budget for fruitless retries: the torn
        # prefix lands, the remainder stays dirty for a later write-back.
        written = manager._write_back([1, 2, 3])
        assert written == 1
        assert manager._dirty_set == {2, 3}
        assert manager.stats.failed_writebacks == 2
        # The survivors are re-queued: the next write-back covers them.
        assert manager._write_back([2, 3]) == 2
        assert manager._dirty_set == set()

    def test_progress_resets_the_attempt_budget(self):
        retry = RetryPolicy(max_attempts=2)
        # Each torn write lands one more page; with a fixed budget of 2 the
        # repeated tears only succeed because progress resets the counter.
        script = [None] * 4 + [(TORN, 1), (TORN, 1), (TORN, 1)]
        manager, _ = scripted_manager(script, retry=retry)
        self.make_dirty(manager, [1, 2, 3, 4])
        assert manager._write_back([1, 2, 3, 4]) == 4
        assert manager.stats.degraded_writebacks == 3

    def test_permanent_write_fault_not_retried(self):
        manager, injector = scripted_manager([None, (PERMANENT, (5,))])
        self.make_dirty(manager, [5])
        assert manager._write_back([5]) == 0
        assert manager._dirty_set == {5}
        assert manager.stats.failed_writebacks == 1
        assert manager.stats.io_retries == 0
        assert injector.script == []  # no further device attempts


class TestDegradedEviction:
    def test_failed_victim_falls_back_to_clean_page(self):
        retry = RetryPolicy(max_attempts=1)
        # Ops: load 0 (miss read), load 1 (miss read), write-back of victim
        # 0 fails, fallback eviction of 1, read of 2.
        script = [None, None, TRANSIENT_WRITE]
        manager, _ = scripted_manager(script, capacity=2, retry=retry)
        manager.write_page(0)
        manager.read_page(1)
        manager.read_page(2)  # miss: LRU victim is dirty page 0
        assert manager.contains(0)  # still resident, still dirty
        assert 0 in manager._dirty_set
        assert not manager.contains(1)  # the clean fallback was evicted
        assert manager.contains(2)
        stats = manager.stats
        assert stats.degraded_evictions == 1
        assert stats.failed_writebacks == 1

    def test_no_clean_fallback_raises(self):
        retry = RetryPolicy(max_attempts=1)
        script = [None, TRANSIENT_WRITE]
        manager, _ = scripted_manager(script, capacity=1, retry=retry)
        manager.write_page(0)
        with pytest.raises(RetriesExhaustedError):
            manager.read_page(1)


class TestCheckpointWithheld:
    def test_flush_all_withholds_checkpoint_until_clean(self):
        retry = RetryPolicy(max_attempts=1)
        script = [None, TRANSIENT_WRITE]
        manager, _ = scripted_manager(script, retry=retry, with_wal=True)
        manager.write_page(0)
        wal = manager.wal
        checkpoint_before = wal.last_checkpoint_lsn
        manager.flush_all()  # the write-back fails; page 0 stays dirty
        assert manager._dirty_set == {0}
        assert wal.last_checkpoint_lsn == checkpoint_before
        manager.flush_all()  # script exhausted: succeeds
        assert manager._dirty_set == set()
        assert wal.last_checkpoint_lsn > checkpoint_before

    def test_checkpointer_counts_skipped_checkpoints(self):
        retry = RetryPolicy(max_attempts=1)
        script = [None, TRANSIENT_WRITE]
        manager, _ = scripted_manager(script, retry=retry, with_wal=True)
        manager.write_page(0)
        checkpointer = Checkpointer(manager, interval_us=1.0)
        checkpointer.checkpoint()
        assert checkpointer.checkpoints_skipped == 1
        checkpointer.checkpoint()
        assert checkpointer.checkpoints_skipped == 1
        assert manager._dirty_set == set()


class TestRecoveryRetry:
    def test_redo_retries_transient_faults(self):
        manager, injector = scripted_manager([None], with_wal=True)
        manager.write_page(9)
        manager.wal.flush()
        image = simulate_crash(manager)
        # The crashed device now throws one transient fault at the redo.
        injector.script.append(TRANSIENT_WRITE)
        report = recover(image)
        assert report.redo_applied == 1
        assert report.redo_retries == 1
        assert image.device.peek(9) == 1

    def test_redo_gives_up_loudly_when_retries_exhausted(self):
        manager, injector = scripted_manager([None], with_wal=True)
        manager.write_page(9)
        manager.wal.flush()
        image = simulate_crash(manager)
        injector.script.extend([TRANSIENT_WRITE] * 10)
        with pytest.raises(RetriesExhaustedError):
            recover(image, retry=RetryPolicy(max_attempts=2))
