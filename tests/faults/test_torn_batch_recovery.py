"""Satellite acceptance: a crash mid-ACE-batch (torn write-back) loses no
committed update once :func:`recover` replays the WAL."""

import pytest

from repro.bufferpool.recovery import recover, simulate_crash
from repro.bufferpool.wal import WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.policies.lru import LRUPolicy

from tests.faults.conftest import make_base_device

#: Every multi-page write batch tears — the harshest torn-write climate.
ALWAYS_TORN = FaultPlan(torn_batch_rate=1.0, seed=3)


def make_ace_stack(plan=ALWAYS_TORN, capacity=16, num_pages=128, retry=None):
    device = FaultyDevice(make_base_device(num_pages), plan)
    wal = WriteAheadLog(device.clock)
    manager = ACEBufferPoolManager(
        capacity, LRUPolicy(), device, wal=wal,
        config=ACEConfig(n_w=4, n_e=4), retry=retry,
    )
    return manager, wal


class TestTornBatchRecovery:
    def test_committed_updates_survive_crash_mid_torn_batches(self):
        manager, wal = make_ace_stack()
        rounds, pages = 3, 40
        for _ in range(rounds):
            for page in range(pages):
                manager.write_page(page)
        wal.flush()  # commit point: every update's record is now durable

        stats = manager.stats
        device_stats = manager.device.stats
        assert device_stats.torn_batches > 0  # batches actually tore
        assert stats.degraded_writebacks > 0

        image = simulate_crash(manager)
        assert image.lost_dirty_pages  # the crash really was mid-flight
        report = recover(image)

        assert report.redo_applied == rounds * pages
        assert report.redo_skipped == 0
        assert report.records_scanned >= report.redo_applied
        for page in range(pages):
            assert image.device.peek(page) == rounds, f"page {page} lost"

    def test_torn_remainders_left_dirty_are_covered_by_redo(self):
        # With a single-attempt budget the torn remainder *stays dirty*
        # (graceful degradation) — redo must still reconstruct it.
        manager, wal = make_ace_stack(retry=RetryPolicy(max_attempts=1))
        for page in range(24):
            manager.write_page(page)
        wal.flush()
        failed = manager.stats.failed_writebacks
        image = simulate_crash(manager)
        report = recover(image)
        assert report.redo_applied == 24
        for page in range(24):
            assert image.device.peek(page) == 1, f"page {page} lost"
        # The degraded path really ran: either remainders failed outright
        # or the crash caught them still dirty.
        assert failed > 0 or image.lost_dirty_pages

    def test_recovered_device_matches_a_fault_free_run(self):
        faulty, faulty_wal = make_ace_stack()
        clean, clean_wal = make_ace_stack(plan=FaultPlan())
        for manager, wal in ((faulty, faulty_wal), (clean, clean_wal)):
            for _ in range(2):
                for page in range(0, 48, 2):
                    manager.write_page(page)
            wal.flush()
        recover(simulate_crash(faulty))
        recover(simulate_crash(clean))
        for page in range(0, 48, 2):
            assert faulty.device.peek(page) == clean.device.peek(page) == 2
