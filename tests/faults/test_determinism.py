"""Acceptance: same seed + same FaultPlan ⇒ byte-identical fault schedule
and identical end-to-end RunMetrics."""

import dataclasses

import pytest

from repro.bench.runner import FAULTS_ENV_VAR, StackConfig, build_stack, run_config
from repro.errors import IOFaultError
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultPlan
from repro.workloads.synthetic import MU, generate_trace

from tests.bufferpool.conftest import TEST_PROFILE
from tests.faults.conftest import make_base_device

PLAN = FaultPlan.uniform(0.05, seed=11)


def drive_device(device: FaultyDevice) -> None:
    """A fixed op sequence mixing reads, writes, and batches."""
    for index in range(300):
        try:
            device.read_page(index % 23)
        except IOFaultError:
            pass
        try:
            device.write_batch({index % 17: index, (index % 17) + 40: index})
        except IOFaultError:
            pass


def fault_config(rate: float = 0.02, seed: int = 5) -> StackConfig:
    return StackConfig(
        profile=TEST_PROFILE,
        policy="lru",
        variant="ace",
        num_pages=400,
        fault_plan=FaultPlan.uniform(rate, seed=seed),
    )


class TestScheduleDeterminism:
    def test_same_plan_gives_byte_identical_events(self):
        first = FaultyDevice(make_base_device(), PLAN)
        second = FaultyDevice(make_base_device(), PLAN)
        drive_device(first)
        drive_device(second)
        assert first.injector.events == second.injector.events
        assert first.injector.faults_injected > 0
        assert first.clock.now_us == second.clock.now_us
        assert dataclasses.asdict(first.stats) == dataclasses.asdict(second.stats)

    def test_events_shift_with_the_seed(self):
        first = FaultyDevice(make_base_device(), PLAN)
        second = FaultyDevice(
            make_base_device(), dataclasses.replace(PLAN, seed=12)
        )
        drive_device(first)
        drive_device(second)
        assert first.injector.events != second.injector.events


class TestEndToEndDeterminism:
    def test_identical_run_metrics(self):
        trace = generate_trace(MU, 400, 2_000, seed=5)
        first = run_config(fault_config(), trace)
        second = run_config(fault_config(), trace)
        assert first == second
        assert first.buffer.io_faults > 0  # the plan actually fired

    def test_metrics_differ_across_fault_seeds(self):
        trace = generate_trace(MU, 400, 2_000, seed=5)
        first = run_config(fault_config(seed=5), trace)
        second = run_config(fault_config(seed=6), trace)
        assert first.buffer.io_faults != second.buffer.io_faults or \
            first.elapsed_us != second.elapsed_us


class TestEnvironmentSwitch:
    def test_env_spec_wraps_the_device(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "read=0.01,seed=3")
        config = StackConfig(
            profile=TEST_PROFILE, policy="lru", variant="baseline",
            num_pages=64,
        )
        manager = build_stack(config)
        assert isinstance(manager.device, FaultyDevice)
        assert manager.device.plan.read_error_rate == 0.01
        assert manager.device._armed

    def test_env_zero_is_a_disarmed_passthrough(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "0")
        config = StackConfig(
            profile=TEST_PROFILE, policy="lru", variant="baseline",
            num_pages=64,
        )
        manager = build_stack(config)
        assert isinstance(manager.device, FaultyDevice)
        assert not manager.device._armed

    def test_env_unset_leaves_the_bare_device(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        config = StackConfig(
            profile=TEST_PROFILE, policy="lru", variant="baseline",
            num_pages=64,
        )
        manager = build_stack(config)
        assert not isinstance(manager.device, FaultyDevice)

    def test_explicit_plan_beats_the_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "0.5")
        config = StackConfig(
            profile=TEST_PROFILE, policy="lru", variant="baseline",
            num_pages=64, fault_plan=FaultPlan.uniform(0.001, seed=9),
        )
        manager = build_stack(config)
        assert manager.device.plan.read_error_rate == pytest.approx(0.001)
