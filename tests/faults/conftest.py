"""Shared fixtures for the fault-injection tests.

Most tests here need precise control over *which* operation faults and
*how*, which seeded rates cannot give.  :class:`ScriptedInjector` replaces
the RNG with an explicit per-operation script while reusing the real
:class:`~repro.faults.device.FaultyDevice` fault application, so the
semantics under test are exactly the shipped ones.
"""

from __future__ import annotations

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.wal import WriteAheadLog
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD

from tests.bufferpool.conftest import TEST_PROFILE

#: A non-null plan (arms the FaultyDevice) that can never fire by itself:
#: the bad page is outside any test device.  Scripted injectors override
#: the decision logic anyway.
ARMED_PLAN = FaultPlan(media_error_pages=frozenset({-1}))


def make_base_device(num_pages: int = 256) -> SimulatedSSD:
    device = SimulatedSSD(TEST_PROFILE, num_pages=num_pages)
    device.format_pages(range(num_pages))
    return device


class ScriptedInjector(FaultInjector):
    """An injector driven by an explicit per-operation script.

    Each device operation consumes one script entry: ``None`` lets it
    through; a :class:`FaultKind` (or ``(kind, extra)`` tuple) schedules
    that fault.  ``extra`` is the cut index for ``TORN_BATCH``, the delay
    for ``LATENCY_SPIKE``, and the bad-page tuple for ``PERMANENT_MEDIA``.
    Once the script is exhausted every operation succeeds.
    """

    def __init__(self, plan: FaultPlan, script) -> None:
        super().__init__(plan)
        self.script = list(script)

    def _next(self, op: str, pages: tuple[int, ...]) -> FaultEvent | None:
        self.operations += 1
        if not self.script:
            return None
        entry = self.script.pop(0)
        if entry is None:
            return None
        kind, extra = entry if isinstance(entry, tuple) else (entry, None)
        index = self.operations
        if kind is FaultKind.TORN_BATCH:
            cut = extra if extra is not None else max(1, len(pages) // 2)
            return self._record(FaultEvent(
                index, op, kind,
                pages=tuple(pages[cut:]), acknowledged=tuple(pages[:cut]),
            ))
        if kind is FaultKind.LATENCY_SPIKE:
            return self._record(FaultEvent(
                index, op, kind, pages=tuple(pages),
                delay_us=extra if extra is not None else 2_000.0,
            ))
        if kind is FaultKind.PERMANENT_MEDIA:
            bad = tuple(extra) if extra is not None else tuple(pages)
            good = tuple(page for page in pages if page not in bad)
            return self._record(FaultEvent(
                index, op, kind, pages=bad, acknowledged=good,
            ))
        return self._record(FaultEvent(index, op, kind, pages=tuple(pages)))

    def on_read(self, pages: tuple[int, ...]) -> FaultEvent | None:
        return self._next("read", pages)

    def on_write(self, pages: tuple[int, ...]) -> FaultEvent | None:
        return self._next("write", pages)


def scripted_device(script, num_pages: int = 256) -> FaultyDevice:
    """A FaultyDevice whose faults follow ``script`` exactly."""
    base = make_base_device(num_pages)
    return FaultyDevice(
        base, ARMED_PLAN, injector=ScriptedInjector(ARMED_PLAN, script)
    )


def scripted_manager(
    script,
    capacity: int = 8,
    num_pages: int = 256,
    retry=None,
    with_wal: bool = False,
):
    """A baseline manager over a scripted FaultyDevice."""
    device = scripted_device(script, num_pages=num_pages)
    wal = WriteAheadLog(device.clock) if with_wal else None
    manager = BufferPoolManager(
        capacity, LRUPolicy(), device, wal=wal, retry=retry
    )
    return manager, device.injector
