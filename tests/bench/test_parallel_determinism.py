"""Serial vs parallel grid execution must be byte-identical.

The whole premise of :mod:`repro.bench.parallel` is that every stack owns a
private :class:`VirtualClock`, so fanning a grid out over processes cannot
change any result.  These tests pin that property: the full
:class:`RunMetrics` dataclass (clock readings, hit counters, device stats,
histogram buckets — everything ``==`` compares) must match between
``workers=1`` and ``workers>1``, and between ``run_grid`` and a hand-rolled
serial loop.
"""

import dataclasses

import pytest

from repro.bench.parallel import (
    GridJob,
    TraceSpec,
    resolve_workers,
    run_grid,
)
from repro.bench.runner import (
    VARIANTS,
    StackConfig,
    compare_policies,
    run_config,
)
from repro.engine.executor import ExecutionOptions
from repro.policies.registry import PAPER_POLICIES
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS, WIS, generate_trace

NUM_PAGES = 1200
NUM_OPS = 2500
OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


def _jobs():
    spec = TraceSpec(MS, NUM_PAGES, NUM_OPS, seed=7)
    return [
        GridJob(
            StackConfig(
                profile=PCIE_SSD,
                policy=policy,
                variant=variant,
                num_pages=NUM_PAGES,
                options=OPTIONS,
            ),
            trace=spec,
            label=f"{policy}/{variant}",
        )
        for policy in PAPER_POLICIES
        for variant in VARIANTS
    ]


class TestDeterminism:
    def test_serial_matches_handrolled_loop(self):
        jobs = _jobs()
        trace = generate_trace(MS, NUM_PAGES, NUM_OPS, seed=7)
        expected = [
            run_config(job.config, trace, label=job.label) for job in jobs
        ]
        got = run_grid(jobs, workers=1)
        assert got == expected

    def test_parallel_matches_serial(self):
        jobs = _jobs()
        serial = run_grid(jobs, workers=1)
        parallel = run_grid(jobs, workers=4)
        for s, p in zip(serial, parallel, strict=True):
            assert dataclasses.asdict(s) == dataclasses.asdict(p)
        assert serial == parallel

    def test_compare_policies_workers_equivalent(self):
        trace = generate_trace(WIS, NUM_PAGES, NUM_OPS, seed=11)
        serial = compare_policies(
            PCIE_SSD,
            ("lru", "clock"),
            trace,
            num_pages=NUM_PAGES,
            options=OPTIONS,
            workers=1,
        )
        parallel = compare_policies(
            PCIE_SSD,
            ("lru", "clock"),
            trace,
            num_pages=NUM_PAGES,
            options=OPTIONS,
            workers=3,
        )
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key] == parallel[key], key

    def test_order_preserved(self):
        jobs = _jobs()
        results = run_grid(jobs, workers=2)
        for job, metrics in zip(jobs, results, strict=True):
            assert metrics.label == job.label


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "9")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        import os

        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestTraceSpec:
    def test_materialise_deterministic(self):
        spec = TraceSpec(MS, 500, 800, seed=3)
        a = spec.materialise()
        b = spec.materialise()
        assert list(a) == list(b)

    def test_gridjob_requires_exactly_one_payload(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace", num_pages=100
        )
        with pytest.raises(ValueError):
            GridJob(config, trace=None, transactions=None)
