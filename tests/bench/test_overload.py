"""Tests for the overload saturation-sweep harness."""

from repro.bench.overload import (
    SMOKE_MULTIPLIERS,
    OverloadCell,
    _calibrate,
    format_report,
    make_overload_trace,
    run_cell,
    smoke_grid,
)
from repro.bench.runner import StackConfig
from repro.cli import build_parser
from repro.storage.profiles import PCIE_SSD


class TestSmokeGrid:
    def setup_method(self):
        self.report = smoke_grid(seed=7)

    def test_report_passes(self):
        assert self.report.ok, "\n".join(self.report.failures)

    def test_grid_shape(self):
        # 3 shed policies x {baseline, ace} curves, one cell per multiplier.
        assert len(self.report.curves) == 6
        for curve in self.report.curves:
            assert len(curve.cells) == len(SMOKE_MULTIPLIERS)

    def test_every_cell_partitions_offered_load(self):
        for curve in self.report.curves:
            for cell in curve.cells:
                assert (
                    cell.shed + cell.expired + cell.failed + cell.completed
                    == cell.offered
                )

    def test_degradation_is_graceful(self):
        for curve in self.report.curves:
            assert curve.graceful(self.report.graceful_threshold), curve.label

    def test_breaker_ab_improves_p99(self):
        breaker = self.report.breaker
        assert breaker.trips, "breaker must trip under mistuned batches"
        assert breaker.tripped
        assert breaker.improved
        assert breaker.p99_on_us < breaker.p99_off_us

    def test_format_report_mentions_verdict(self):
        text = format_report(self.report)
        assert "OVERLOAD OK" in text
        assert "breaker" in text.lower()


class TestCellDeterminism:
    def test_same_inputs_same_cell(self):
        config = StackConfig(
            profile=PCIE_SSD, policy="lru", variant="ace", num_pages=1_200
        )
        trace = make_overload_trace(1_200, 3_000, seed=7)
        rate = _calibrate(config, trace)
        first = run_cell(config, trace, "drop-oldest", 2.0, rate)
        second = run_cell(config, trace, "drop-oldest", 2.0, rate)
        assert isinstance(first, OverloadCell)
        assert first == second


class TestOverloadTrace:
    def test_clients_and_skewed_shares(self):
        trace = make_overload_trace(1_000, 2_000, seed=3, clients=4)
        assert trace.client_ids is not None
        counts = {}
        for client in trace.client_ids:
            counts[client] = counts.get(client, 0) + 1
        assert set(counts) == {0, 1, 2, 3}
        # Client 0 carries a double share: the client-fair shed policy
        # needs a heavy hitter to discriminate against.
        assert counts[0] == 2 * counts[1]
        assert counts[1] == counts[2] == counts[3]


class TestCLI:
    def test_overload_subcommand_parses(self):
        parser = build_parser()
        args = parser.parse_args(["overload", "--smoke", "--seed", "9"])
        assert args.command == "overload"
        assert args.smoke
        assert args.seed == 9
        assert args.policies == "lru"
