"""Tests for the cluster sweep bench (tiny grids)."""

from repro.bench import cluster


def tiny_sweep(**overrides):
    kwargs = dict(
        shards=(1, 2),
        placements=("hash", "locality"),
        policies=("lru",),
        num_pages=300,
        num_ops=600,
        seed=42,
    )
    kwargs.update(overrides)
    return cluster.run_sweep(**kwargs)


class TestSweep:
    def test_grid_shape_and_single_shard_dedup(self):
        report = tiny_sweep()
        labels = [cell.label for cell in report.cells]
        # s=1 runs only the hash spelling; s=2 runs both placements.
        assert labels == [
            "lru/baseline/s1/hash",
            "lru/baseline/s2/hash",
            "lru/baseline/s2/locality",
        ]

    def test_cells_measure_something(self):
        report = tiny_sweep(shards=(2,), placements=("hash",))
        cell = report.cells[0]
        assert cell.ops == 600
        assert cell.aggregate_accesses_per_sec > 0
        assert cell.makespan_wall_s > 0
        assert cell.ops_imbalance >= 1.0
        assert cell.elapsed_us > 0
        assert 0.0 <= cell.hit_ratio <= 1.0

    def test_placement_scores_recorded(self):
        report = tiny_sweep()
        hash_cell = report.cell("lru", "baseline", 2, "hash")
        locality_cell = report.cell("lru", "baseline", 2, "locality")
        assert hash_cell.cut_edges >= locality_cell.cut_edges
        assert report.ok

    def test_placement_failure_detected(self):
        report = tiny_sweep()
        bad = [
            cell if cell.placement != "locality"
            else cluster.ClusterCell(
                **{**cell.__dict__, "cut_edges": cell.cut_edges + 1e6}
            )
            for cell in report.cells
        ]
        broken = cluster.ClusterSweepReport(
            seed=report.seed, num_pages=report.num_pages,
            num_ops=report.num_ops, cells=tuple(bad),
        )
        assert not broken.ok
        assert broken.placement_failures

    def test_format_report_renders_both_tables(self):
        report = tiny_sweep()
        text = cluster.format_report(report)
        assert "Cluster sweep" in text
        assert "Placement Pareto points" in text
        assert "s2/locality" in text

    def test_main_smoke_exit_zero(self, capsys):
        assert cluster.main([
            "--shards", "2", "--policies", "lru",
            "--pages", "300", "--ops", "600",
        ]) == 0
        out = capsys.readouterr().out
        assert "placement claim holds" in out
