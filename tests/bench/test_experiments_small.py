"""Fast structural tests for the experiment harness (tiny scales).

The real paper-scale runs live in ``benchmarks/``; these tests run the same
code paths at miniature scale so the harness itself is covered by
``pytest tests/``.
"""

import pytest

from repro.bench.experiments import (
    ExperimentScale,
    fig2_ideal_speedup,
    fig10g_nw_sweep,
    fig10h_asymmetry_continuum,
    table2_workload_definitions,
)

TINY = ExperimentScale(num_pages=1500, num_ops=3000)


@pytest.fixture(autouse=True)
def isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestHarness:
    def test_table2_structure(self, isolated_results):
        data = table2_workload_definitions(TINY)
        assert set(data) == {"MS", "WIS", "RIS", "MU"}
        assert (isolated_results / "table2_workloads.txt").exists()

    def test_fig2_structure(self, isolated_results):
        data = fig2_ideal_speedup(TINY)
        assert len(data["alphas"]) == len(data["measured"]) == len(data["model"])
        assert data["measured"][-1] > data["measured"][0]

    def test_fig10g_structure(self, isolated_results):
        data = fig10g_nw_sweep(TINY, policies=("lru",), n_ws=(1, 4, 8))
        assert len(data["lru"]) == 3
        assert data["lru"][2] > data["lru"][0]

    def test_fig10h_structure(self, isolated_results):
        data = fig10h_asymmetry_continuum(
            TINY, alphas=(1.0, 4.0), n_ws=(1, 8)
        )
        assert len(data["measured"]) == 2
        assert len(data["measured"][0]) == 2
        assert data["measured"][1][1] == max(
            value for row in data["measured"] for value in row
        )
