"""Tests for the replication (repeated-runs) methodology helpers."""

import pytest

from repro.bench.replication import ReplicatedResult, replicate, replicate_speedup
from repro.bench.runner import StackConfig
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import MS, generate_trace


class TestReplicatedResult:
    def test_statistics(self):
        result = ReplicatedResult("x", (10.0, 12.0, 11.0))
        assert result.n == 3
        assert result.mean == pytest.approx(11.0)
        assert result.std == pytest.approx(1.0)
        assert result.cv == pytest.approx(1.0 / 11.0)

    def test_single_value_no_dispersion(self):
        result = ReplicatedResult("x", (5.0,))
        assert result.std == 0.0
        assert result.cv == 0.0

    def test_str(self):
        assert "cv=" in str(ReplicatedResult("x", (1.0, 2.0)))


class TestReplicate:
    def _config(self, variant="baseline"):
        return StackConfig(
            profile=PCIE_SSD, policy="lru", variant=variant, num_pages=2000,
        )

    def test_runs_once_per_seed(self):
        result = replicate(
            self._config(),
            lambda seed: generate_trace(MS, 2000, 3000, seed=seed),
            seeds=(1, 2, 3),
        )
        assert result.n == 3
        assert all(v > 0 for v in result.values)

    def test_custom_metric(self):
        result = replicate(
            self._config(),
            lambda seed: generate_trace(MS, 2000, 3000, seed=seed),
            seeds=(1, 2),
            metric=lambda m: m.buffer.miss_ratio,
        )
        assert all(0.0 < v < 1.0 for v in result.values)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(self._config(), lambda s: None, seeds=())

    def test_paper_stability_property(self):
        """The paper's methodology claim: std < 5% across iterations."""
        result = replicate(
            self._config(),
            lambda seed: generate_trace(MS, 2000, 4000, seed=seed),
            seeds=(1, 2, 3, 4, 5),
        )
        assert result.cv < 0.05

    def test_replicate_speedup_stable_and_real(self):
        result = replicate_speedup(
            self._config("baseline"),
            self._config("ace"),
            MS,
            num_pages=2000,
            num_ops=4000,
            seeds=(1, 2, 3),
        )
        assert result.mean > 1.2
        assert result.cv < 0.05
