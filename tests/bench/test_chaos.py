"""Tests for the chaos harness (repro.bench.chaos)."""

import pytest

from repro.bench.chaos import (
    ChaosCellResult,
    ChaosReport,
    run_cell,
    run_chaos,
    smoke_grid,
)

from tests.bufferpool.conftest import TEST_PROFILE

SMALL = dict(profile=TEST_PROFILE, num_pages=400, ops=1_200)


class TestRunCell:
    def test_fault_free_cell_is_durable(self):
        cell = run_cell("lru", "baseline", 0.0, **SMALL)
        assert cell.ok
        assert cell.lost_updates == 0
        assert cell.faults_injected == 0
        assert cell.committed_updates > 0
        assert cell.redo_applied > 0

    def test_faulty_ace_cell_is_durable(self):
        cell = run_cell("lru", "ace", 0.02, **SMALL)
        assert cell.ok
        assert cell.lost_updates == 0
        assert cell.faults_injected > 0  # the plan actually fired

    def test_cells_are_deterministic(self):
        first = run_cell("clock", "ace", 0.01, **SMALL, seed=13)
        second = run_cell("clock", "ace", 0.01, **SMALL, seed=13)
        assert first == second

    def test_cell_label(self):
        cell = run_cell("lru", "baseline", 0.0, **SMALL)
        assert cell.label == "lru/baseline@0"


class TestReport:
    def small_grid(self) -> ChaosReport:
        return run_chaos(
            rates=(0.0, 0.01), policies=("lru",), variants=("baseline", "ace"),
            profile=TEST_PROFILE, num_pages=400, ops=1_200,
        )

    def test_grid_shape_and_durability(self):
        report = self.small_grid()
        assert len(report.cells) == 4
        assert report.ok
        assert report.failures == ()
        assert report.total_lost == 0
        assert report.total_faults > 0

    def test_failed_cell_marks_report(self):
        bad = ChaosCellResult(
            policy="lru", variant="ace", rate=0.01, ops_run=10,
            committed_updates=5, lost_updates=1, faults_injected=2,
            io_retries=0, degraded_writebacks=0, failed_writebacks=0,
            checkpoints_skipped=0, redo_applied=5, redo_retries=0,
        )
        assert not bad.ok
        report = ChaosReport(cells=(bad,), seed=7)
        assert not report.ok
        assert report.failures == (bad,)

    def test_error_cell_is_a_failure_even_without_loss(self):
        errored = ChaosCellResult(
            policy="lru", variant="ace", rate=0.01, ops_run=10,
            committed_updates=5, lost_updates=0, faults_injected=2,
            io_retries=0, degraded_writebacks=0, failed_writebacks=0,
            checkpoints_skipped=0, redo_applied=5, redo_retries=0,
            error="RetriesExhaustedError: boom",
        )
        assert not errored.ok


class TestSmokeGrid:
    def test_smoke_grid_is_durable(self):
        report = smoke_grid()
        assert report.ok, [cell.label for cell in report.failures]
        assert len(report.cells) == 8
        assert report.total_faults > 0
        assert report.total_lost == 0
