"""Tests for the ASCII plotting helpers."""

import pytest

from repro.bench.plot import heatmap, line_chart


class TestLineChart:
    def test_contains_title_and_legend(self):
        chart = line_chart(
            [1, 2, 3], {"alpha": [1.0, 2.0, 3.0]}, title="My chart"
        )
        assert chart.splitlines()[0] == "My chart"
        assert "o alpha" in chart

    def test_extremes_labelled(self):
        chart = line_chart([0, 10], {"s": [5.0, 25.0]})
        assert "25" in chart
        assert "5" in chart

    def test_multiple_series_distinct_markers(self):
        chart = line_chart(
            [0, 1], {"a": [0.0, 1.0], "b": [1.0, 0.0]}
        )
        assert "o a" in chart and "x b" in chart

    def test_monotone_series_renders_monotone(self):
        chart = line_chart([0, 1, 2, 3], {"up": [0.0, 1.0, 2.0, 3.0]},
                           width=20, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        columns = []
        for row_index, row in enumerate(rows):
            body = row.split("|", 1)[1]
            for col_index, char in enumerate(body):
                if char == "o":
                    columns.append((col_index, row_index))
        columns.sort()
        row_positions = [row for _, row in columns]
        assert row_positions == sorted(row_positions, reverse=True)

    def test_flat_series_ok(self):
        chart = line_chart([0, 1], {"flat": [2.0, 2.0]})
        assert "flat" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {})
        with pytest.raises(ValueError):
            line_chart([0], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1.0, 2.0]}, width=2)


class TestHeatmap:
    def test_contains_labels_and_values(self):
        text = heatmap(
            ["a=1", "a=2"], ["n=1", "n=2"],
            [[1.0, 2.0], [3.0, 4.0]], title="grid",
        )
        assert "grid" in text
        assert "a=1" in text and "n=2" in text
        assert "4.00" in text

    def test_scale_line(self):
        text = heatmap(["r"], ["c"], [[5.0]])
        assert "scale:" in text

    def test_shading_monotone(self):
        text = heatmap(["r"], ["c1", "c2"], [[0.0, 10.0]])
        row = [line for line in text.splitlines() if line.startswith("        r")][0]
        # The max cell uses the densest glyph, the min the sparsest.
        assert "@" in row

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap(["a"], ["b"], [])
        with pytest.raises(ValueError):
            heatmap(["a"], ["b"], [[1.0, 2.0]])
