"""Smoke tests for the wall-clock throughput harness (tiny workloads).

These do not assert absolute performance — CI machines vary wildly — only
that the harness measures something positive, writes the documented JSON
schema, and that the ``--check`` regression gate passes against a
just-written entry and fails against an impossible committed rate.
"""

import json

import pytest

from repro.bench import perf

TINY = {"num_pages": 300, "num_ops": 500, "repeats": 1}


@pytest.fixture()
def bench_file(tmp_path, monkeypatch):
    path = tmp_path / "BENCH_throughput.json"
    monkeypatch.setenv("REPRO_BENCH_FILE", str(path))
    return path


def _tiny_entry(label="test", cluster=False):
    stack = perf.measure_single_stack("lru", "baseline", **TINY)
    entry = {
        "label": label,
        "fast": True,
        "machine": {},
        "single_stack": {"lru/baseline": stack},
        "headline_accesses_per_sec": stack["accesses_per_sec"],
        "suite": {},
    }
    if cluster:
        entry["cluster"] = {
            "lru/baseline/s4/hash": perf.measure_cluster(
                "lru", "baseline", num_shards=4, placement="hash", **TINY
            )
        }
    return entry


class TestMeasurement:
    def test_single_stack_positive_throughput(self):
        result = perf.measure_single_stack("lru", "baseline", **TINY)
        assert result["policy"] == "lru"
        assert result["variant"] == "baseline"
        assert result["ops"] == TINY["num_ops"]
        assert result["wall_s"] > 0
        assert result["accesses_per_sec"] > 0
        # Epoch-schema fields the cluster gate keys like-for-like off.
        assert result["shards"] == 1
        assert result["placement"] == "single"

    def test_cluster_positive_aggregate_throughput(self):
        result = perf.measure_cluster(
            "lru", "baseline", num_shards=2, placement="hash", **TINY
        )
        assert result["shards"] == 2
        assert result["placement"] == "hash"
        assert result["ops"] == TINY["num_ops"]
        assert result["makespan_wall_s"] > 0
        assert result["accesses_per_sec"] > 0
        assert sum(result["per_shard_ops"]) == TINY["num_ops"]
        assert result["ops_imbalance"] >= 1.0

    def test_suite_times_both_paths(self):
        suite = perf.measure_suite(
            workers=2, num_pages=300, num_ops=500, policies=("lru",),
            variants=("baseline", "ace"),
        )
        assert suite["jobs"] == 2
        assert suite["serial_s"] > 0
        assert suite["parallel_s"] > 0
        assert suite["workers"] == 2
        assert suite["parallel_speedup"] > 0


class TestReportFile:
    def test_write_entry_schema(self, bench_file):
        report = perf.write_entry(_tiny_entry("first"))
        assert bench_file.exists()
        on_disk = json.loads(bench_file.read_text())
        assert on_disk == report
        assert on_disk["schema_version"] == perf.SCHEMA_VERSION
        assert on_disk["current"]["label"] == "first"
        assert on_disk["baseline"]["label"] == "first"
        assert len(on_disk["history"]) == 1
        assert on_disk["current"]["headline_accesses_per_sec"] > 0

    def test_baseline_pinned_to_first_entry(self, bench_file):
        perf.write_entry(_tiny_entry("first"))
        report = perf.write_entry(_tiny_entry("second"))
        assert report["baseline"]["label"] == "first"
        assert report["current"]["label"] == "second"
        assert len(report["history"]) == 2
        assert report["improvement_vs_baseline"] > 0

    def test_load_report_absent(self, bench_file):
        assert perf.load_report() is None


class TestCheckGate:
    def test_check_passes_against_fresh_entry(self, bench_file):
        perf.write_entry(_tiny_entry())
        # A freshly measured rate cannot be 1000x below itself.
        assert perf.main(["--check", "--min-ratio", "0.001"]) == 0

    def test_check_fails_against_impossible_rate(self, bench_file):
        entry = _tiny_entry()
        entry["headline_accesses_per_sec"] = 1e15
        entry["single_stack"]["lru/baseline"]["accesses_per_sec"] = 1e15
        perf.write_entry(entry)
        assert perf.main(["--check", "--min-ratio", "0.9"]) == 1

    def test_check_without_file_is_distinct_error(self, bench_file):
        assert perf.main(["--check"]) == 2

    def test_policy_floors_skip_unrecorded_stacks(self, bench_file):
        # The tiny entry records only lru/baseline: every other floored
        # stack must be skipped rather than measured against nothing.
        report = perf.write_entry(_tiny_entry())
        results = perf.check_policy_floors(report, fast=True)
        assert [r["stack"] for r in results] == ["lru/baseline"]
        assert results[0]["committed"] > 0
        assert results[0]["measured"] > 0

    def test_policy_floors_flag_regressions(self, bench_file):
        entry = _tiny_entry()
        entry["single_stack"]["lru/baseline"]["accesses_per_sec"] = 1e15
        report = perf.write_entry(entry)
        results = perf.check_policy_floors(
            report, floors={"lru/baseline": 0.9}, fast=True
        )
        assert len(results) == 1
        assert not results[0]["ok"]

    def test_check_gates_on_policy_floors(self, bench_file):
        # Headline passes (committed headline is honest) but the recorded
        # per-stack rate is impossible, so the per-policy gate must fail.
        entry = _tiny_entry()
        entry["single_stack"]["lru/baseline"]["accesses_per_sec"] = 1e15
        perf.write_entry(entry)
        assert perf.main(["--check", "--min-ratio", "0.001"]) == 1
        assert perf.main(
            ["--check", "--min-ratio", "0.001", "--no-policy-floors"]
        ) == 0

    def test_cluster_floors_skip_unrecorded_stacks(self, bench_file):
        # No `cluster` section recorded: nothing to gate, nothing measured.
        report = perf.write_entry(_tiny_entry())
        assert perf.check_cluster_floors(report, fast=True) == []

    def test_cluster_floors_pass_against_fresh_entry(self, bench_file):
        report = perf.write_entry(_tiny_entry(cluster=True))
        results = perf.check_cluster_floors(
            report, floors={"lru/baseline/s4/hash": 0.001}, fast=True
        )
        assert [r["stack"] for r in results] == ["lru/baseline/s4/hash"]
        assert results[0]["ok"]
        assert results[0]["committed"] > 0

    def test_cluster_floors_flag_regressions(self, bench_file):
        entry = _tiny_entry(cluster=True)
        entry["cluster"]["lru/baseline/s4/hash"]["accesses_per_sec"] = 1e15
        report = perf.write_entry(entry)
        results = perf.check_cluster_floors(
            report, floors={"lru/baseline/s4/hash": 0.9}, fast=True
        )
        assert len(results) == 1
        assert not results[0]["ok"]

    def test_cluster_floors_never_match_different_shape(self, bench_file):
        # A committed 4-shard rate must not gate an 8-shard floor, nor a
        # locality one — like-for-like matching skips both.
        entry = _tiny_entry(cluster=True)
        report = perf.write_entry(entry)
        assert perf.check_cluster_floors(
            report, floors={"lru/baseline/s8/hash": 0.5}, fast=True
        ) == []
        assert perf.check_cluster_floors(
            report, floors={"lru/baseline/s4/locality": 0.5}, fast=True
        ) == []

    def test_sharded_rates_never_gate_single_stack(self, bench_file):
        # A cluster aggregate smuggled into single_stack must be skipped
        # by the single-pool committed-rate lookup.
        entry = _tiny_entry()
        entry["single_stack"]["lru/baseline"]["shards"] = 4
        report = perf.write_entry(entry)
        assert perf._committed_stack_rate(
            report, "lru/baseline", fast=True
        ) is None

    def test_check_against_prefers_same_mode_history(self, bench_file):
        fast_entry = _tiny_entry("fast")
        slow_entry = _tiny_entry("slow")
        slow_entry["fast"] = False
        slow_entry["headline_accesses_per_sec"] = 1e15
        perf.write_entry(fast_entry)
        report = perf.write_entry(slow_entry)
        ok, _measured, committed = perf.check_against(
            report, min_ratio=0.001, fast=True
        )
        # The fast-mode bar comes from the fast history entry, not the
        # (impossible) full-size current entry.
        assert committed == fast_entry["headline_accesses_per_sec"]
        assert ok


class TestProfiling:
    def test_run_profiled_dumps_and_returns(self, tmp_path, capsys):
        from repro.bench.profiling import run_profiled

        out = tmp_path / "run.pstats"
        result = run_profiled(lambda: sum(range(1000)), str(out), top=5)
        assert result == sum(range(1000))
        assert out.exists() and out.stat().st_size > 0
        printed = capsys.readouterr().out
        assert "profile written to" in printed
        assert "cumulative" in printed

    def test_run_profiled_dumps_on_failure(self, tmp_path, capsys):
        from repro.bench.profiling import run_profiled

        out = tmp_path / "boom.pstats"
        with pytest.raises(RuntimeError):
            run_profiled(
                lambda: (_ for _ in ()).throw(RuntimeError("boom")),
                str(out),
            )
        assert out.exists() and out.stat().st_size > 0

    def test_cli_run_profile_flag(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "cli.pstats"
        code = cli_main([
            "run", "--pages", "300", "--ops", "400",
            "--policy", "lru", "--variant", "baseline",
            "--profile", str(out),
        ])
        assert code == 0
        assert out.exists() and out.stat().st_size > 0
        printed = capsys.readouterr().out
        assert "profile written to" in printed
