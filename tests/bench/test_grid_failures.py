"""Tests for run_grid's retry-and-report failure handling (GridFailure)."""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.bench import parallel
from repro.bench.parallel import (
    MAX_JOB_ATTEMPTS,
    GridFailure,
    GridJob,
    TraceSpec,
    run_grid,
)
from repro.bench.runner import StackConfig
from repro.engine.metrics import RunMetrics
from repro.workloads.synthetic import MS

from tests.bufferpool.conftest import TEST_PROFILE

TRACE = TraceSpec(MS, num_pages=256, num_ops=400, seed=1)


def config(policy: str = "lru") -> StackConfig:
    return StackConfig(
        profile=TEST_PROFILE, policy=policy, variant="baseline", num_pages=256
    )


def jobs_with_one_bad() -> list[GridJob]:
    return [
        GridJob(config("lru"), trace=TRACE, label="good-1"),
        GridJob(config("no-such-policy"), trace=TRACE, label="bad"),
        GridJob(config("clock"), trace=TRACE, label="good-2"),
    ]


class TestSerialFailures:
    def test_bad_job_reported_in_slot_good_jobs_complete(self):
        results = run_grid(jobs_with_one_bad(), workers=1)
        assert isinstance(results[0], RunMetrics)
        assert isinstance(results[2], RunMetrics)
        failure = results[1]
        assert isinstance(failure, GridFailure)
        assert failure.label == "bad"
        assert failure.attempts == MAX_JOB_ATTEMPTS
        assert "no-such-policy" in failure.error

    def test_gridfailure_is_falsy_for_filtering(self):
        results = run_grid(jobs_with_one_bad(), workers=1)
        metrics = [result for result in results if result]
        assert len(metrics) == 2
        assert all(isinstance(result, RunMetrics) for result in metrics)


class TestParallelFailures:
    def test_bad_job_reported_in_slot_good_jobs_complete(self):
        results = run_grid(jobs_with_one_bad(), workers=2)
        assert isinstance(results[0], RunMetrics)
        assert isinstance(results[2], RunMetrics)
        failure = results[1]
        assert isinstance(failure, GridFailure)
        assert failure.attempts == MAX_JOB_ATTEMPTS
        assert failure.config.policy == "no-such-policy"

    def test_parallel_failures_match_serial(self):
        serial = run_grid(jobs_with_one_bad(), workers=1)
        parallel_results = run_grid(jobs_with_one_bad(), workers=2)
        for s, p in zip(serial, parallel_results):
            assert type(s) is type(p)
            if isinstance(s, RunMetrics):
                assert s == p


class _FlakyPool:
    """Stands in for ProcessPoolExecutor: the first pool is born broken
    (every submit raises BrokenProcessPool), later pools run inline."""

    built = 0

    def __init__(self, max_workers):
        type(self).built += 1
        self.broken = type(self).built == 1

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args):
        if self.broken:
            raise BrokenProcessPool("A child process terminated abruptly")
        future = Future()
        try:
            future.set_result(fn(*args))
        except Exception as exc:  # pragma: no cover - defensive
            future.set_exception(exc)
        return future


class TestBrokenPoolRetry:
    def test_jobs_survive_a_broken_pool_on_a_fresh_one(self, monkeypatch):
        _FlakyPool.built = 0
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _FlakyPool)
        jobs = [
            GridJob(config("lru"), trace=TRACE, label="a"),
            GridJob(config("clock"), trace=TRACE, label="b"),
        ]
        results = run_grid(jobs, workers=2)
        assert all(isinstance(result, RunMetrics) for result in results)
        assert [result.label for result in results] == ["a", "b"]
        # The broken pool was abandoned and a fresh one built for the retry.
        assert _FlakyPool.built == 2

    def test_persistently_broken_pool_reports_failures(self, monkeypatch):
        class AlwaysBroken(_FlakyPool):
            def __init__(self, max_workers):
                self.broken = True

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", AlwaysBroken)
        jobs = [
            GridJob(config("lru"), trace=TRACE, label="doomed-1"),
            GridJob(config("clock"), trace=TRACE, label="doomed-2"),
        ]
        results = run_grid(jobs, workers=2)
        for failure in results:
            assert isinstance(failure, GridFailure)
            assert failure.attempts == MAX_JOB_ATTEMPTS
            assert "BrokenProcessPool" in failure.error


class TestEdgeCases:
    def test_empty_grid(self):
        assert run_grid([], workers=4) == []

    def test_failure_label_falls_back_to_config_label(self):
        job = GridJob(config("no-such-policy"), trace=TRACE)
        results = run_grid([job], workers=1)
        failure = results[0]
        assert isinstance(failure, GridFailure)
        assert failure.label == "no-such-policy/baseline"
