"""Tests for the EXPERIMENTS.md assembler."""

from repro.bench.summary import EXPERIMENT_SECTIONS, assemble_experiments_md


class TestAssembler:
    def test_all_paper_experiments_covered(self):
        stems = {stem for stem, _, _ in EXPERIMENT_SECTIONS}
        # Every table/figure of the paper's evaluation has a section.
        for required in (
            "table1_devices", "table2_workloads", "table3_overheads",
            "fig2_ideal_speedup", "fig8_synthetic_runtime",
            "fig9_writes_over_time", "fig10ab_low_asymmetry",
            "fig10cd_rw_ratio", "fig10ef_memory_pressure",
            "fig10g_nw_sweep", "fig10h_continuum",
            "fig10i_device_comparison", "fig11_tpcc", "fig12_tpcc_scaling",
        ):
            assert required in stems, required

    def test_assemble_with_partial_results(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        (tmp_path / "results").mkdir()
        (tmp_path / "results" / "table1_devices.txt").write_text("DEVICES\n")
        output = assemble_experiments_md(tmp_path / "EXPERIMENTS.md")
        text = output.read_text()
        assert "DEVICES" in text
        assert "Table I" in text
        assert "awaiting results" in text  # other sections missing

    def test_assemble_marks_missing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        output = assemble_experiments_md(tmp_path / "E.md")
        text = output.read_text()
        assert text.count("no measured output yet") == len(EXPERIMENT_SECTIONS)
