"""Tests for the failover bench (tiny grids)."""

import dataclasses

from repro.bench import failover


def tiny_sweep(**overrides):
    kwargs = dict(
        rates=(1.0,),
        replication=(1,),
        policies=("lru",),
        variants=("ace",),
        num_pages=400,
        num_ops=800,
        num_shards=2,
        seed=42,
    )
    kwargs.update(overrides)
    return failover.run_sweep(**kwargs)


class TestSweep:
    def test_grid_shape_includes_scenarios(self):
        report = tiny_sweep()
        labels = [cell.label for cell in report.cells]
        assert labels == [
            "lru/ace/r1/f1",
            "lru/ace/r1/mid-ace-batch",
            "lru/ace/r2/double-failure",
        ]

    def test_storm_cells_audit_clean(self):
        report = tiny_sweep()
        for cell in report.cells:
            assert cell.lost_updates == 0
            assert cell.phantom_pages == 0
            assert cell.ok
        assert report.ok
        assert report.failures == []

    def test_scenarios_exercise_their_shape(self):
        report = tiny_sweep()
        mid = next(c for c in report.cells if c.scenario == "mid-ace-batch")
        assert mid.failovers >= 1
        assert mid.max_failover_latency_us > 0
        double = next(
            c for c in report.cells if c.scenario == "double-failure"
        )
        assert double.candidates_lost >= 1

    def test_zero_rate_cells_never_fail_over(self):
        report = tiny_sweep(rates=(0.0,))
        grid = [cell for cell in report.cells if not cell.scenario]
        assert grid and all(cell.failovers == 0 for cell in grid)
        assert all(cell.availability == 1.0 for cell in grid)

    def test_missed_scenario_is_a_failure(self):
        report = tiny_sweep()
        broken_cells = [
            cell if cell.scenario != "double-failure"
            else dataclasses.replace(cell, candidates_lost=0)
            for cell in report.cells
        ]
        broken = dataclasses.replace(report, cells=tuple(broken_cells))
        assert not broken.ok
        assert any("double-failure" in note for note in broken.failures)

    def test_committed_loss_is_a_failure(self):
        report = tiny_sweep()
        broken_cells = [
            dataclasses.replace(cell, lost_updates=1)
            for cell in report.cells
        ]
        broken = dataclasses.replace(report, cells=tuple(broken_cells))
        assert not broken.ok
        assert any("lost 1 committed" in note for note in broken.failures)


class TestSmokeGrid:
    def test_smoke_grid_is_green_and_small(self):
        report = failover.smoke_grid()
        assert report.ok
        assert len(report.cells) == 6  # 1 policy x 2 variants x 2 R + 2

    def test_format_report_mentions_every_cell(self):
        report = tiny_sweep()
        text = failover.format_report(report)
        for cell in report.cells:
            assert cell.label in text

    def test_main_smoke_exits_zero(self, capsys):
        assert failover.main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "zero committed loss" in out


class TestCli:
    def test_failover_subcommand(self, capsys):
        from repro.cli import main

        assert main([
            "failover", "--rates", "1", "--replication", "1",
            "--policies", "lru", "--variants", "ace",
            "--pages", "400", "--ops", "800",
        ]) == 0
        assert "Failover sweep" in capsys.readouterr().out
