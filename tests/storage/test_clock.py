"""Tests for the virtual clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_us == 0.0

    def test_custom_start(self):
        assert VirtualClock(start_us=100.0).now_us == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_us=-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now_us == 12.5

    def test_advance_returns_new_time(self):
        clock = VirtualClock()
        assert clock.advance(5.0) == 5.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_zero_advance_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now_us == 0.0

    def test_now_s_converts_units(self):
        clock = VirtualClock()
        clock.advance(2_500_000.0)
        assert clock.now_s == pytest.approx(2.5)

    def test_elapsed_since(self):
        clock = VirtualClock()
        t0 = clock.now_us
        clock.advance(42.0)
        assert clock.elapsed_since(t0) == pytest.approx(42.0)

    def test_repr_contains_time(self):
        clock = VirtualClock()
        clock.advance(1.0)
        assert "1.000" in repr(clock)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e9), max_size=50))
    def test_monotonic_under_any_advance_sequence(self, deltas):
        clock = VirtualClock()
        previous = clock.now_us
        for delta in deltas:
            clock.advance(delta)
            assert clock.now_us >= previous
            previous = clock.now_us

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    def test_time_is_sum_of_advances(self, deltas):
        clock = VirtualClock()
        for delta in deltas:
            clock.advance(delta)
        assert clock.now_us == pytest.approx(sum(deltas), abs=1e-6)
