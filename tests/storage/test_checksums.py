"""Per-page checksums on :class:`SimulatedSSD`: silent corruption detection.

The checksum is kept *out of band* (metadata beside the payload, as ZFS
does) and covers the page number, so all three silent-corruption shapes
are detectable on read: bitrot (payload decayed under a stale checksum),
misdirected writes (right payload, wrong page), and lost writes (the old
payload under the *new* checksum — the case in-band checksums miss).
"""

import pytest

from repro.errors import CorruptPageError
from repro.storage.device import SimulatedSSD, page_checksum

from tests.bufferpool.conftest import TEST_PROFILE


def make_device(num_pages=32, checksums=True):
    device = SimulatedSSD(
        TEST_PROFILE, num_pages=num_pages, checksums=checksums
    )
    device.format_pages(range(num_pages))
    return device


class TestChecksumOff:
    def test_disabled_by_default(self):
        device = SimulatedSSD(TEST_PROFILE, num_pages=8)
        assert not device.checksums_enabled

    def test_corruption_is_invisible_without_checksums(self):
        device = make_device(checksums=False)
        device.write_page(3, payload=42)
        device.corrupt_payload(3, "garbage")
        assert device.read_page(3) == "garbage"  # silently wrong
        assert device.verify_page(3)  # trivially verifies
        assert device.stats.checksum_failures == 0


class TestChecksumOn:
    def test_clean_reads_pass(self):
        device = make_device()
        device.write_page(3, payload=42)
        assert device.read_page(3) == 42
        assert device.read_batch([0, 3, 5]) == [0, 42, 0]
        assert device.stats.checksum_failures == 0

    def test_bitrot_detected_on_read(self):
        device = make_device()
        device.write_page(3, payload=42)
        device.corrupt_payload(3, ("bitrot", 42))
        with pytest.raises(CorruptPageError) as exc_info:
            device.read_page(3)
        error = exc_info.value
        assert error.page == 3
        assert error.permanent
        assert error.stored_checksum != error.computed_checksum
        assert device.stats.checksum_failures == 1

    def test_bitrot_detected_on_batch_read(self):
        device = make_device()
        device.write_batch({1: 10, 2: 20})
        device.corrupt_payload(2, 999)
        with pytest.raises(CorruptPageError):
            device.read_batch([1, 2])

    def test_misdirected_write_detected(self):
        # Page 5's payload lands on page 6: the checksum covers the page
        # number, so page 6 fails verification even though the payload is
        # a perfectly healthy value.
        device = make_device()
        device.write_page(5, payload=7)
        device.corrupt_payload(6, 7)
        with pytest.raises(CorruptPageError):
            device.read_page(6)

    def test_lost_write_detected(self):
        # The device acknowledged v2 (checksum updated) but kept v1 on
        # media: the phantom-checksum state in-band checksums cannot see.
        device = make_device()
        device.write_page(4, payload=1)
        device.write_page(4, payload=2)
        device.corrupt_payload(4, 1)
        with pytest.raises(CorruptPageError):
            device.read_page(4)

    def test_verify_page_reports_without_raising(self):
        device = make_device()
        device.write_page(3, payload=42)
        reads_before = device.stats.reads
        assert device.verify_page(3)
        device.corrupt_payload(3, 0xBAD)
        assert not device.verify_page(3)
        # A scrub is real I/O: both verifications charged a read.
        assert device.stats.reads == reads_before + 2
        assert device.stats.checksum_failures == 1
        with pytest.raises(IndexError):
            device.verify_page(99)

    def test_format_maintains_checksums(self):
        device = make_device()
        device.write_page(3, payload=42)
        device.format_pages([3])
        assert device.read_page(3) == 0

    def test_write_refreshes_checksum(self):
        # Overwriting a corrupt page heals it: new payload, new checksum.
        device = make_device()
        device.write_page(3, payload=1)
        device.corrupt_payload(3, "rot")
        device.write_page(3, payload=2)
        assert device.read_page(3) == 2

    def test_restore_payloads_rebuilds_checksums(self):
        device = make_device()
        device.write_page(3, payload=42)
        snapshot = device.snapshot_payloads()
        device.corrupt_payload(3, "rot")
        device.restore_payloads(snapshot)
        assert device.read_page(3) == 42
        assert device.verify_page(3)

    def test_page_checksum_covers_page_number(self):
        assert page_checksum(1, "x") != page_checksum(2, "x")
        assert page_checksum(1, "x") != page_checksum(1, "y")


class TestManagerFastPathGate:
    def test_checksums_disable_the_inlined_device_path(self):
        # The turbo tuple writes payloads directly and would leave checksum
        # metadata stale; a checksummed device must take the generic path.
        from repro.bufferpool.manager import BufferPoolManager
        from repro.policies.lru import LRUPolicy

        plain = make_device(checksums=False)
        checked = make_device(checksums=True)
        assert BufferPoolManager(
            8, LRUPolicy(), plain
        )._plain_device is plain
        assert BufferPoolManager(
            8, LRUPolicy(), checked
        )._plain_device is None
