"""Tests for device profiles, the alpha/k probe (Table I), and SMART."""

import pytest

from repro.storage.device import SimulatedSSD
from repro.storage.probe import measure_asymmetry, measure_concurrency, probe_device
from repro.storage.profiles import (
    OPTANE_SSD,
    PAPER_DEVICES,
    PCIE_SSD,
    SATA_SSD,
    VIRTUAL_SSD,
    DeviceProfile,
    emulated_profile,
)
from repro.storage.smart import SmartMonitor


class TestProfiles:
    def test_paper_devices_match_table1(self):
        """The headline Table I parameters are encoded exactly."""
        table1 = {
            "Optane SSD": (1.1, 6, 5),
            "PCIe SSD": (2.8, 80, 8),
            "SATA SSD": (1.5, 25, 9),
            "Virtual SSD": (2.0, 11, 19),
        }
        for profile in PAPER_DEVICES:
            alpha, k_r, k_w = table1[profile.name]
            assert profile.alpha == alpha
            assert profile.k_r == k_r
            assert profile.k_w == k_w

    def test_virtual_ssd_has_kw_above_kr(self):
        """Table I footnote: the cloud volume's throttling inverts k_w/k_r."""
        assert VIRTUAL_SSD.k_w > VIRTUAL_SSD.k_r

    def test_latency_model_construction(self):
        model = PCIE_SSD.latency_model()
        assert model.alpha == 2.8
        assert model.k_w == 8

    def test_with_replaces_fields(self):
        modified = PCIE_SSD.with_(alpha=5.0)
        assert modified.alpha == 5.0
        assert modified.k_w == PCIE_SSD.k_w
        assert PCIE_SSD.alpha == 2.8  # original untouched

    def test_emulated_profile_is_overhead_free(self):
        profile = emulated_profile(alpha=4.0, k_w=8)
        assert profile.submit_overhead_us == 0.0
        assert profile.queue_overhead_us == 0.0
        assert profile.alpha == 4.0
        assert profile.k_w == 8

    def test_emulated_profile_default_k_r(self):
        assert emulated_profile(alpha=2.0, k_w=8).k_r == 32


class TestProbe:
    def test_measured_alpha_matches_configured(self):
        for profile in PAPER_DEVICES:
            alpha, read_us, write_us = measure_asymmetry(profile)
            assert alpha == pytest.approx(profile.alpha, rel=0.05)
            assert write_us > read_us or profile.alpha == 1.0

    def test_measured_write_concurrency_matches(self):
        for profile in PAPER_DEVICES:
            k_w = measure_concurrency(profile, "write", max_batch=40)
            assert k_w == profile.k_w

    def test_measured_read_concurrency_matches(self):
        for profile in (OPTANE_SSD, SATA_SSD, VIRTUAL_SSD):
            k_r = measure_concurrency(profile, "read", max_batch=40)
            assert k_r == profile.k_r

    def test_probe_device_regenerates_table1_row(self):
        measured = probe_device(SATA_SSD, max_batch=40)
        assert measured.name == "SATA SSD"
        assert measured.alpha == pytest.approx(1.5, rel=0.05)
        assert measured.k_r == 25
        assert measured.k_w == 9

    def test_probe_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            measure_concurrency(PCIE_SSD, "erase")

    def test_probe_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            measure_asymmetry(PCIE_SSD, samples=0)


class TestSmart:
    def test_snapshot_without_ftl_reports_host_writes(self):
        device = SimulatedSSD(PCIE_SSD, num_pages=64)
        monitor = SmartMonitor(device)
        device.write_page(0)
        snapshot = monitor.snapshot()
        assert snapshot.host_writes == 1
        assert snapshot.nand_writes == 1
        assert snapshot.erase_cycles == 0

    def test_delta_between_snapshots(self):
        device = SimulatedSSD(PCIE_SSD, num_pages=64)
        monitor = SmartMonitor(device)
        device.write_page(0)
        before = monitor.snapshot()
        device.write_page(1)
        device.read_page(1)
        delta = monitor.snapshot().delta(before)
        assert delta.host_writes == 1
        assert delta.host_reads == 1
        assert delta.power_on_us > 0

    def test_ftl_backed_snapshot_counts_nand_writes(self):
        import random
        device = SimulatedSSD(PCIE_SSD, num_pages=128, with_ftl=True)
        device.format_pages(range(128))
        monitor = SmartMonitor(device)
        rng = random.Random(9)
        for _ in range(3000):
            device.write_page(rng.randrange(128))
        snapshot = monitor.snapshot()
        assert snapshot.nand_writes > snapshot.host_writes
        assert snapshot.write_amplification > 1.0
        assert snapshot.erase_cycles > 0
        assert monitor.wear_percentage() > 0.0

    def test_endurance_validation(self):
        device = SimulatedSSD(PCIE_SSD, num_pages=8)
        with pytest.raises(ValueError):
            SmartMonitor(device, endurance_cycles=0)
