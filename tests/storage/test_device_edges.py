"""Edge-case coverage for the device and probe beyond the core tests."""

import pytest

from repro.storage.device import SimulatedSSD
from repro.storage.latency import LatencyModel
from repro.storage.probe import measure_concurrency
from repro.storage.profiles import DeviceProfile, emulated_profile


class TestLatencyModelEdges:
    def test_write_queue_defaults_to_read_queue(self):
        model = LatencyModel(queue_overhead_us=0.5)
        assert model.queue_overhead_write_us == 0.5

    def test_separate_write_queue_coefficient(self):
        model = LatencyModel(
            read_latency_us=100.0, alpha=1.0, k_r=10, k_w=10,
            submit_overhead_us=0.0, queue_overhead_us=0.0,
            queue_overhead_write_us=1.0,
        )
        assert model.read_batch_us(5) == pytest.approx(100.0)
        assert model.write_batch_us(5) == pytest.approx(100.0 + 25.0)

    def test_negative_write_queue_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(queue_overhead_write_us=-0.1)


class TestProbeEdges:
    def test_overhead_free_profile_ties_resolve_to_smallest(self):
        """With no queue pressure, n=k and n=2k tie in throughput; the
        probe must report the smallest batch achieving the maximum."""
        profile = emulated_profile(alpha=2.0, k_w=6, k_r=12)
        assert measure_concurrency(profile, "write", max_batch=24) == 6
        assert measure_concurrency(profile, "read", max_batch=36) == 12

    def test_probe_respects_max_batch(self):
        profile = DeviceProfile(
            name="wide", alpha=1.0, k_r=64, k_w=64, read_latency_us=50.0,
            submit_overhead_us=0.0, queue_overhead_us=0.0,
        )
        # Capped below the true concurrency: best observable is the cap.
        assert measure_concurrency(profile, "read", max_batch=16) == 16


class TestDeviceEdges:
    def test_mapping_write_batch_with_none_payload(self):
        device = SimulatedSSD(emulated_profile(2.0, 4), num_pages=16)
        device.write_batch({3: None})
        assert device.contains(3)
        assert device.read_page(3) is None

    def test_iterable_batch_of_fresh_pages(self):
        device = SimulatedSSD(emulated_profile(2.0, 4), num_pages=16)
        device.write_batch([1, 2, 3])
        for page in (1, 2, 3):
            assert device.contains(page)

    def test_shared_clock_across_wal_and_data(self):
        from repro.bufferpool.wal import WriteAheadLog
        from repro.storage.clock import VirtualClock

        clock = VirtualClock()
        data = SimulatedSSD(emulated_profile(2.0, 4), num_pages=16, clock=clock)
        wal = WriteAheadLog(clock, records_per_page=1)
        data.read_page(0)
        t_after_read = clock.now_us
        wal.log_update(0)
        assert clock.now_us > t_after_read
        assert wal.device.clock is data.clock
