"""Tests for the simulated SSD."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import PCIE_SSD, DeviceProfile

FLAT = DeviceProfile(
    name="flat", alpha=2.0, k_r=4, k_w=4, read_latency_us=100.0,
    submit_overhead_us=0.0, queue_overhead_us=0.0,
)


def make_device(num_pages=128, profile=FLAT, **kwargs):
    return SimulatedSSD(profile, num_pages=num_pages, **kwargs)


class TestBasics:
    def test_read_advances_clock_by_read_latency(self):
        device = make_device()
        device.read_page(0)
        assert device.clock.now_us == pytest.approx(100.0)

    def test_write_advances_clock_by_alpha_reads(self):
        device = make_device()
        device.write_page(0, payload=1)
        assert device.clock.now_us == pytest.approx(200.0)

    def test_shared_clock(self):
        clock = VirtualClock()
        a = make_device(clock=clock)
        b = make_device(clock=clock)
        a.read_page(0)
        b.read_page(0)
        assert clock.now_us == pytest.approx(200.0)

    def test_read_of_unwritten_page_returns_none(self):
        assert make_device().read_page(3) is None

    def test_read_after_write_returns_payload(self):
        device = make_device()
        device.write_page(7, payload="hello")
        assert device.read_page(7) == "hello"

    def test_out_of_range_read_rejected(self):
        with pytest.raises(IndexError):
            make_device(num_pages=10).read_page(10)

    def test_out_of_range_write_rejected(self):
        with pytest.raises(IndexError):
            make_device(num_pages=10).write_page(-1)

    def test_unbounded_device_accepts_any_page(self):
        device = SimulatedSSD(FLAT)
        device.write_page(10**9, payload=1)
        assert device.read_page(10**9) == 1

    def test_contains(self):
        device = make_device()
        assert not device.contains(5)
        device.write_page(5)
        assert device.contains(5)


class TestBatches:
    def test_full_write_wave_costs_single_write(self):
        device = make_device()
        device.write_batch({p: p for p in range(4)})
        assert device.clock.now_us == pytest.approx(200.0)

    def test_oversized_batch_takes_two_waves(self):
        device = make_device()
        device.write_batch({p: p for p in range(5)})
        assert device.clock.now_us == pytest.approx(400.0)

    def test_read_batch_returns_payloads_in_order(self):
        device = make_device()
        device.write_batch({3: "c", 1: "a", 2: "b"})
        assert device.read_batch([1, 2, 3, 4]) == ["a", "b", "c", None]

    def test_duplicate_pages_in_write_batch_rejected(self):
        device = make_device()
        with pytest.raises(ValueError):
            device.write_batch([1, 1])

    def test_write_batch_from_iterable_preserves_payloads(self):
        device = make_device()
        device.write_page(1, payload="keep")
        device.write_batch([1, 2])
        assert device.read_page(1) == "keep"

    def test_empty_batches_free(self):
        device = make_device()
        device.read_batch([])
        device.write_batch({})
        assert device.clock.now_us == 0.0
        assert device.stats.total_ios == 0


class TestStats:
    def test_counts_reads_and_writes(self):
        device = make_device()
        device.read_batch([0, 1, 2])
        device.write_batch({3: 0, 4: 0})
        assert device.stats.reads == 3
        assert device.stats.writes == 2
        assert device.stats.read_batches == 1
        assert device.stats.write_batches == 1

    def test_tracks_largest_batches(self):
        device = make_device()
        device.write_batch({p: 0 for p in range(6)})
        device.write_page(9)
        assert device.stats.largest_write_batch == 6

    def test_write_batch_histogram(self):
        device = make_device()
        device.write_page(0)
        device.write_page(1)
        device.write_batch({2: 0, 3: 0})
        assert device.stats.write_batch_size_histogram == {1: 2, 2: 1}

    def test_mean_write_batch(self):
        device = make_device()
        device.write_page(0)
        device.write_batch({1: 0, 2: 0, 3: 0})
        assert device.stats.mean_write_batch == pytest.approx(2.0)

    def test_time_split_by_kind(self):
        device = make_device()
        device.read_page(0)
        device.write_page(1)
        assert device.stats.read_time_us == pytest.approx(100.0)
        assert device.stats.write_time_us == pytest.approx(200.0)
        assert device.stats.total_time_us == pytest.approx(300.0)

    def test_reset_stats(self):
        device = make_device()
        device.write_page(0)
        device.reset_stats()
        assert device.stats.total_ios == 0
        # payloads survive a stats reset
        assert device.contains(0)

    def test_format_pages_resets_counters(self):
        device = make_device()
        device.format_pages(range(128))
        assert device.stats.writes == 0
        assert device.contains(127)
        assert device.clock.now_us == 0.0


class TestFtlIntegration:
    def test_ftl_requires_num_pages(self):
        with pytest.raises(ValueError):
            SimulatedSSD(FLAT, with_ftl=True)

    def test_ftl_counts_physical_writes(self):
        device = make_device(num_pages=64, with_ftl=True)
        for _ in range(3):
            for page in range(64):
                device.write_page(page)
        assert device.ftl is not None
        assert device.ftl.counters.logical_writes == 192
        assert device.ftl.counters.physical_writes >= 192

    def test_gc_produces_write_amplification(self):
        device = make_device(num_pages=256, with_ftl=True)
        device.format_pages(range(256))
        import random
        rng = random.Random(5)
        for _ in range(4000):
            device.write_page(rng.randrange(256))
        assert device.ftl.counters.write_amplification > 1.0


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(0, 1000)),
            min_size=1,
            max_size=200,
        )
    )
    def test_read_after_write_durability(self, writes):
        """The last write to each page is always what a read returns."""
        device = make_device(num_pages=64)
        expected = {}
        for page, value in writes:
            device.write_page(page, payload=value)
            expected[page] = value
        for page, value in expected.items():
            assert device.read_page(page) == value

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 20), min_size=1, max_size=30))
    def test_clock_equals_sum_of_model_costs(self, batch_sizes):
        device = make_device(num_pages=4096)
        expected = 0.0
        next_page = 0
        for size in batch_sizes:
            pages = list(range(next_page, next_page + size))
            next_page += size
            device.write_batch(dict.fromkeys(pages, 0))
            expected += device.model.write_batch_us(size)
        assert device.clock.now_us == pytest.approx(expected)

    def test_pcie_profile_write_wave(self):
        device = SimulatedSSD(PCIE_SSD, num_pages=64)
        t0 = device.clock.now_us
        device.write_batch({p: 0 for p in range(8)})
        one_wave = device.clock.now_us - t0
        t1 = device.clock.now_us
        device.write_batch({p: 0 for p in range(9)})
        two_waves = device.clock.now_us - t1
        assert two_waves > one_wave
