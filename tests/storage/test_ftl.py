"""Tests for the flash translation layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.ftl import FlashTranslationLayer, FtlError


def make_ftl(pages=128, ppb=8, op=0.15, threshold=2):
    return FlashTranslationLayer(
        num_logical_pages=pages,
        pages_per_block=ppb,
        over_provision=op,
        gc_free_block_threshold=threshold,
    )


class TestValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlashTranslationLayer(0)

    def test_rejects_tiny_blocks(self):
        with pytest.raises(ValueError):
            FlashTranslationLayer(16, pages_per_block=1)

    def test_rejects_bad_over_provision(self):
        with pytest.raises(ValueError):
            FlashTranslationLayer(16, over_provision=0.0)
        with pytest.raises(ValueError):
            FlashTranslationLayer(16, over_provision=1.5)

    def test_rejects_zero_gc_threshold(self):
        with pytest.raises(ValueError):
            FlashTranslationLayer(16, gc_free_block_threshold=0)

    def test_rejects_out_of_range_lpn(self):
        ftl = make_ftl(pages=8)
        with pytest.raises(IndexError):
            ftl.write(8)
        with pytest.raises(IndexError):
            ftl.read(-1)


class TestMapping:
    def test_unwritten_page_is_unmapped(self):
        ftl = make_ftl()
        assert not ftl.is_mapped(0)
        assert ftl.physical_location(0) is None
        assert ftl.read(0) is False

    def test_write_maps_page(self):
        ftl = make_ftl()
        ftl.write(5)
        assert ftl.is_mapped(5)
        assert ftl.read(5) is True

    def test_update_is_out_of_place(self):
        ftl = make_ftl()
        ftl.write(5)
        first = ftl.physical_location(5)
        ftl.write(5)
        second = ftl.physical_location(5)
        assert first != second

    def test_trim_unmaps(self):
        ftl = make_ftl()
        ftl.write(5)
        ftl.trim(5)
        assert not ftl.is_mapped(5)
        ftl.check_invariants()

    def test_trim_of_unmapped_page_is_noop(self):
        ftl = make_ftl()
        ftl.trim(3)
        assert not ftl.is_mapped(3)


class TestCounters:
    def test_logical_equals_host_writes(self):
        ftl = make_ftl()
        for page in range(20):
            ftl.write(page)
        assert ftl.counters.logical_writes == 20

    def test_physical_at_least_logical(self):
        ftl = make_ftl()
        rng = random.Random(1)
        for _ in range(2000):
            ftl.write(rng.randrange(128))
        counters = ftl.counters
        assert counters.physical_writes >= counters.logical_writes
        assert counters.physical_writes == (
            counters.logical_writes + counters.gc_relocations
        )

    def test_write_amplification_default_one(self):
        assert make_ftl().counters.write_amplification == 1.0

    def test_gc_triggers_under_churn(self):
        ftl = make_ftl(pages=64, ppb=8, op=0.2)
        rng = random.Random(2)
        for _ in range(3000):
            ftl.write(rng.randrange(64))
        assert ftl.counters.erases > 0
        assert ftl.counters.gc_invocations > 0
        assert ftl.counters.write_amplification > 1.0

    def test_reset_counters_keeps_mapping(self):
        ftl = make_ftl()
        ftl.write(1)
        ftl.reset_counters()
        assert ftl.counters.logical_writes == 0
        assert ftl.is_mapped(1)

    def test_counters_copy_is_independent(self):
        ftl = make_ftl()
        ftl.write(0)
        snapshot = ftl.counters.copy()
        ftl.write(1)
        assert snapshot.logical_writes == 1
        assert ftl.counters.logical_writes == 2


class TestGarbageCollection:
    def test_sustained_overwrites_never_exhaust_free_blocks(self):
        ftl = make_ftl(pages=100, ppb=8, op=0.3)
        rng = random.Random(3)
        for _ in range(10_000):
            ftl.write(rng.randrange(100))
        assert ftl.free_block_count >= ftl.gc_free_block_threshold

    def test_hot_cold_separation_wears_evenly_enough(self):
        """Wear-leveling tie-break keeps erase counts from diverging wildly."""
        ftl = make_ftl(pages=128, ppb=8, op=0.3)
        rng = random.Random(4)
        for _ in range(20_000):
            # 90% of writes to 10% of pages
            if rng.random() < 0.9:
                ftl.write(rng.randrange(12))
            else:
                ftl.write(rng.randrange(128))
        erases = [count for count in ftl.erase_counts() if count > 0]
        assert erases, "expected some erases under churn"
        assert max(erases) <= 20 * (sum(erases) / len(erases))

    def test_unsatisfiable_gc_threshold_raises_instead_of_looping(self):
        """An impossible free-pool target surfaces as FtlError, not a hang."""
        ftl = make_ftl(pages=16, ppb=4)
        for page in range(16):
            ftl.write(page)
        ftl.gc_free_block_threshold = ftl.num_blocks + 1
        with pytest.raises(FtlError):
            ftl.write(0)


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["write", "trim"]), st.integers(0, 63)),
            min_size=1,
            max_size=400,
        )
    )
    def test_invariants_hold_under_random_operations(self, operations):
        ftl = make_ftl(pages=64, ppb=8, op=0.25)
        mapped = set()
        for op, page in operations:
            if op == "write":
                ftl.write(page)
                mapped.add(page)
            else:
                ftl.trim(page)
                mapped.discard(page)
        ftl.check_invariants()
        for page in range(64):
            assert ftl.is_mapped(page) == (page in mapped)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_write_amplification_bounded(self, seed):
        """WA stays below the theoretical worst case for the configuration."""
        ftl = make_ftl(pages=64, ppb=8, op=0.25)
        rng = random.Random(seed)
        for _ in range(1500):
            ftl.write(rng.randrange(64))
        # Greedy GC on uniform traffic cannot amplify writes by more than
        # pages_per_block (every GC would have to move ppb - 1 pages).
        assert ftl.counters.write_amplification < 8
