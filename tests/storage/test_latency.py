"""Tests for the analytical latency model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage.latency import LatencyModel


def plain(alpha=2.0, k_r=8, k_w=4, read=100.0):
    """A model without submission/queue overheads (pure wave model)."""
    return LatencyModel(
        read_latency_us=read, alpha=alpha, k_r=k_r, k_w=k_w,
        submit_overhead_us=0.0, queue_overhead_us=0.0,
    )


class TestValidation:
    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            LatencyModel(alpha=0.5)

    def test_rejects_zero_read_latency(self):
        with pytest.raises(ValueError):
            LatencyModel(read_latency_us=0.0)

    def test_rejects_zero_concurrency(self):
        with pytest.raises(ValueError):
            LatencyModel(k_r=0)
        with pytest.raises(ValueError):
            LatencyModel(k_w=0)

    def test_rejects_negative_overheads(self):
        with pytest.raises(ValueError):
            LatencyModel(submit_overhead_us=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(queue_overhead_us=-1.0)

    def test_rejects_negative_batch(self):
        with pytest.raises(ValueError):
            plain().read_batch_us(-1)


class TestWaveModel:
    def test_single_read_costs_read_latency(self):
        assert plain().read_batch_us(1) == pytest.approx(100.0)

    def test_single_write_costs_alpha_reads(self):
        assert plain(alpha=3.0).write_batch_us(1) == pytest.approx(300.0)

    def test_write_latency_property(self):
        assert plain(alpha=2.8).write_latency_us == pytest.approx(280.0)

    def test_empty_batch_is_free(self):
        assert plain().read_batch_us(0) == 0.0
        assert plain().write_batch_us(0) == 0.0

    def test_full_wave_costs_one_latency(self):
        model = plain(k_w=4)
        assert model.write_batch_us(4) == model.write_batch_us(1)

    def test_wave_boundary(self):
        model = plain(k_w=4)
        assert model.write_batch_us(5) == pytest.approx(2 * model.write_batch_us(1))

    def test_read_and_write_concurrency_independent(self):
        model = plain(k_r=8, k_w=2)
        assert model.read_batch_us(8) == pytest.approx(100.0)
        assert model.write_batch_us(8) == pytest.approx(4 * 200.0)

    @given(st.integers(min_value=1, max_value=200))
    def test_batch_matches_closed_form(self, n):
        model = plain(alpha=2.5, k_w=7)
        expected = math.ceil(n / 7) * 250.0
        assert model.write_batch_us(n) == pytest.approx(expected)

    @given(st.integers(min_value=1, max_value=100))
    def test_batch_latency_monotone_in_n(self, n):
        model = LatencyModel(alpha=2.0, k_r=8, k_w=8)
        assert model.write_batch_us(n + 1) >= model.write_batch_us(n)


class TestOverheads:
    def test_submit_overhead_per_io(self):
        model = LatencyModel(
            read_latency_us=100.0, alpha=1.0, k_r=10, k_w=10,
            submit_overhead_us=2.0, queue_overhead_us=0.0,
        )
        assert model.read_batch_us(5) == pytest.approx(100.0 + 5 * 2.0)

    def test_queue_overhead_quadratic(self):
        model = LatencyModel(
            read_latency_us=100.0, alpha=1.0, k_r=100, k_w=100,
            submit_overhead_us=0.0, queue_overhead_us=0.5,
        )
        assert model.read_batch_us(10) == pytest.approx(100.0 + 0.5 * 100)


class TestAmortization:
    def test_amortized_write_minimised_at_k_w(self):
        """Figure 10g's shape: per-page cost is best at n = k_w."""
        model = LatencyModel(
            read_latency_us=90.0, alpha=2.8, k_r=80, k_w=8,
            submit_overhead_us=1.0, queue_overhead_us=0.05,
        )
        costs = {n: model.amortized_write_us(n) for n in range(1, 33)}
        best = min(costs, key=costs.__getitem__)
        assert best == 8

    def test_amortized_cost_declines_up_to_k_w(self):
        model = LatencyModel(read_latency_us=100.0, alpha=2.0, k_r=8, k_w=8)
        for n in range(1, 8):
            assert model.amortized_write_us(n + 1) < model.amortized_write_us(n)

    def test_amortized_cost_worse_beyond_k_w_with_queue_pressure(self):
        model = LatencyModel(
            read_latency_us=100.0, alpha=2.0, k_r=8, k_w=8,
            queue_overhead_us=0.05,
        )
        assert model.amortized_write_us(16) > model.amortized_write_us(8)

    def test_amortized_rejects_zero(self):
        with pytest.raises(ValueError):
            plain().amortized_write_us(0)

    def test_effective_asymmetry_bridged(self):
        """With n_w = k_w >= alpha, the effective asymmetry drops below 1."""
        model = plain(alpha=2.8, k_w=8)
        assert model.effective_asymmetry(8) == pytest.approx(2.8 / 8)
        assert model.effective_asymmetry(8) < 1.0

    def test_effective_asymmetry_unbatched_equals_alpha(self):
        model = plain(alpha=2.8)
        assert model.effective_asymmetry(1) == pytest.approx(2.8)
