"""A controllable PageStateView for standalone policy testing."""

from __future__ import annotations


class FakeView:
    """Dirty/pinned state driven directly by the test."""

    def __init__(self) -> None:
        self.dirty: set[int] = set()
        self.pinned: set[int] = set()

    def is_dirty(self, page: int) -> bool:
        return page in self.dirty

    def is_pinned(self, page: int) -> bool:
        return page in self.pinned
