"""Tests for the FOR-inspired operation-aware policy."""

import pytest

from repro.policies.flash_for import FORPolicy


def make_for(view, pages=(), alpha=2.0, decay=0.95):
    policy = FORPolicy(alpha=alpha, decay=decay)
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            FORPolicy(alpha=0.5)
        with pytest.raises(ValueError):
            FORPolicy(decay=0.0)
        with pytest.raises(ValueError):
            FORPolicy(decay=1.5)


class TestWeights:
    def test_clean_weight_is_read_frequency(self, view):
        policy = make_for(view, [1])
        policy.on_access(1, is_write=False)
        assert policy.weight(1) == pytest.approx(1.0 * 0.95 + 1.0)

    def test_dirty_page_gains_asymmetry_weight(self, view):
        policy = make_for(view, [1], alpha=3.0)
        policy.on_access(1, is_write=True)
        view.dirty.add(1)
        clean_equivalent = policy._read_freq[1]
        assert policy.weight(1) == pytest.approx(clean_equivalent + 3.0)

    def test_decay_fades_history(self, view):
        policy = make_for(view, [1], decay=0.5)
        for _ in range(20):
            policy.on_access(1)
        stable_weight = policy.weight(1)
        # Geometric series: bounded by 1 / (1 - decay) + 1.
        assert stable_weight < 3.0

    def test_cold_insert_weightless(self, view):
        policy = make_for(view)
        policy.insert(1, cold=True)
        assert policy.weight(1) == 0.0


class TestVictimSelection:
    def test_evicts_lowest_weight(self, view):
        policy = make_for(view, [1, 2, 3])
        policy.on_access(2)
        policy.on_access(3)
        assert policy.select_victim() == 1

    def test_dirty_frequent_writer_retained(self, view):
        """A hot dirty page outweighs a lukewarm clean one (alpha scaling)."""
        policy = make_for(view, [1, 2], alpha=4.0)
        policy.on_access(1, is_write=True)   # dirty, written once
        policy.on_access(2, is_write=False)
        policy.on_access(2, is_write=False)  # clean, read twice
        view.dirty.add(1)
        # weight(1) ~ alpha * 1 = 4 > weight(2) ~ 2.9
        assert policy.select_victim() == 2

    def test_recency_breaks_ties(self, view):
        policy = make_for(view, [1, 2])
        assert policy.select_victim() == 1

    def test_pinned_skipped(self, view):
        policy = make_for(view, [1, 2])
        view.pinned.add(1)
        assert policy.select_victim() == 2

    def test_order_head_matches_victim(self, view):
        policy = make_for(view, [1, 2, 3, 4])
        policy.on_access(3, is_write=True)
        view.dirty.add(3)
        order = list(policy.eviction_order())
        assert policy.select_victim() == order[0]


class TestLifecycle:
    def test_double_insert_rejected(self, view):
        policy = make_for(view, [1])
        with pytest.raises(ValueError):
            policy.insert(1)

    def test_remove_cleans_state(self, view):
        policy = make_for(view, [1])
        policy.remove(1)
        assert 1 not in policy
        with pytest.raises(KeyError):
            policy.on_access(1)

    def test_registry_integration(self):
        from repro.policies.registry import display_name, make_policy

        policy = make_policy("for", 16)
        assert isinstance(policy, FORPolicy)
        assert display_name("for") == "FOR"
