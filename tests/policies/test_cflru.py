"""Tests for CFLRU (clean-first LRU)."""

import pytest

from repro.policies.cflru import CFLRUPolicy


def make_cflru(view, pages=(), capacity=6, window_fraction=0.5):
    policy = CFLRUPolicy(capacity=capacity, window_fraction=window_fraction)
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CFLRUPolicy(capacity=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            CFLRUPolicy(capacity=10, window_fraction=0.0)
        with pytest.raises(ValueError):
            CFLRUPolicy(capacity=10, window_fraction=1.5)

    def test_paper_default_window_is_one_third(self):
        policy = CFLRUPolicy(capacity=9)
        assert policy.window_size == 3

    def test_window_at_least_one(self):
        policy = CFLRUPolicy(capacity=2, window_fraction=0.1)
        assert policy.window_size == 1


class TestCleanFirstEviction:
    def test_clean_page_preferred_inside_window(self, view):
        # LRU order: 1 2 3 4 5 6; window (fraction .5 of capacity 6) = {1,2,3}
        policy = make_cflru(view, [1, 2, 3, 4, 5, 6])
        view.dirty.update([1, 2])
        assert policy.select_victim() == 3

    def test_falls_back_to_lru_dirty_when_window_all_dirty(self, view):
        policy = make_cflru(view, [1, 2, 3, 4, 5, 6])
        view.dirty.update([1, 2, 3])
        assert policy.select_victim() == 1

    def test_behaves_like_lru_when_all_clean(self, view):
        policy = make_cflru(view, [1, 2, 3, 4])
        assert policy.select_victim() == 1

    def test_clean_page_outside_window_not_preferred(self, view):
        """A clean page beyond the window must not jump the queue."""
        policy = make_cflru(view, [1, 2, 3, 4, 5, 6])
        view.dirty.update([1, 2, 3])
        # 4 is clean but outside the window; CFLRU evicts dirty LRU page 1.
        assert policy.select_victim() == 1

    def test_pinned_pages_skipped(self, view):
        policy = make_cflru(view, [1, 2, 3, 4])
        view.pinned.add(1)
        assert policy.select_victim() == 2

    def test_empty_returns_none(self, view):
        assert make_cflru(view).select_victim() is None

    def test_access_moves_page_out_of_window(self, view):
        policy = make_cflru(view, [1, 2, 3, 4, 5, 6])
        policy.on_access(1)  # 1 becomes MRU; window now {2, 3, 4}
        view.dirty.add(2)
        assert policy.select_victim() == 3


class TestEvictionOrder:
    def test_order_clean_window_then_dirty_window_then_rest(self, view):
        policy = make_cflru(view, [1, 2, 3, 4, 5, 6])
        view.dirty.update([1, 3])
        order = list(policy.eviction_order())
        assert order == [2, 1, 3, 4, 5, 6]

    def test_order_contains_all_unpinned(self, view):
        policy = make_cflru(view, [1, 2, 3, 4])
        view.pinned.add(2)
        assert sorted(policy.eviction_order()) == [1, 3, 4]

    def test_order_head_matches_victim(self, view):
        policy = make_cflru(view, [1, 2, 3, 4, 5, 6])
        view.dirty.update([1, 2])
        order = list(policy.eviction_order())
        assert policy.select_victim() == order[0]

    def test_next_dirty_follows_virtual_order(self, view):
        policy = make_cflru(view, [1, 2, 3, 4, 5, 6])
        view.dirty.update([1, 3, 5])
        # virtual order: clean window [2], dirty window [1, 3], rest [4,5,6]
        assert policy.next_dirty(3) == [1, 3, 5]
