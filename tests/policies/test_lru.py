"""Tests for LRU replacement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.lru import LRUPolicy


def make_lru(view, pages=()):
    policy = LRUPolicy()
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestMembership:
    def test_insert_and_contains(self, view):
        policy = make_lru(view, [1, 2])
        assert 1 in policy
        assert 3 not in policy
        assert len(policy) == 2

    def test_double_insert_rejected(self, view):
        policy = make_lru(view, [1])
        with pytest.raises(ValueError):
            policy.insert(1)

    def test_remove(self, view):
        policy = make_lru(view, [1, 2])
        policy.remove(1)
        assert 1 not in policy
        assert len(policy) == 1

    def test_remove_untracked_rejected(self, view):
        with pytest.raises(KeyError):
            make_lru(view).remove(9)

    def test_access_untracked_rejected(self, view):
        with pytest.raises(KeyError):
            make_lru(view).on_access(9)

    def test_pages_returns_all(self, view):
        policy = make_lru(view, [3, 1, 2])
        assert sorted(policy.pages()) == [1, 2, 3]


class TestOrdering:
    def test_victim_is_least_recently_used(self, view):
        policy = make_lru(view, [1, 2, 3])
        assert policy.select_victim() == 1

    def test_access_refreshes_recency(self, view):
        policy = make_lru(view, [1, 2, 3])
        policy.on_access(1)
        assert policy.select_victim() == 2

    def test_eviction_order_matches_lru_order(self, view):
        policy = make_lru(view, [1, 2, 3])
        policy.on_access(2)
        assert list(policy.eviction_order()) == [1, 3, 2]

    def test_cold_insert_goes_to_eviction_end(self, view):
        policy = make_lru(view, [1, 2])
        policy.insert(99, cold=True)
        assert policy.select_victim() == 99

    def test_pinned_pages_skipped(self, view):
        policy = make_lru(view, [1, 2, 3])
        view.pinned.add(1)
        assert policy.select_victim() == 2
        assert list(policy.eviction_order()) == [2, 3]

    def test_all_pinned_yields_none(self, view):
        policy = make_lru(view, [1, 2])
        view.pinned.update([1, 2])
        assert policy.select_victim() is None
        assert list(policy.eviction_order()) == []

    def test_empty_policy_yields_none(self, view):
        assert make_lru(view).select_victim() is None

    def test_eviction_order_has_no_side_effects(self, view):
        policy = make_lru(view, [1, 2, 3])
        first = list(policy.eviction_order())
        second = list(policy.eviction_order())
        assert first == second
        assert policy.select_victim() == first[0]


class TestVirtualOrderHelpers:
    def test_next_dirty_filters(self, view):
        policy = make_lru(view, [1, 2, 3, 4])
        view.dirty.update([2, 4])
        assert policy.next_dirty(2) == [2, 4]
        assert policy.next_dirty(1) == [2]
        assert policy.next_dirty(10) == [2, 4]

    def test_next_evictable(self, view):
        policy = make_lru(view, [1, 2, 3])
        assert policy.next_evictable(2) == [1, 2]

    def test_negative_n_rejected(self, view):
        policy = make_lru(view, [1])
        with pytest.raises(ValueError):
            policy.next_dirty(-1)
        with pytest.raises(ValueError):
            policy.next_evictable(-1)


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["insert", "access", "remove"]), st.integers(0, 20)),
            max_size=200,
        )
    )
    def test_reference_model(self, operations):
        """LRU policy matches a naive list-based reference implementation."""
        from tests.policies.fake_view import FakeView

        view = FakeView()
        policy = make_lru(view)
        reference: list[int] = []  # index 0 = LRU end
        for op, page in operations:
            if op == "insert" and page not in reference:
                policy.insert(page)
                reference.append(page)
            elif op == "access" and page in reference:
                policy.on_access(page)
                reference.remove(page)
                reference.append(page)
            elif op == "remove" and page in reference:
                policy.remove(page)
                reference.remove(page)
        assert list(policy.eviction_order()) == reference
        assert len(policy) == len(reference)
