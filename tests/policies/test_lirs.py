"""Tests for LIRS replacement."""

import random

import pytest

from repro.policies.lirs import LIRSPolicy


def make_lirs(view, capacity=10, hir_fraction=0.2, pages=()):
    policy = LIRSPolicy(capacity=capacity, hir_fraction=hir_fraction)
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            LIRSPolicy(capacity=1)
        with pytest.raises(ValueError):
            LIRSPolicy(capacity=10, hir_fraction=0.0)
        with pytest.raises(ValueError):
            LIRSPolicy(capacity=10, hir_fraction=1.0)

    def test_targets_partition_capacity(self):
        policy = LIRSPolicy(capacity=10, hir_fraction=0.2)
        assert policy.hir_target == 2
        assert policy.lir_target == 8


class TestStatusTransitions:
    def test_warmup_fills_lir_first(self, view):
        policy = make_lirs(view, capacity=10, pages=[1, 2, 3])
        for page in (1, 2, 3):
            assert policy.status_of(page) == "lir"

    def test_overflow_inserts_become_hir(self, view):
        policy = make_lirs(view, capacity=5, hir_fraction=0.4,
                           pages=[1, 2, 3, 4])
        # lir_target = 3: pages 1-3 LIR, 4 HIR.
        assert policy.status_of(4) == "hir"

    def test_hir_hit_in_stack_promotes(self, view):
        policy = make_lirs(view, capacity=5, hir_fraction=0.4,
                           pages=[1, 2, 3, 4])
        policy.on_access(4)  # 4 was in S as HIR: low IRR -> LIR
        assert policy.status_of(4) == "lir"
        # Some previous LIR page was demoted to keep the target.
        statuses = [policy.status_of(p) for p in (1, 2, 3)]
        assert statuses.count("hir") == 1

    def test_ghost_reappearance_promotes(self, view):
        policy = make_lirs(view, capacity=5, hir_fraction=0.4,
                           pages=[1, 2, 3, 4])
        policy.remove(4)  # leaves a ghost in S
        policy.insert(4)  # back within stack memory: straight to LIR
        assert policy.status_of(4) == "lir"

    def test_cold_insert_is_hir_front(self, view):
        policy = make_lirs(view, capacity=5, hir_fraction=0.4,
                           pages=[1, 2, 3, 4])
        policy.insert(9, cold=True)
        assert policy.status_of(9) == "hir"
        assert policy.select_victim() == 9

    def test_remove_untracked_rejected(self, view):
        with pytest.raises(KeyError):
            make_lirs(view).remove(5)

    def test_double_insert_rejected(self, view):
        policy = make_lirs(view, pages=[1])
        with pytest.raises(ValueError):
            policy.insert(1)


class TestVictims:
    def test_hir_queue_drains_before_lir(self, view):
        policy = make_lirs(view, capacity=5, hir_fraction=0.4,
                           pages=[1, 2, 3, 4, 5])
        order = list(policy.eviction_order())
        # HIR pages (4, 5) come before any LIR page.
        hir = {p for p in (1, 2, 3, 4, 5) if policy.status_of(p) == "hir"}
        assert set(order[: len(hir)]) == hir

    def test_pinned_skipped(self, view):
        policy = make_lirs(view, capacity=5, hir_fraction=0.4,
                           pages=[1, 2, 3, 4])
        victim = policy.select_victim()
        view.pinned.add(victim)
        assert policy.select_victim() != victim

    def test_order_head_matches_victim(self, view):
        policy = make_lirs(view, capacity=6, hir_fraction=0.34,
                           pages=[1, 2, 3, 4, 5, 6])
        policy.on_access(5)
        order = list(policy.eviction_order())
        assert policy.select_victim() == order[0]

    def test_empty_returns_none(self, view):
        assert make_lirs(view).select_victim() is None


class TestScanResistance:
    def test_loop_working_set_survives_scan(self, view):
        """LIRS's signature: a one-pass scan cannot displace the LIR set."""
        policy = make_lirs(view, capacity=10, hir_fraction=0.2)
        # Establish a hot working set (re-referenced -> LIR).
        for page in range(8):
            policy.insert(page)
        for _ in range(3):
            for page in range(8):
                policy.on_access(page)
        # Scan 100 cold pages through the cache.
        for page in range(1000, 1100):
            while len(policy) >= 10:
                victim = policy.select_victim()
                policy.remove(victim)
            policy.insert(page)
        survivors = [p for p in range(8) if p in policy]
        assert len(survivors) >= 7

    def test_lru_style_workload_behaves(self, view):
        """Randomized smoke: structures stay consistent under churn."""
        rng = random.Random(3)
        policy = make_lirs(view, capacity=12, hir_fraction=0.25)
        resident: set[int] = set()
        for _ in range(2000):
            page = rng.randrange(60)
            if page in resident:
                policy.on_access(page)
            else:
                while len(resident) >= 12:
                    victim = policy.select_victim()
                    assert victim in resident
                    policy.remove(victim)
                    resident.discard(victim)
                policy.insert(page)
                resident.add(page)
            assert len(policy) == len(resident)
        assert set(policy.pages()) == resident


class TestIntegration:
    def test_registry_and_ace(self):
        from repro.policies.registry import make_policy
        from repro.bench.runner import StackConfig, build_stack
        from repro.storage.profiles import PCIE_SSD

        assert isinstance(make_policy("lirs", 16), LIRSPolicy)
        config = StackConfig(
            profile=PCIE_SSD, policy="lirs", variant="ace",
            num_pages=256, pool_fraction=0.08,
        )
        manager = build_stack(config)
        rng = random.Random(5)
        for _ in range(800):
            manager.access(rng.randrange(256), rng.random() < 0.5)
        assert manager.pool.used_count <= manager.capacity
        manager.flush_all()
        assert manager.dirty_pages() == []
