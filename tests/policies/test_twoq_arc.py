"""Tests for 2Q and ARC."""

import pytest

from repro.policies.arc import ARCPolicy
from repro.policies.twoq import TwoQPolicy


def make_twoq(view, capacity=8, pages=()):
    policy = TwoQPolicy(capacity=capacity)
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


def make_arc(view, capacity=8, pages=()):
    policy = ARCPolicy(capacity=capacity)
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestTwoQ:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            TwoQPolicy(capacity=1)
        with pytest.raises(ValueError):
            TwoQPolicy(capacity=8, kin_fraction=0.0)
        with pytest.raises(ValueError):
            TwoQPolicy(capacity=8, kout_fraction=0.0)

    def test_first_touch_enters_a1in(self, view):
        policy = make_twoq(view, pages=[1])
        assert 1 in policy
        assert policy.select_victim() == 1  # A1in is the only queue

    def test_evicted_a1in_page_becomes_ghost(self, view):
        policy = make_twoq(view, capacity=4, pages=[1, 2, 3])
        victim = policy.select_victim()
        policy.remove(victim)
        assert victim in policy.ghost_pages()

    def test_ghost_hit_promotes_to_am(self, view):
        policy = make_twoq(view, capacity=4, pages=[1, 2, 3])
        policy.remove(1)  # 1 becomes a ghost
        policy.insert(1)  # re-fault: straight to Am
        # A1in overflow drains before Am, so 1 should not be the victim.
        order = list(policy.eviction_order())
        assert order[-1] != 1 or order[0] in (2, 3)
        assert 1 in policy

    def test_ghost_queue_bounded(self, view):
        policy = make_twoq(view, capacity=4)
        for page in range(20):
            policy.insert(page)
            policy.remove(page)
        assert len(policy.ghost_pages()) <= policy.kout

    def test_am_hits_refresh_lru(self, view):
        policy = make_twoq(view, capacity=4)
        for page in (1, 2):
            policy.insert(page)
            policy.remove(page)
            policy.insert(page)  # both now in Am
        policy.on_access(1)
        am_order = [p for p in policy.eviction_order()]
        assert am_order.index(2) < am_order.index(1)

    def test_remove_untracked_rejected(self, view):
        with pytest.raises(KeyError):
            make_twoq(view).remove(7)

    def test_eviction_order_covers_all_unpinned(self, view):
        policy = make_twoq(view, capacity=6, pages=[1, 2, 3, 4])
        view.pinned.add(2)
        assert sorted(policy.eviction_order()) == [1, 3, 4]


class TestARC:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            ARCPolicy(capacity=1)

    def test_first_touch_enters_t1(self, view):
        policy = make_arc(view, pages=[1])
        assert 1 in policy
        assert len(policy) == 1

    def test_hit_promotes_t1_to_t2(self, view):
        policy = make_arc(view, pages=[1, 2])
        policy.on_access(1)
        # 2 is still in T1 (seen once); the replacement rule prefers T1.
        assert policy.select_victim() == 2

    def test_b1_ghost_hit_grows_p(self, view):
        policy = make_arc(view, capacity=4, pages=[1, 2])
        policy.remove(1)  # T1 eviction -> B1 ghost
        p_before = policy.p
        policy.insert(1)  # B1 hit: p grows, page enters T2
        assert policy.p > p_before

    def test_b2_ghost_hit_shrinks_p(self, view):
        policy = make_arc(view, capacity=4, pages=[1, 2])
        policy.on_access(1)          # 1 -> T2
        policy.remove(1)             # T2 eviction -> B2 ghost
        policy.insert(3)
        policy.remove(3)             # B1 gets a ghost too
        policy.insert(3)             # B1 hit: p grows above 0
        p_before = policy.p
        policy.insert(1)             # B2 hit: p shrinks
        assert policy.p < p_before

    def test_ghosts_bounded(self, view):
        policy = make_arc(view, capacity=4)
        for page in range(50):
            policy.insert(page)
            policy.remove(page)
        b1, b2 = policy.ghost_sizes()
        assert b1 + b2 <= 2 * policy.capacity

    def test_eviction_order_covers_resident_pages(self, view):
        policy = make_arc(view, capacity=6, pages=[1, 2, 3])
        policy.on_access(2)
        assert sorted(policy.eviction_order()) == [1, 2, 3]

    def test_access_untracked_rejected(self, view):
        with pytest.raises(KeyError):
            make_arc(view).on_access(4)

    def test_remove_untracked_rejected(self, view):
        with pytest.raises(KeyError):
            make_arc(view).remove(4)

    def test_scan_resistance(self, view):
        """A one-pass scan must not flush the frequently-hit working set."""
        policy = make_arc(view, capacity=8)
        # Build a hot working set in T2.
        for page in range(4):
            policy.insert(page)
            policy.on_access(page)
        # Scan 100 cold pages through the cache.
        for page in range(100, 200):
            while len(policy) >= 8:
                victim = policy.select_victim()
                policy.remove(victim)
            policy.insert(page)
        hot_survivors = [p for p in range(4) if p in policy]
        assert len(hot_survivors) >= 2
