"""Tests for the policy registry."""

import pytest

from repro.policies.base import ReplacementPolicy
from repro.policies.cflru import CFLRUPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.registry import (
    PAPER_POLICIES,
    POLICY_NAMES,
    display_name,
    make_policy,
    register_policy,
)


class TestRegistry:
    def test_paper_policies_registered(self):
        for name in PAPER_POLICIES:
            policy = make_policy(name, capacity=16)
            assert isinstance(policy, ReplacementPolicy)

    def test_all_registered_names_construct(self):
        for name in POLICY_NAMES:
            assert isinstance(make_policy(name, 16), ReplacementPolicy)

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known policies"):
            make_policy("mru", 16)

    def test_capacity_forwarded_to_cflru(self):
        policy = make_policy("cflru", capacity=30)
        assert isinstance(policy, CFLRUPolicy)
        assert policy.capacity == 30

    def test_display_names(self):
        assert display_name("clock") == "Clock Sweep"
        assert display_name("lru_wsr") == "LRU-WSR"
        assert display_name("unknown-policy") == "unknown-policy"

    def test_register_custom_policy(self):
        try:
            register_policy("my_lru", lambda capacity: LRUPolicy(), display="My LRU")
            policy = make_policy("my_lru", 8)
            assert isinstance(policy, LRUPolicy)
            assert display_name("my_lru") == "My LRU"
        finally:
            # Keep the registry clean for other tests.
            from repro.policies import registry
            registry._FACTORIES.pop("my_lru", None)
            registry.DISPLAY_NAMES.pop("my_lru", None)

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError):
            register_policy("lru", lambda capacity: LRUPolicy())
