"""Tests for Clock Sweep (PostgreSQL's default replacement algorithm)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.clock import ClockSweepPolicy


def make_clock(view, pages=(), max_usage=5):
    policy = ClockSweepPolicy(max_usage=max_usage)
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestUsageCounts:
    def test_fresh_insert_starts_at_usage_one(self, view):
        policy = make_clock(view, [1])
        assert policy.usage_count(1) == 1

    def test_cold_insert_starts_at_zero(self, view):
        policy = make_clock(view)
        policy.insert(1, cold=True)
        assert policy.usage_count(1) == 0

    def test_access_increments_up_to_cap(self, view):
        policy = make_clock(view, [1], max_usage=3)
        for _ in range(10):
            policy.on_access(1)
        assert policy.usage_count(1) == 3

    def test_invalid_max_usage_rejected(self):
        with pytest.raises(ValueError):
            ClockSweepPolicy(max_usage=0)


class TestSweep:
    def test_sweep_decrements_and_picks_zero(self, view):
        policy = make_clock(view, [1, 2, 3])
        # All pages start at usage 1; first sweep decrements everyone,
        # wraps, and picks page 1.
        assert policy.select_victim() == 1
        assert policy.usage_count(2) == 0
        assert policy.usage_count(3) == 0

    def test_hand_position_persists(self, view):
        policy = make_clock(view, [1, 2, 3])
        first = policy.select_victim()
        policy.remove(first)
        # Hand is past page 1's slot; pages 2 and 3 now have usage 0.
        assert policy.select_victim() == 2

    def test_hot_page_survives(self, view):
        policy = make_clock(view, [1, 2, 3])
        policy.on_access(1)
        policy.on_access(1)
        assert policy.select_victim() in (2, 3)

    def test_pinned_pages_skipped_without_decrement(self, view):
        policy = make_clock(view, [1, 2])
        view.pinned.add(1)
        victim = policy.select_victim()
        assert victim == 2
        assert policy.usage_count(1) == 1  # pinned page untouched

    def test_all_pinned_returns_none(self, view):
        policy = make_clock(view, [1, 2])
        view.pinned.update([1, 2])
        assert policy.select_victim() is None

    def test_empty_returns_none(self, view):
        assert make_clock(view).select_victim() is None

    def test_slot_reuse_after_removal(self, view):
        policy = make_clock(view, [1, 2, 3])
        policy.remove(2)
        policy.insert(4)
        assert 4 in policy
        assert len(policy) == 3


class TestEvictionOrder:
    def test_order_is_side_effect_free(self, view):
        policy = make_clock(view, [1, 2, 3])
        usage_before = {p: policy.usage_count(p) for p in policy.pages()}
        list(policy.eviction_order())
        assert {p: policy.usage_count(p) for p in policy.pages()} == usage_before

    def test_order_consistent_with_select_victim(self, view):
        """The first page in the virtual order is the next actual victim."""
        policy = make_clock(view, [1, 2, 3, 4])
        policy.on_access(3)
        order = list(policy.eviction_order())
        assert policy.select_victim() == order[0]

    def test_order_emits_every_unpinned_page(self, view):
        policy = make_clock(view, [1, 2, 3, 4, 5])
        view.pinned.add(3)
        order = list(policy.eviction_order())
        assert sorted(order) == [1, 2, 4, 5]

    def test_hot_pages_come_later(self, view):
        policy = make_clock(view, [1, 2, 3])
        policy.on_access(2)
        policy.on_access(2)
        order = list(policy.eviction_order())
        assert order.index(2) == 2

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "access", "victim"]),
                st.integers(0, 12),
            ),
            max_size=120,
        )
    )
    def test_virtual_order_head_always_matches_next_victim(self, operations):
        from tests.policies.fake_view import FakeView

        view = FakeView()
        policy = make_clock(view)
        for op, page in operations:
            if op == "insert" and page not in policy:
                policy.insert(page)
            elif op == "access" and page in policy:
                policy.on_access(page)
            elif op == "victim" and len(policy) > 0:
                order = list(policy.eviction_order())
                victim = policy.select_victim()
                assert victim == order[0]
                policy.remove(victim)
