"""Tests for LRU-WSR (write sequence reordering)."""

import pytest

from repro.policies.lru_wsr import LRUWSRPolicy


def make_wsr(view, pages=()):
    policy = LRUWSRPolicy()
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestColdFlag:
    def test_fresh_page_is_not_cold(self, view):
        policy = make_wsr(view, [1])
        assert not policy.is_cold(1)

    def test_cold_insert_sets_flag(self, view):
        policy = make_wsr(view)
        policy.insert(1, cold=True)
        assert policy.is_cold(1)

    def test_access_clears_cold_flag(self, view):
        policy = make_wsr(view)
        policy.insert(1, cold=True)
        policy.on_access(1)
        assert not policy.is_cold(1)


class TestSecondChance:
    def test_clean_page_evicted_regardless_of_flag(self, view):
        policy = make_wsr(view, [1, 2])
        assert policy.select_victim() == 1

    def test_hot_dirty_page_gets_second_chance(self, view):
        """Paper Fig. 4c: dirty non-cold candidate moves to MRU, flag set."""
        policy = make_wsr(view, [1, 2, 3])
        view.dirty.add(1)
        assert policy.select_victim() == 2
        # Page 1 was moved to MRU with its cold flag set.
        assert policy.is_cold(1)
        assert policy.lru_to_mru() == [2, 3, 1]

    def test_cold_dirty_page_evicted(self, view):
        policy = make_wsr(view, [1, 2])
        view.dirty.add(1)
        policy.select_victim()  # gives 1 its second chance -> order [2, 1]
        view.dirty.add(2)
        # 2 gets its second chance too -> order [1, 2]; 1 is dirty AND cold.
        assert policy.select_victim() == 1

    def test_all_dirty_hot_terminates(self, view):
        policy = make_wsr(view, [1, 2, 3])
        view.dirty.update([1, 2, 3])
        victim = policy.select_victim()
        # After one deferral pass every page is cold; a victim must emerge.
        assert victim in (1, 2, 3)

    def test_pinned_skipped(self, view):
        policy = make_wsr(view, [1, 2])
        view.pinned.add(1)
        assert policy.select_victim() == 2

    def test_all_pinned_returns_none(self, view):
        policy = make_wsr(view, [1])
        view.pinned.add(1)
        assert policy.select_victim() is None

    def test_remove_clears_flag_state(self, view):
        policy = make_wsr(view, [1])
        policy.remove(1)
        with pytest.raises(KeyError):
            policy.is_cold(1)


class TestEvictionOrder:
    def test_clean_pages_in_lru_order(self, view):
        policy = make_wsr(view, [1, 2, 3])
        assert list(policy.eviction_order()) == [1, 2, 3]

    def test_dirty_hot_pages_deferred(self, view):
        policy = make_wsr(view, [1, 2, 3])
        view.dirty.add(1)
        assert list(policy.eviction_order()) == [2, 3, 1]

    def test_dirty_cold_pages_not_deferred(self, view):
        policy = make_wsr(view, [1, 2, 3])
        view.dirty.add(1)
        policy.select_victim()  # sets cold flag on 1, moves it to MRU
        # order now [2, 3, 1]; 1 is dirty+cold so keeps its position.
        assert list(policy.eviction_order()) == [2, 3, 1]

    def test_order_is_side_effect_free(self, view):
        policy = make_wsr(view, [1, 2, 3])
        view.dirty.update([1, 2])
        before = policy.lru_to_mru()
        flags_before = {p: policy.is_cold(p) for p in before}
        list(policy.eviction_order())
        assert policy.lru_to_mru() == before
        assert {p: policy.is_cold(p) for p in before} == flags_before

    def test_order_head_matches_victim(self, view):
        policy = make_wsr(view, [1, 2, 3, 4])
        view.dirty.update([1, 3])
        order = list(policy.eviction_order())
        assert policy.select_victim() == order[0]
