"""``eviction_order()`` purity: the virtual order must be a pure peek.

ACE's Writer and Evictor consume the virtual order repeatedly between
accesses (paper Section III); any state mutation inside
``eviction_order()`` would make the bufferpool's behaviour depend on *how
often the background components look*, which is exactly the coupling the
virtual-order refactoring removes.  This suite drives every registered
policy into a populated, dirty/pinned-mixed state and asserts that
consuming the order — fully, partially, or twice — leaves the policy's
state bit-identical and the order itself stable.

The static side of the same contract is lint rule R003; the runtime side
is the sanitizer's ``virtual-order-purity`` check.  This suite is the
exhaustive per-policy proof.
"""

import random

import pytest

from repro.analyze.sanitizer import _snapshot
from repro.policies.registry import POLICY_NAMES, make_policy

from tests.policies.fake_view import FakeView

CAPACITY = 12


def state_image(policy):
    """An order-sensitive snapshot of everything but the bound view."""
    return {
        name: _snapshot(value)
        for name, value in vars(policy).items()
        if name != "_view"
    }


def populated_policy(name, seed=42):
    """A policy driven through a deterministic mixed workload."""
    view = FakeView()
    policy = make_policy(name, CAPACITY)
    policy.bind(view)
    rng = random.Random(seed)
    resident = set()
    for _ in range(200):
        op = rng.choice(("insert", "insert", "access", "access", "remove"))
        page = rng.randrange(30)
        if op == "insert" and page not in resident:
            if len(resident) >= CAPACITY:
                victim = policy.select_victim()
                if victim is None:
                    continue
                policy.remove(victim)
                resident.discard(victim)
                view.dirty.discard(victim)
                view.pinned.discard(victim)
            policy.insert(page, cold=rng.random() < 0.2)
            resident.add(page)
        elif op == "access" and page in resident:
            is_write = rng.random() < 0.4
            policy.on_access(page, is_write=is_write)
            if is_write:
                view.dirty.add(page)
        elif op == "remove" and page in resident and page not in view.pinned:
            policy.remove(page)
            resident.discard(page)
            view.dirty.discard(page)
    # Pin a couple of resident pages so the pinned filter is exercised.
    for page in sorted(resident)[:2]:
        view.pinned.add(page)
    return policy, view, resident


@pytest.mark.parametrize("name", POLICY_NAMES)
class TestEvictionOrderPurity:
    def test_full_consumption_is_pure(self, name):
        policy, _, _ = populated_policy(name)
        before = state_image(policy)
        order = list(policy.eviction_order())
        assert state_image(policy) == before
        assert order, f"{name}: populated policy yielded an empty order"

    def test_partial_consumption_is_pure(self, name):
        # Background components abandon the iterator early all the time
        # (e.g. next_dirty(n) stops after n dirty pages); breaking out of
        # a generator must be as pure as draining it.
        policy, _, _ = populated_policy(name)
        before = state_image(policy)
        iterator = policy.eviction_order()
        next(iterator, None)
        next(iterator, None)
        iterator.close()
        assert state_image(policy) == before

    def test_order_is_stable_across_peeks(self, name):
        policy, _, _ = populated_policy(name)
        first = list(policy.eviction_order())
        second = list(policy.eviction_order())
        assert first == second

    def test_order_yields_unpinned_members_once(self, name):
        policy, view, resident = populated_policy(name)
        order = list(policy.eviction_order())
        assert len(order) == len(set(order)), f"{name}: duplicate yields"
        for page in order:
            assert page in resident
            assert page not in view.pinned

    def test_next_dirty_is_pure(self, name):
        # next_dirty() is the Writer's entry point into the virtual order;
        # it must inherit eviction_order()'s purity.
        policy, _, _ = populated_policy(name)
        before = state_image(policy)
        policy.next_dirty(4)
        assert state_image(policy) == before
