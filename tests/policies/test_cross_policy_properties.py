"""Generic properties every registered replacement policy must satisfy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies.registry import POLICY_NAMES, make_policy

from tests.policies.fake_view import FakeView

CAPACITY = 12


def drive(policy, view, operations):
    """Apply a random op sequence, keeping membership consistent."""
    resident: set[int] = set()
    for op, page in operations:
        if op == "insert" and page not in resident:
            if len(resident) >= CAPACITY:
                victim = policy.select_victim()
                if victim is None:
                    continue
                policy.remove(victim)
                resident.discard(victim)
                view.dirty.discard(victim)
            policy.insert(page)
            resident.add(page)
        elif op == "access" and page in resident:
            is_write = page % 2 == 0
            policy.on_access(page, is_write=is_write)
            if is_write:
                view.dirty.add(page)
        elif op == "remove" and page in resident and not view.is_dirty(page):
            policy.remove(page)
            resident.discard(page)
    return resident


operations_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "access", "remove"]),
        st.integers(0, 30),
    ),
    max_size=150,
)


@pytest.mark.parametrize("name", POLICY_NAMES)
class TestEveryPolicy:
    @settings(max_examples=15, deadline=None)
    @given(operations=operations_strategy)
    def test_membership_consistency(self, name, operations):
        view = FakeView()
        policy = make_policy(name, CAPACITY)
        policy.bind(view)
        resident = drive(policy, view, operations)
        assert len(policy) == len(resident)
        assert set(policy.pages()) == resident
        for page in resident:
            assert page in policy

    @settings(max_examples=15, deadline=None)
    @given(operations=operations_strategy)
    def test_eviction_order_is_a_permutation(self, name, operations):
        """The virtual order yields every unpinned page exactly once."""
        view = FakeView()
        policy = make_policy(name, CAPACITY)
        policy.bind(view)
        resident = drive(policy, view, operations)
        order = list(policy.eviction_order())
        assert len(order) == len(set(order)), f"{name} yielded duplicates"
        assert set(order) == resident

    @settings(max_examples=15, deadline=None)
    @given(operations=operations_strategy)
    def test_victim_is_resident_and_unpinned(self, name, operations):
        view = FakeView()
        policy = make_policy(name, CAPACITY)
        policy.bind(view)
        resident = drive(policy, view, operations)
        victim = policy.select_victim()
        if resident:
            assert victim in resident
        else:
            assert victim is None

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_pinned_pages_never_selected(self, name, seed):
        rng = random.Random(seed)
        view = FakeView()
        policy = make_policy(name, CAPACITY)
        policy.bind(view)
        pages = list(range(8))
        for page in pages:
            policy.insert(page)
        pinned = set(rng.sample(pages, 4))
        view.pinned |= pinned
        for _ in range(4):
            victim = policy.select_victim()
            assert victim is not None
            assert victim not in pinned
            policy.remove(victim)
        assert set(policy.pages()) >= pinned

    def test_cold_insert_is_early_in_virtual_order(self, name):
        """A cold (prefetched) page must leave among the first — wrong
        predictions have to be cheap for every policy ACE wraps."""
        view = FakeView()
        policy = make_policy(name, CAPACITY)
        policy.bind(view)
        for page in range(6):
            policy.insert(page)
            policy.on_access(page)
        policy.insert(99, cold=True)
        order = list(policy.eviction_order())
        assert order.index(99) <= 2, f"{name} buried the cold page: {order}"
