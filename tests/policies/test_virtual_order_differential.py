"""Differential tests: maintained fast paths vs the reference order.

The incremental virtual-order engine gives every policy maintained
``peek`` / ``next_dirty`` / ``next_clean`` bulk reads; ``eviction_order()``
survives as the *reference* implementation.  These tests drive each policy
through long randomized access/dirty/pin/remove sequences behind a
notifying view (the same ``notifies_state_changes`` handshake the real
manager offers) and assert, after every step, that each fast path returns
exactly the prefix the reference ``eviction_order()`` derivation gives.

A second battery runs a real sanitised :class:`BufferPoolManager` per
policy, so the sanitizer's own fast-path check (``fast-path-*`` /
``policy-pin-mirror`` invariants) is exercised end-to-end under mixed
read/write/pin traffic.
"""

from __future__ import annotations

import random

import pytest

from repro.bufferpool.manager import BufferPoolManager
from repro.policies import POLICY_NAMES, make_policy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile

CAPACITY = 12

#: Overhead-free deterministic profile (mirrors the bufferpool conftest).
TEST_PROFILE = DeviceProfile(
    name="test", alpha=2.0, k_r=4, k_w=4, read_latency_us=100.0,
    submit_overhead_us=0.0, queue_overhead_us=0.0,
)


class NotifyingView:
    """A PageStateView that honours the notification contract.

    Unlike ``FakeView``, it advertises ``notifies_state_changes`` and
    forwards every dirty/clean/pin/unpin transition to the bound policy's
    ``note_*`` hooks — exactly what :class:`BufferPoolManager` does — so
    the policies' maintained fast paths switch on.
    """

    notifies_state_changes = True

    def __init__(self) -> None:
        self.policy = None
        self.dirty: set[int] = set()
        self.pinned: set[int] = set()

    def bind(self, policy) -> None:
        self.policy = policy
        policy.bind(self)

    def is_dirty(self, page: int) -> bool:
        return page in self.dirty

    def is_pinned(self, page: int) -> bool:
        return page in self.pinned

    # -- state transitions, mirrored to the policy ------------------------

    def mark_dirty(self, page: int) -> None:
        if page not in self.dirty:
            self.dirty.add(page)
            self.policy.note_dirty(page)

    def mark_clean(self, page: int) -> None:
        if page in self.dirty:
            self.dirty.discard(page)
            self.policy.note_clean(page)

    def pin(self, page: int) -> None:
        if page not in self.pinned:
            self.pinned.add(page)
            self.policy.note_pinned(page)

    def unpin(self, page: int) -> None:
        if page in self.pinned:
            self.pinned.discard(page)
            self.policy.note_unpinned(page)

    def forget(self, page: int) -> None:
        """Drop residual state for a page the policy no longer tracks."""
        self.dirty.discard(page)
        self.pinned.discard(page)


def assert_fast_paths_match(policy, context: str) -> None:
    """Every bulk read equals its reference prefix, for several widths."""
    for n in (0, 1, 3, 8, len(policy) + 2):
        for label, fast, reference in (
            ("peek", policy.peek, policy._reference_peek),
            ("next_dirty", policy.next_dirty,
             policy._reference_next_dirty),
            ("next_clean", policy.next_clean,
             policy._reference_next_clean),
        ):
            got = fast(n)
            expected = reference(n)
            assert got == expected, (
                f"{type(policy).__name__}.{label}({n}) diverged from the "
                f"reference order {context}: {got} != {expected}"
            )


def drive(policy, view, rng, steps: int, allow_pins: bool) -> None:
    """Randomized insert/access/dirty/clean/pin/unpin/remove traffic."""
    next_page = 0
    for step in range(steps):
        tracked = policy.pages()
        roll = rng.random()
        if not tracked or (roll < 0.25 and len(policy) < CAPACITY):
            cold = rng.random() < 0.3
            policy.insert(next_page, cold=cold)
            if rng.random() < 0.3:
                view.mark_dirty(next_page)
            next_page += 1
        elif roll < 0.55:
            page = rng.choice(tracked)
            is_write = rng.random() < 0.4
            policy.on_access(page, is_write=is_write)
            if is_write:
                view.mark_dirty(page)
        elif roll < 0.70:
            # Dirty an arbitrary resident page (not necessarily the MRU —
            # exercises the note_dirty resync path).
            view.mark_dirty(rng.choice(tracked))
        elif roll < 0.80:
            dirty = [p for p in tracked if view.is_dirty(p)]
            if dirty:
                view.mark_clean(rng.choice(dirty))
        elif roll < 0.90 and allow_pins:
            page = rng.choice(tracked)
            if view.is_pinned(page):
                view.unpin(page)
            else:
                view.pin(page)
        else:
            unpinned = [p for p in tracked if not view.is_pinned(p)]
            if unpinned:
                page = rng.choice(unpinned)
                policy.remove(page)
                view.forget(page)
        assert_fast_paths_match(policy, f"after step {step}")


@pytest.mark.parametrize("name", POLICY_NAMES)
@pytest.mark.parametrize("seed", [7, 191])
def test_fast_paths_match_reference(name, seed):
    """No pins: the maintained fast paths run live and must agree."""
    policy = make_policy(name, CAPACITY)
    view = NotifyingView()
    view.bind(policy)
    assert policy._notified is True
    drive(policy, view, random.Random(seed), steps=300, allow_pins=False)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_fast_paths_match_reference_with_pins(name):
    """With pins: gated paths fall back, always-on paths filter pins."""
    policy = make_policy(name, CAPACITY)
    view = NotifyingView()
    view.bind(policy)
    drive(policy, view, random.Random(29), steps=300, allow_pins=True)


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_unnotified_view_keeps_reference_semantics(name):
    """Without the handshake the fast paths must not trust stale mirrors."""
    from tests.policies.fake_view import FakeView

    policy = make_policy(name, CAPACITY)
    view = FakeView()
    policy.bind(view)
    assert policy._notified is False
    rng = random.Random(3)
    for page in range(8):
        policy.insert(page)
    for _ in range(60):
        page = rng.randrange(8)
        policy.on_access(page)
        if rng.random() < 0.5:
            view.dirty.add(page)
        elif page in view.dirty:
            view.dirty.discard(page)
        assert_fast_paths_match(policy, "under an unnotified view")


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_sanitized_manager_workload(name):
    """End-to-end: a sanitised manager validates the fast paths per op."""
    device = SimulatedSSD(TEST_PROFILE, num_pages=64)
    device.format_pages(range(64))
    manager = BufferPoolManager(
        CAPACITY, make_policy(name, CAPACITY), device, sanitize=True
    )
    rng = random.Random(1337)
    pinned: list[int] = []
    for _ in range(250):
        page = rng.randrange(64)
        roll = rng.random()
        if roll < 0.45:
            manager.read_page(page)
        elif roll < 0.80:
            manager.write_page(page, payload=b"x")
        elif roll < 0.90 and len(pinned) < CAPACITY - 2:
            manager.read_page(page)
            manager.pin(page)
            pinned.append(page)
        elif pinned:
            manager.unpin(pinned.pop())
    while pinned:
        manager.unpin(pinned.pop())
    manager.flush_all()
    manager.sanitizer.assert_clean()
    assert manager.sanitizer.checks_run > 250
