"""Tests for LFU replacement."""

import pytest

from repro.policies.lfu import LFUPolicy


def make_lfu(view, pages=()):
    policy = LFUPolicy()
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestFrequency:
    def test_fresh_page_starts_at_one(self, view):
        policy = make_lfu(view, [1])
        assert policy.frequency(1) == 1

    def test_cold_insert_starts_at_zero(self, view):
        policy = make_lfu(view)
        policy.insert(1, cold=True)
        assert policy.frequency(1) == 0

    def test_access_increments(self, view):
        policy = make_lfu(view, [1])
        policy.on_access(1)
        policy.on_access(1)
        assert policy.frequency(1) == 3

    def test_remove_clears_state(self, view):
        policy = make_lfu(view, [1])
        policy.remove(1)
        with pytest.raises(KeyError):
            policy.frequency(1)


class TestVictimSelection:
    def test_least_frequent_evicted(self, view):
        policy = make_lfu(view, [1, 2, 3])
        policy.on_access(1)
        policy.on_access(3)
        assert policy.select_victim() == 2

    def test_recency_breaks_ties(self, view):
        policy = make_lfu(view, [1, 2, 3])
        policy.on_access(1)
        policy.on_access(2)
        policy.on_access(3)
        # All at frequency 2; LRU tie-break picks 1.
        assert policy.select_victim() == 1

    def test_cold_prefetched_page_goes_first(self, view):
        policy = make_lfu(view, [1, 2])
        policy.insert(9, cold=True)
        assert policy.select_victim() == 9

    def test_pinned_skipped(self, view):
        policy = make_lfu(view, [1, 2])
        view.pinned.add(1)
        assert policy.select_victim() == 2

    def test_empty_returns_none(self, view):
        assert make_lfu(view).select_victim() is None


class TestEvictionOrder:
    def test_order_by_frequency_then_recency(self, view):
        policy = make_lfu(view, [1, 2, 3])
        policy.on_access(3)
        policy.on_access(3)
        policy.on_access(2)
        assert list(policy.eviction_order()) == [1, 2, 3]

    def test_order_head_matches_victim(self, view):
        policy = make_lfu(view, [1, 2, 3, 4])
        policy.on_access(2)
        policy.on_access(4)
        order = list(policy.eviction_order())
        assert policy.select_victim() == order[0]

    def test_registry_integration(self, view):
        from repro.policies.registry import make_policy

        policy = make_policy("lfu", 16)
        assert isinstance(policy, LFUPolicy)
