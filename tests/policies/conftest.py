"""Shared fixtures for replacement-policy tests."""

from __future__ import annotations

import pytest

from tests.policies.fake_view import FakeView


@pytest.fixture
def view() -> FakeView:
    return FakeView()
