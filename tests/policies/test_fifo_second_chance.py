"""Tests for FIFO and Second Chance."""

import pytest

from repro.policies.fifo import FIFOPolicy, SecondChancePolicy


def make(policy_cls, view, pages=()):
    policy = policy_cls()
    policy.bind(view)
    for page in pages:
        policy.insert(page)
    return policy


class TestFIFO:
    def test_victim_is_oldest(self, view):
        policy = make(FIFOPolicy, view, [1, 2, 3])
        assert policy.select_victim() == 1

    def test_access_does_not_change_order(self, view):
        policy = make(FIFOPolicy, view, [1, 2, 3])
        policy.on_access(1)
        policy.on_access(1)
        assert policy.select_victim() == 1

    def test_cold_insert_jumps_queue(self, view):
        policy = make(FIFOPolicy, view, [1, 2])
        policy.insert(9, cold=True)
        assert policy.select_victim() == 9

    def test_eviction_order_is_insertion_order(self, view):
        policy = make(FIFOPolicy, view, [3, 1, 2])
        assert list(policy.eviction_order()) == [3, 1, 2]

    def test_double_insert_rejected(self, view):
        policy = make(FIFOPolicy, view, [1])
        with pytest.raises(ValueError):
            policy.insert(1)

    def test_access_untracked_rejected(self, view):
        with pytest.raises(KeyError):
            make(FIFOPolicy, view).on_access(1)

    def test_pinned_skipped(self, view):
        policy = make(FIFOPolicy, view, [1, 2])
        view.pinned.add(1)
        assert policy.select_victim() == 2


class TestSecondChance:
    def test_unreferenced_page_evicted(self, view):
        policy = make(SecondChancePolicy, view, [1, 2])
        assert policy.select_victim() == 1

    def test_referenced_page_gets_second_chance(self, view):
        policy = make(SecondChancePolicy, view, [1, 2])
        policy.on_access(1)
        assert policy.select_victim() == 2

    def test_second_chance_clears_bit(self, view):
        policy = make(SecondChancePolicy, view, [1, 2])
        policy.on_access(1)
        policy.on_access(2)
        victim = policy.select_victim()
        assert victim == 1  # both referenced; one lap clears both bits

    def test_eviction_order_defers_referenced(self, view):
        policy = make(SecondChancePolicy, view, [1, 2, 3])
        policy.on_access(1)
        assert list(policy.eviction_order()) == [2, 3, 1]

    def test_order_head_matches_victim(self, view):
        policy = make(SecondChancePolicy, view, [1, 2, 3])
        policy.on_access(1)
        order = list(policy.eviction_order())
        assert policy.select_victim() == order[0]

    def test_remove_cleans_reference_state(self, view):
        policy = make(SecondChancePolicy, view, [1])
        policy.on_access(1)
        policy.remove(1)
        assert 1 not in policy
