"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        args_dict = vars(args)
        assert args_dict["workload"] == "MS"
        assert args_dict["policy"] == "lru"
        assert args_dict["variant"] == "ace"

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "nope"])

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == ["src"]
        assert args.list_rules is False

    def test_check_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.pages == 600
        assert args.ops == 1500
        assert "lru" in args.policies

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.rates == "0,0.001,0.01"
        assert args.policies == "lru,clock,cflru"
        assert args.variants == "baseline,ace"
        assert args.smoke is False

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.shards == "1,2,4"
        assert args.placements == "hash,locality"
        assert args.policies == "lru,clock,cflru"
        assert args.variant == "baseline"
        assert args.workers == 1
        assert args.smoke is False
        assert args.record is False


class TestCommands:
    def test_probe_single_device(self, capsys):
        assert main(["probe", "--device", "optane"]) == 0
        out = capsys.readouterr().out
        assert "Optane SSD" in out
        assert "alpha" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--workload", "MS", "--policy", "lru", "--variant", "ace",
            "--pages", "1000", "--ops", "2000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean write batch" in out

    def test_run_emulated_device(self, capsys):
        code = main([
            "run", "--alpha", "4.0", "--k-w", "8",
            "--pages", "1000", "--ops", "1500",
        ])
        assert code == 0

    def test_run_custom_read_fraction(self, capsys):
        code = main([
            "run", "--read-fraction", "0.2",
            "--pages", "1000", "--ops", "1500",
        ])
        assert code == 0

    def test_run_unknown_workload_exits(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["run", "--workload", "XX", "--pages", "1000", "--ops", "100"])

    def test_compare(self, capsys):
        code = main([
            "compare", "--workload", "WIS", "--policies", "lru,clock",
            "--pages", "1500", "--ops", "3000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "LRU" in out
        assert "Clock Sweep" in out
        assert "ACE" in out

    def test_tpcc(self, capsys):
        code = main([
            "tpcc", "--warehouses", "1", "--transactions", "40",
            "--row-scale", "0.02",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tpmC" in out
        assert "speedup" in out

    def test_experiment_unknown_exits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiment", "fig99"])

    def test_experiment_table2(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["experiment", "table2"]) == 0
        assert (tmp_path / "table2_workloads.txt").exists()

    def test_check_runs_sanitized_stacks(self, capsys):
        code = main([
            "check", "--policies", "lru,clock", "--pages", "200",
            "--ops", "400",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok   lru/baseline" in out
        assert "ok   clock/ace+pf" in out
        assert "all 6 stacks clean" in out

    def test_check_unknown_policy_exits(self):
        with pytest.raises(SystemExit, match="unknown policies"):
            main(["check", "--policies", "nope"])

    def test_chaos_small_sweep(self, capsys):
        code = main([
            "chaos", "--rates", "0,0.01", "--policies", "lru",
            "--variants", "baseline,ace", "--pages", "400", "--ops", "1200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "lru/ace@0.01" in out
        assert "0 committed updates lost" in out

    def test_chaos_smoke(self, capsys):
        assert main(["chaos", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "clock/ace@0.01" in out

    def test_cluster_small_sweep(self, capsys):
        code = main([
            "cluster", "--shards", "2", "--policies", "lru",
            "--pages", "400", "--ops", "800",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lru/baseline/s2/hash" in out
        assert "Placement Pareto points" in out
        assert "placement claim holds" in out

    def test_summary(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        output = tmp_path / "EXPERIMENTS.md"
        assert main(["summary", "--output", str(output)]) == 0
        assert output.exists()
        assert "paper vs measured" in output.read_text()
