"""Tests for the top-level public API surface."""

import repro


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ names missing symbol {name}"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_paper_constants(self):
        assert len(repro.PAPER_DEVICES) == 4
        assert len(repro.PAPER_WORKLOADS) == 4

    def test_quickstart_snippet_from_docstring(self):
        """The module docstring's quickstart must actually run."""
        device = repro.SimulatedSSD(repro.PCIE_SSD, num_pages=10_000)
        device.format_pages(range(10_000))
        manager = repro.ACEBufferPoolManager(
            capacity=600,
            policy=repro.LRUPolicy(),
            device=device,
            config=repro.ACEConfig.for_device(
                repro.PCIE_SSD, prefetch_enabled=True
            ),
        )
        manager.write_page(42)
        assert manager.read_page(42) == 1

    def test_errors_hierarchy(self):
        assert issubclass(repro.PoolExhaustedError, repro.BufferPoolError)
        assert issubclass(repro.BufferPoolError, repro.ReproError)
        assert issubclass(repro.PageNotBufferedError, repro.BufferPoolError)
