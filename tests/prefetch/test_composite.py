"""Tests for the composite (TaP + history) ACE Reader prefetcher."""

from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.history import HistoryPrefetcher
from repro.prefetch.tap import TaPPrefetcher


def make_composite(trigger_length=4, fetch_threshold=2):
    return CompositePrefetcher(
        sequential=TaPPrefetcher(trigger_length=trigger_length),
        history=HistoryPrefetcher(fetch_threshold=fetch_threshold),
    )


class TestRouting:
    def test_sequential_stream_uses_tap(self):
        prefetcher = make_composite(trigger_length=3)
        for page in (100, 101, 102):
            prefetcher.on_miss(page)
        assert prefetcher.suggest(102, 3) == [103, 104, 105]
        assert prefetcher.sequential_suggestions == 3
        assert prefetcher.history_suggestions == 0

    def test_random_miss_falls_back_to_history(self):
        prefetcher = make_composite()
        # Train the history table on a repeating loop.
        for _ in range(3):
            for page in (7, 42, 99):
                prefetcher.observe(page)
        prefetcher.on_miss(7)
        assert prefetcher.suggest(7, 2) == [42, 99]
        assert prefetcher.history_suggestions == 2

    def test_no_signal_suggests_nothing(self):
        prefetcher = make_composite()
        prefetcher.on_miss(50)
        assert prefetcher.suggest(50, 4) == []

    def test_observe_trains_history_only(self):
        prefetcher = make_composite()
        prefetcher.observe(1)
        prefetcher.observe(2)
        assert prefetcher.history.trained_pairs == 1
        assert prefetcher.sequential.table_contents() == {}

    def test_default_construction(self):
        prefetcher = CompositePrefetcher(max_page=100)
        assert prefetcher.sequential.max_page == 100

    def test_stream_end_reverts_to_history(self):
        prefetcher = make_composite(trigger_length=3)
        for _ in range(3):
            for page in (7, 42, 99):
                prefetcher.observe(page)
        for page in (100, 101, 102):
            prefetcher.on_miss(page)
        assert prefetcher.suggest(102, 1) == [103]  # in-stream
        prefetcher.on_miss(7)  # stream broken
        assert prefetcher.suggest(7, 1) == [42]     # history again
