"""Tests for the TaP sequential-stream detector."""

import pytest

from repro.prefetch.tap import TaPPrefetcher


def feed_stream(tap, start, length):
    for page in range(start, start + length):
        tap.on_miss(page)


class TestDetection:
    def test_first_miss_inserts_expected_next(self):
        tap = TaPPrefetcher()
        tap.on_miss(100)
        assert 101 in tap.table_contents()

    def test_stream_length_accumulates(self):
        tap = TaPPrefetcher()
        feed_stream(tap, 100, 3)
        assert tap.table_contents()[103] == 3

    def test_no_trigger_below_threshold(self):
        tap = TaPPrefetcher(trigger_length=4)
        feed_stream(tap, 100, 3)
        assert not tap.in_stream(102)
        assert tap.suggest(102, 4) == []

    def test_trigger_at_threshold(self):
        tap = TaPPrefetcher(trigger_length=4)
        feed_stream(tap, 100, 4)
        assert tap.in_stream(103)
        assert tap.suggest(103, 3) == [104, 105, 106]
        assert tap.streams_detected == 1

    def test_stream_stays_active_beyond_threshold(self):
        tap = TaPPrefetcher(trigger_length=4)
        feed_stream(tap, 100, 6)
        assert tap.in_stream(105)
        assert tap.streams_detected == 1  # counted once

    def test_interleaved_streams_both_detected(self):
        tap = TaPPrefetcher(trigger_length=4)
        for offset in range(4):
            tap.on_miss(100 + offset)
            tap.on_miss(500 + offset)
        assert tap.in_stream(503)
        assert tap.streams_detected == 2

    def test_random_misses_never_trigger(self):
        tap = TaPPrefetcher(trigger_length=4)
        for page in (10, 57, 3, 999, 42, 7):
            tap.on_miss(page)
            assert tap.suggest(page, 4) == []

    def test_non_stream_miss_deactivates(self):
        tap = TaPPrefetcher(trigger_length=4)
        feed_stream(tap, 100, 4)
        tap.on_miss(999)  # unrelated miss
        assert not tap.in_stream(103)


class TestTableMaintenance:
    def test_fifo_eviction_when_full(self):
        tap = TaPPrefetcher(table_size=3)
        for page in (10, 20, 30, 40):
            tap.on_miss(page)
        table = tap.table_contents()
        assert len(table) == 3
        assert 11 not in table  # oldest entry evicted FIFO

    def test_max_page_caps_suggestions(self):
        tap = TaPPrefetcher(trigger_length=2, max_page=104)
        feed_stream(tap, 100, 2)
        assert tap.suggest(101, 10) == [102, 103]

    def test_validation(self):
        with pytest.raises(ValueError):
            TaPPrefetcher(table_size=0)
        with pytest.raises(ValueError):
            TaPPrefetcher(trigger_length=1)
