"""Tests for OPL/NPL lookahead prefetchers."""

import pytest

from repro.prefetch.base import NullPrefetcher
from repro.prefetch.sequential import NPLPrefetcher, OPLPrefetcher


class TestNull:
    def test_never_suggests(self):
        assert NullPrefetcher().suggest(5, 10) == []


class TestOPL:
    def test_suggests_next_page(self):
        assert OPLPrefetcher().suggest(5, 10) == [6]

    def test_respects_max_page(self):
        assert OPLPrefetcher(max_page=6).suggest(5, 10) == []


class TestNPL:
    def test_suggests_depth_pages(self):
        assert NPLPrefetcher(depth=3).suggest(5, 10) == [6, 7, 8]

    def test_limited_by_n(self):
        assert NPLPrefetcher(depth=8).suggest(5, 2) == [6, 7]

    def test_max_page_filter(self):
        assert NPLPrefetcher(depth=4, max_page=7).suggest(5, 10) == [6]

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            NPLPrefetcher(depth=0)

    def test_no_self_suggestion(self):
        suggestions = NPLPrefetcher(depth=4).suggest(5, 10)
        assert 5 not in suggestions
