"""Tests for the history-table prefetcher (paper Fig. 7)."""

import pytest

from repro.prefetch.history import HistoryPrefetcher


def train(prefetcher, sequence):
    for page in sequence:
        prefetcher.observe(page)


class TestTraining:
    def test_pair_creates_row(self):
        p = HistoryPrefetcher()
        train(p, [1, 3])
        assert p.row(1) == ([3], [1])
        assert p.trained_pairs == 1

    def test_repeated_pair_increments_weight(self):
        p = HistoryPrefetcher()
        train(p, [1, 3, 1, 3, 1, 3])
        next_pages, weights = p.row(1)
        assert next_pages == [3]
        assert weights[0] == 3

    def test_row_bounded_to_candidates(self):
        p = HistoryPrefetcher(candidates_per_page=3)
        train(p, [1, 2, 1, 3, 1, 4, 1, 5])
        next_pages, _ = p.row(1)
        assert len(next_pages) == 3

    def test_full_row_decrements_weakest(self):
        p = HistoryPrefetcher(candidates_per_page=2)
        train(p, [1, 2, 1, 2, 1, 3])  # row full: [2(w2), 3(w1)]
        train(p, [1, 4])              # 4 not in row, weakest (3) decremented
        next_pages, weights = p.row(1)
        assert 3 in next_pages
        assert weights[next_pages.index(3)] == 0

    def test_zero_weight_slot_replaced(self):
        p = HistoryPrefetcher(candidates_per_page=2)
        train(p, [1, 2, 1, 2, 1, 3])  # [2(w2), 3(w1)]
        train(p, [1, 4])              # 3 decremented to 0
        train(p, [1, 4])              # 3 replaced by 4 with weight 1
        next_pages, _ = p.row(1)
        assert 4 in next_pages
        assert 3 not in next_pages

    def test_weight_capped(self):
        p = HistoryPrefetcher(max_weight=3)
        train(p, [1, 2] * 10)
        __, weights = p.row(1)
        assert weights[0] == 3

    def test_self_transition_ignored(self):
        p = HistoryPrefetcher()
        train(p, [1, 1, 1])
        assert p.row(1) is None

    def test_first_observation_trains_nothing(self):
        p = HistoryPrefetcher()
        p.observe(1)
        assert p.trained_pairs == 0
        assert p.table_size() == 0


class TestSuggestion:
    def test_below_threshold_not_suggested(self):
        p = HistoryPrefetcher(fetch_threshold=2)
        train(p, [1, 3])  # weight 1 < threshold 2
        assert p.suggest(1, 3) == []

    def test_best_successor_wins(self):
        p = HistoryPrefetcher(fetch_threshold=2)
        train(p, [1, 3, 1, 3, 1, 3, 1, 10, 1, 10, 1, 18, 1, 18])
        # weights: 3 -> 3, 10 -> 2, 18 -> 2; best is 3.
        assert p.suggest(1, 1) == [3]

    def test_chaining_follows_successors(self):
        p = HistoryPrefetcher(fetch_threshold=2)
        train(p, [1, 2, 3, 4] * 3)
        assert p.suggest(1, 3) == [2, 3, 4]

    def test_chain_stops_at_unknown_page(self):
        p = HistoryPrefetcher(fetch_threshold=2)
        train(p, [1, 2] * 3)
        assert p.suggest(1, 5) == [2]

    def test_no_duplicates_in_chain(self):
        p = HistoryPrefetcher(fetch_threshold=2)
        train(p, [1, 2, 1, 2, 2, 1, 2, 1])
        suggestions = p.suggest(1, 5)
        assert len(suggestions) == len(set(suggestions))
        assert 1 not in suggestions

    def test_paper_example(self):
        """Figure 7: after page 1, page 3 (weight 9) beats 10 (3) and 18 (1)."""
        p = HistoryPrefetcher(fetch_threshold=2, max_weight=63)
        for __ in range(3):
            train(p, [1, 10])
            p.observe(999)  # break the pair chain
        for __ in range(9):
            train(p, [1, 3])
            p.observe(999)
        train(p, [1, 18])
        assert p.suggest(1, 1) == [3]


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HistoryPrefetcher(candidates_per_page=0)
        with pytest.raises(ValueError):
            HistoryPrefetcher(fetch_threshold=0)
        with pytest.raises(ValueError):
            HistoryPrefetcher(fetch_threshold=5, max_weight=4)
