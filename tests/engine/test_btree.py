"""Tests for the B-tree index substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.btree import BTreeIndex
from repro.engine.database import Database


def make_index(num_keys=10_000, fanout=10, leaf_capacity=10):
    database = Database()
    index = BTreeIndex(
        database, "idx", num_keys=num_keys, fanout=fanout,
        leaf_capacity=leaf_capacity,
    )
    return index, database


class TestShape:
    def test_small_tree_is_single_page(self):
        index, _ = make_index(num_keys=5, leaf_capacity=10)
        assert index.shape.height == 1
        assert index.shape.total_pages == 1

    def test_levels_shrink_by_fanout(self):
        index, _ = make_index(num_keys=10_000, fanout=10, leaf_capacity=10)
        # 1000 leaves -> 100 -> 10 -> 1 root.
        assert index.shape.pages_per_level == (1, 10, 100, 1000)
        assert index.shape.height == 4

    def test_total_pages_allocated_in_database(self):
        index, database = make_index()
        assert index.relation.num_pages == index.shape.total_pages
        assert database.total_pages == index.shape.total_pages

    def test_validation(self):
        database = Database()
        with pytest.raises(ValueError):
            BTreeIndex(database, "bad", num_keys=0)
        with pytest.raises(ValueError):
            BTreeIndex(database, "bad2", num_keys=10, fanout=1)


class TestPaths:
    def test_path_starts_at_root_ends_at_leaf(self):
        index, _ = make_index()
        path = index.path_to_key(1234)
        assert path[0] == index.root_page()
        assert path[-1] == index.leaf_of_key(1234)
        assert len(path) == index.shape.height

    def test_nearby_keys_share_upper_path(self):
        index, _ = make_index()
        a = index.path_to_key(100)
        b = index.path_to_key(105)
        assert a[:-1] == b[:-1] or a == b  # same leaf or same internals

    def test_distant_keys_diverge(self):
        index, _ = make_index()
        a = index.path_to_key(0)
        b = index.path_to_key(9999)
        assert a[-1] != b[-1]
        assert a[1] != b[1]  # different level-1 subtrees

    def test_key_bounds_checked(self):
        index, _ = make_index(num_keys=100)
        with pytest.raises(IndexError):
            index.path_to_key(100)
        with pytest.raises(IndexError):
            index.leaf_of_key(-1)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 9999))
    def test_paths_stay_inside_relation(self, key):
        index, _ = make_index()
        for page in index.path_to_key(key):
            assert index.relation.base_page <= page < index.relation.end_page


class TestAccessPatterns:
    def test_lookup_is_read_only(self):
        index, _ = make_index()
        requests = index.lookup(42)
        assert all(not r.is_write for r in requests)
        assert len(requests) == index.shape.height

    def test_insert_dirties_leaf(self):
        index, _ = make_index()
        requests = index.insert(42)
        assert requests[-1].is_write
        assert requests[-1].page == index.leaf_of_key(42)

    def test_insert_split_dirties_neighbour_and_parent(self):
        index, _ = make_index()
        rng = random.Random(0)
        requests = index.insert(42, split_probability=1.0, rng=rng)
        writes = [r.page for r in requests if r.is_write]
        assert len(writes) == 3  # leaf, neighbour, parent

    def test_range_scan_walks_leaves(self):
        index, _ = make_index()
        requests = index.range_scan(0, 55)
        leaf_reads = requests[index.shape.height - 1:]
        pages = [r.page for r in leaf_reads]
        assert pages == sorted(pages)
        # 55 keys at 10/leaf starting at key 0 -> 6 leaves.
        assert len(pages) == 6

    def test_range_scan_clamped_at_end(self):
        index, _ = make_index(num_keys=100, leaf_capacity=10)
        requests = index.range_scan(95, 1000)
        assert all(
            index.relation.base_page <= r.page < index.relation.end_page
            for r in requests
        )

    def test_scan_validation(self):
        index, _ = make_index()
        with pytest.raises(ValueError):
            index.range_scan(0, 0)

    def test_root_is_hottest_page(self):
        """Every lookup touches the root: the B-tree's natural skew."""
        index, _ = make_index()
        rng = random.Random(1)
        counts: dict[int, int] = {}
        for _ in range(500):
            for request in index.lookup(rng.randrange(10_000)):
                counts[request.page] = counts.get(request.page, 0) + 1
        assert max(counts, key=counts.__getitem__) == index.root_page()
        assert counts[index.root_page()] == 500


class TestBufferpoolIntegration:
    def test_index_traffic_through_ace(self):
        """Index lookups + inserts run through the bufferpool; the hot
        upper levels stay cached while ACE batches leaf write-backs."""
        from repro.core.ace import ACEBufferPoolManager
        from repro.core.config import ACEConfig
        from repro.policies.lru import LRUPolicy
        from repro.storage.profiles import PCIE_SSD

        database = Database()
        index = BTreeIndex(database, "idx", num_keys=50_000, fanout=64,
                           leaf_capacity=64)
        device = database.create_device(PCIE_SSD)
        manager = ACEBufferPoolManager(
            60, LRUPolicy(), device, config=ACEConfig(n_w=8, n_e=8)
        )
        rng = random.Random(2)
        for _ in range(800):
            key = rng.randrange(50_000)
            operations = (
                index.insert(key, split_probability=0.05, rng=rng)
                if rng.random() < 0.4 else index.lookup(key)
            )
            for request in operations:
                manager.access(request.page, request.is_write)
        # The root never left the pool after its first load.
        assert manager.contains(index.root_page())
        # Leaf write-backs were batched.
        assert manager.device.stats.largest_write_batch > 1
        manager.flush_all()
        assert manager.dirty_pages() == []
