"""Tests for the latency-triggered circuit breaker state machine."""

from repro.core.ace import ACEBufferPoolManager, ACEConfig
from repro.engine.serving import BreakerConfig, CircuitBreaker
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import PCIE_SSD


class Hooks:
    """Fake manager recording the degraded-batching calls."""

    def __init__(self):
        self.entered = []
        self.exited = 0

    def enter_degraded_batching(self, n_w, n_e):
        self.entered.append((n_w, n_e))

    def exit_degraded_batching(self):
        self.exited += 1


def make_breaker(manager=None, **overrides):
    defaults = dict(
        p99_threshold_us=1_000.0,
        window=8,
        min_samples=4,
        eval_every=4,
        cooldown_us=100.0,
        probation=1,
        degraded_n_w=2,
        degraded_n_e=3,
    )
    defaults.update(overrides)
    return CircuitBreaker(
        BreakerConfig(**defaults), manager if manager is not None else Hooks()
    )


def feed(breaker, latency, count, start_us=0.0, step_us=1.0, completed_from=1):
    """Observe ``count`` completions of equal latency at 1us spacing."""
    for offset in range(count):
        breaker.observe(
            latency, start_us + offset * step_us, completed_from + offset
        )


class TestTrip:
    def test_trips_on_window_p99_over_threshold(self):
        hooks = Hooks()
        breaker = make_breaker(hooks)
        feed(breaker, 2_000.0, 4)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == [(3.0, 4)]
        assert hooks.entered == [(2, 3)]

    def test_no_trip_below_min_samples(self):
        breaker = make_breaker(min_samples=8, window=8)
        feed(breaker, 2_000.0, 4)  # eval_every reached, window too small
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.trips == []

    def test_no_trip_between_eval_points(self):
        breaker = make_breaker()
        feed(breaker, 2_000.0, 3)  # below eval_every
        assert breaker.state == CircuitBreaker.CLOSED

    def test_clean_latencies_never_trip(self):
        hooks = Hooks()
        breaker = make_breaker(hooks)
        feed(breaker, 10.0, 64)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.trips == []
        assert hooks.entered == []


class TestRestoreAndRecover:
    def test_cooldown_restores_to_half_open(self):
        hooks = Hooks()
        breaker = make_breaker(hooks)  # cooldown 100us
        feed(breaker, 2_000.0, 4)  # trips at t=3
        breaker.observe(10.0, 50.0, 5)  # within cooldown: stays open
        assert breaker.state == CircuitBreaker.OPEN
        breaker.observe(10.0, 103.0, 6)  # past cooldown
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.restores == [(103.0, 6)]
        assert hooks.exited == 1

    def test_probation_closes_after_clean_evals(self):
        breaker = make_breaker(probation=2)
        feed(breaker, 2_000.0, 4)
        breaker.observe(10.0, 200.0, 5)  # restore
        # Two clean evaluations (4 samples each) close the breaker.
        feed(breaker, 10.0, 8, start_us=201.0, completed_from=6)
        assert breaker.state == CircuitBreaker.CLOSED
        assert len(breaker.recoveries) == 1

    def test_half_open_retrips_on_pressure(self):
        hooks = Hooks()
        breaker = make_breaker(hooks)
        feed(breaker, 2_000.0, 4)
        breaker.observe(10.0, 200.0, 5)  # restore (half-open)
        feed(breaker, 3_000.0, 4, start_us=201.0, completed_from=6)
        assert breaker.state == CircuitBreaker.OPEN
        assert len(breaker.trips) == 2
        assert hooks.entered == [(2, 3), (2, 3)]

    def test_finish_restores_full_batching(self):
        hooks = Hooks()
        breaker = make_breaker(hooks)
        feed(breaker, 2_000.0, 4)
        breaker.finish()
        assert hooks.exited == 1


class TestActuation:
    def make_ace(self, n_w=16, n_e=16):
        device = SimulatedSSD(PCIE_SSD, num_pages=64)
        device.format_pages(range(64))
        return ACEBufferPoolManager(
            8, LRUPolicy(), device, config=ACEConfig(n_w=n_w, n_e=n_e)
        )

    def test_ace_batches_degraded_and_restored(self):
        manager = self.make_ace()
        breaker = make_breaker(manager, degraded_n_w=2, degraded_n_e=3)
        feed(breaker, 2_000.0, 4)
        assert manager.batching_degraded
        assert manager.writer.n_w == 2
        assert manager.evictor.n_e == 3
        breaker.observe(10.0, 200.0, 5)  # cooldown elapsed
        assert not manager.batching_degraded
        assert manager.writer.n_w == 16
        assert manager.evictor.n_e == 16

    def test_degraded_sizes_clamped_to_configured(self):
        manager = self.make_ace(n_w=4, n_e=4)
        manager.enter_degraded_batching(99, 99)
        assert manager.writer.n_w == 4
        assert manager.evictor.n_e == 4
        manager.exit_degraded_batching()

    def test_baseline_manager_gets_bookkeeping_only(self):
        class Plain:
            pass

        breaker = make_breaker(Plain())
        assert not breaker.actuates
        feed(breaker, 2_000.0, 4)  # must not raise
        assert breaker.state == CircuitBreaker.OPEN
        assert len(breaker.trips) == 1
        breaker.finish()  # no exit hook: still a no-op
