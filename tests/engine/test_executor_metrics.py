"""Tests for the executor and run metrics."""

import pytest

from repro.bufferpool.background import BackgroundWriter, Checkpointer
from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.wal import WriteAheadLog
from repro.engine.executor import ExecutionOptions, run_trace, run_transactions
from repro.engine.metrics import RunMetrics, percent_delta, speedup
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile
from repro.workloads.tpcc.transactions import TransactionType
from repro.workloads.trace import PageRequest, Trace

PROFILE = DeviceProfile(
    name="exec-test", alpha=2.0, k_r=4, k_w=4, read_latency_us=100.0,
    submit_overhead_us=0.0, queue_overhead_us=0.0,
)


def make_manager(capacity=8, num_pages=64, wal=False):
    device = SimulatedSSD(PROFILE, num_pages=num_pages)
    device.format_pages(range(num_pages))
    log = WriteAheadLog(device.clock) if wal else None
    return BufferPoolManager(capacity, LRUPolicy(), device, wal=log)


class TestRunTrace:
    def test_counts_and_time(self):
        manager = make_manager()
        trace = Trace([0, 1, 0], [False, False, False])
        metrics = run_trace(manager, trace, options=ExecutionOptions(cpu_us_per_op=10))
        assert metrics.ops == 3
        # 2 misses (200us) + 3 * 10us CPU.
        assert metrics.elapsed_us == pytest.approx(230.0)
        assert metrics.io_time_us == pytest.approx(200.0)
        assert metrics.cpu_time_us == pytest.approx(30.0)
        assert metrics.buffer.hits == 1

    def test_zero_cpu_cost(self):
        manager = make_manager()
        trace = Trace([0, 0], [False, False])
        metrics = run_trace(manager, trace, options=ExecutionOptions(cpu_us_per_op=0))
        assert metrics.elapsed_us == pytest.approx(100.0)

    def test_background_writer_invoked(self):
        manager = make_manager(capacity=16)
        writer = BackgroundWriter(manager, pages_per_round=4)
        trace = Trace(
            [p % 16 for p in range(200)], [True] * 200
        )
        options = ExecutionOptions(cpu_us_per_op=2, bg_writer_interval_us=500)
        run_trace(manager, trace, options=options, bg_writer=writer)
        assert writer.rounds > 0
        assert manager.stats.background_writebacks > 0

    def test_checkpointer_invoked(self):
        manager = make_manager(capacity=16)
        checkpointer = Checkpointer(manager, interval_us=1000)
        trace = Trace([p % 16 for p in range(100)], [True] * 100)
        run_trace(manager, trace, checkpointer=checkpointer)
        assert checkpointer.checkpoints_taken > 0

    def test_default_label(self):
        manager = make_manager()
        metrics = run_trace(manager, Trace([0], [False], name="t"))
        assert metrics.label == "baseline/t"

    def test_warmup_excluded_from_measurement(self):
        manager = make_manager(capacity=8)
        trace = Trace([0, 1, 2, 0, 1, 2], [False] * 6)
        metrics = run_trace(
            manager, trace, options=ExecutionOptions(cpu_us_per_op=0),
            warmup_ops=3,
        )
        # After the warmup pass the three pages are resident: all hits.
        assert metrics.ops == 3
        assert metrics.buffer.misses == 0
        assert metrics.elapsed_us == pytest.approx(0.0)

    def test_warmup_must_leave_measured_ops(self):
        manager = make_manager()
        trace = Trace([0], [False])
        with pytest.raises(ValueError):
            run_trace(manager, trace, warmup_ops=1)

    def test_ftl_counters_captured(self):
        device = SimulatedSSD(PROFILE, num_pages=64, with_ftl=True)
        device.format_pages(range(64))
        manager = BufferPoolManager(4, LRUPolicy(), device)
        trace = Trace([p % 64 for p in range(300)], [True] * 300)
        metrics = run_trace(manager, trace)
        assert metrics.ftl is not None
        assert metrics.physical_writes >= metrics.logical_writes


class TestRunTransactions:
    def test_transaction_counting(self):
        manager = make_manager()
        stream = [
            (TransactionType.NEW_ORDER, [PageRequest(0, True)]),
            (TransactionType.PAYMENT, [PageRequest(1, True)]),
            (TransactionType.NEW_ORDER, [PageRequest(2, False)]),
        ]
        metrics = run_transactions(manager, stream)
        assert metrics.transactions == 3
        assert metrics.new_order_transactions == 2
        assert metrics.ops == 3

    def test_commit_flushes_wal(self):
        manager = make_manager(wal=True)
        stream = [(TransactionType.PAYMENT, [PageRequest(0, True)])]
        metrics = run_transactions(manager, stream)
        assert manager.wal.pages_written == 1
        assert metrics.wal_pages_written == 1

    def test_tpmc_computation(self):
        metrics = RunMetrics(
            label="x", elapsed_us=60e6, ops=10,
            transactions=100, new_order_transactions=45,
        )
        assert metrics.tpmc == pytest.approx(45.0)
        assert metrics.tpm == pytest.approx(100.0)

    def test_cpu_per_transaction_charged(self):
        manager = make_manager()
        stream = [(TransactionType.PAYMENT, [])]
        options = ExecutionOptions(cpu_us_per_op=0, cpu_us_per_transaction=50)
        metrics = run_transactions(manager, stream, options=options)
        assert metrics.elapsed_us == pytest.approx(50.0)


class TestMetricsHelpers:
    def test_speedup(self):
        base = RunMetrics(label="b", elapsed_us=200.0, ops=1)
        fast = RunMetrics(label="f", elapsed_us=100.0, ops=1)
        assert speedup(base, fast) == pytest.approx(2.0)

    def test_speedup_zero_rejected(self):
        base = RunMetrics(label="b", elapsed_us=200.0, ops=1)
        broken = RunMetrics(label="f", elapsed_us=0.0, ops=1)
        with pytest.raises(ValueError):
            speedup(base, broken)

    def test_percent_delta(self):
        assert percent_delta(100.0, 101.0) == pytest.approx(1.0)
        assert percent_delta(100.0, 99.0) == pytest.approx(-1.0)
        assert percent_delta(0.0, 5.0) == 0.0

    def test_derived_rates(self):
        metrics = RunMetrics(label="x", elapsed_us=2e6, ops=1000)
        assert metrics.runtime_s == pytest.approx(2.0)
        assert metrics.ops_per_second == pytest.approx(500.0)

    def test_zero_elapsed_rates(self):
        metrics = RunMetrics(label="x", elapsed_us=0.0, ops=0)
        assert metrics.ops_per_second == 0.0
        assert metrics.tps == 0.0
        assert metrics.tpmc == 0.0

    def test_summary_contains_label(self):
        metrics = RunMetrics(label="mylabel", elapsed_us=1e6, ops=5)
        assert "mylabel" in metrics.summary()

    def test_options_validation(self):
        with pytest.raises(ValueError):
            ExecutionOptions(cpu_us_per_op=-1)
        with pytest.raises(ValueError):
            ExecutionOptions(bg_writer_interval_us=0)
