"""Tests for the latency recorder and its executor integration."""

import pytest

from repro.engine.latency import LatencyRecorder


class TestRecorder:
    def test_empty(self):
        recorder = LatencyRecorder()
        assert recorder.count == 0
        assert recorder.mean_us == 0.0
        assert recorder.p99_us == 0.0
        assert recorder.max_us == 0.0
        assert "empty" in repr(recorder)

    def test_mean_and_max(self):
        recorder = LatencyRecorder()
        for value in (10.0, 20.0, 30.0):
            recorder.record(value)
        assert recorder.mean_us == pytest.approx(20.0)
        assert recorder.max_us == 30.0
        assert len(recorder) == 3

    def test_percentiles_nearest_rank(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.percentile(50) == 50.0
        assert recorder.p95_us == 95.0
        assert recorder.p99_us == 99.0
        assert recorder.percentile(100) == 100.0
        assert recorder.percentile(1) == 1.0

    def test_percentile_cache_invalidation(self):
        recorder = LatencyRecorder()
        recorder.record(10.0)
        assert recorder.p50_us == 10.0
        recorder.record(2.0)
        assert recorder.p50_us == 2.0

    def test_validation(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(-1.0)
        with pytest.raises(ValueError):
            recorder.percentile(0.0)
        with pytest.raises(ValueError):
            recorder.percentile(101.0)

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(5.0)
        summary = recorder.summary()
        assert set(summary) == {
            "count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us"
        }


class TestExecutorIntegration:
    def test_run_trace_records_latencies(self):
        from repro.bufferpool.manager import BufferPoolManager
        from repro.engine.executor import ExecutionOptions, run_trace
        from repro.policies.lru import LRUPolicy
        from repro.storage.device import SimulatedSSD
        from repro.storage.profiles import DeviceProfile
        from repro.workloads.trace import Trace

        profile = DeviceProfile(
            name="t", alpha=2.0, k_r=4, k_w=4, read_latency_us=100.0,
            submit_overhead_us=0.0, queue_overhead_us=0.0,
        )
        device = SimulatedSSD(profile, num_pages=16)
        device.format_pages(range(16))
        manager = BufferPoolManager(4, LRUPolicy(), device)
        recorder = LatencyRecorder()
        trace = Trace([0, 0, 1], [False, False, False])
        run_trace(
            manager, trace,
            options=ExecutionOptions(cpu_us_per_op=5.0),
            latencies=recorder,
        )
        assert recorder.count == 3
        # Misses cost a read (100us) + CPU; the hit costs CPU only.
        assert recorder.max_us == pytest.approx(105.0)
        assert recorder.percentile(1) == pytest.approx(5.0)

    def test_ace_improves_mean_latency(self):
        """ACE cuts the mean; the batch-paying requests bound the tail."""
        import random

        from repro.bench.runner import StackConfig, build_stack
        from repro.engine.executor import ExecutionOptions, run_trace
        from repro.workloads.trace import Trace

        from repro.storage.profiles import PCIE_SSD

        rng = random.Random(2)
        pages = [rng.randrange(2000) for _ in range(6000)]
        writes = [rng.random() < 0.5 for _ in pages]
        trace = Trace(pages, writes)
        options = ExecutionOptions(cpu_us_per_op=5.0)
        recorders = {}
        for variant in ("baseline", "ace"):
            config = StackConfig(
                profile=PCIE_SSD, policy="lru", variant=variant,
                num_pages=2000, options=options,
            )
            recorder = LatencyRecorder()
            run_trace(build_stack(config), trace, options=options,
                      latencies=recorder)
            recorders[variant] = recorder
        assert recorders["ace"].mean_us < recorders["baseline"].mean_us
