"""Tests for the serving layer: admission, deadlines, requeue, shedding."""

import pytest

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.wal import WriteAheadLog
from repro.engine.executor import ExecutionOptions, run_trace, run_transactions
from repro.engine.multiclient import interleave_traces
from repro.engine.serving import ServingConfig, ServingLayer, ServingMetrics
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultPlan
from repro.policies.lru import LRUPolicy
from repro.storage.device import SimulatedSSD
from repro.storage.profiles import DeviceProfile
from repro.workloads.tpcc.transactions import TransactionType
from repro.workloads.trace import PageRequest, Trace

PROFILE = DeviceProfile(
    name="serving-test", alpha=2.0, k_r=4, k_w=4, read_latency_us=100.0,
    submit_overhead_us=0.0, queue_overhead_us=0.0,
)

OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


def make_manager(capacity=8, num_pages=64, wal=False, fault_plan=None,
                 retry=None):
    device = SimulatedSSD(PROFILE, num_pages=num_pages)
    device.format_pages(range(num_pages))
    if fault_plan is not None:
        device = FaultyDevice(device, fault_plan)
    log = WriteAheadLog(device.clock) if wal else None
    return BufferPoolManager(capacity, LRUPolicy(), device, wal=log,
                             retry=retry)


def mixed_trace(n=60, num_pages=64, client_ids=None):
    pages = [(i * 7) % num_pages for i in range(n)]
    writes = [i % 3 == 0 for i in range(n)]
    return Trace(pages, writes, name="mixed", client_ids=client_ids)


class TestClosedLoop:
    def test_all_requests_complete_without_shedding(self):
        manager = make_manager()
        trace = mixed_trace()
        metrics = run_trace(
            manager, trace, options=OPTIONS, serving=ServingConfig()
        )
        serving = metrics.serving
        assert isinstance(serving, ServingMetrics)
        assert serving.offered == len(trace)
        assert serving.completed == len(trace)
        assert serving.shed == 0
        assert serving.expired == 0
        assert serving.failed == 0
        assert metrics.ops == len(trace)

    def test_disabled_serving_leaves_metrics_unset(self):
        manager = make_manager()
        metrics = run_trace(manager, mixed_trace(), options=OPTIONS)
        assert metrics.serving is None

    def test_closed_loop_queue_never_overflows(self):
        manager = make_manager()
        config = ServingConfig(queue_capacity=1)
        metrics = run_trace(
            manager, mixed_trace(), options=OPTIONS, serving=config
        )
        assert metrics.serving.shed == 0
        assert metrics.serving.queue_peak == 1

    def test_latencies_forwarded_to_recorder(self):
        from repro.engine.latency import LatencyRecorder

        manager = make_manager()
        layer = ServingLayer(manager, ServingConfig())
        recorder = LatencyRecorder()
        layer.serve_trace(mixed_trace(), options=OPTIONS, latencies=recorder)
        assert recorder.count == 60


class TestOpenLoopOverload:
    def run_overloaded(self, shed_policy="drop-newest", deadline=0.0):
        manager = make_manager()
        # Service time is ~100us/miss; a 5us arrival interval is far past
        # saturation, so the bounded queue must shed.
        config = ServingConfig(
            queue_capacity=8,
            deadline_us=deadline,
            shed_policy=shed_policy,
            arrival_interval_us=5.0,
        )
        metrics = run_trace(
            manager, mixed_trace(n=200), options=OPTIONS, serving=config
        )
        return metrics.serving

    @pytest.mark.parametrize(
        "shed_policy", ["drop-newest", "drop-oldest", "client-fair"]
    )
    def test_overload_sheds_and_partitions(self, shed_policy):
        serving = self.run_overloaded(shed_policy)
        assert serving.offered == 200
        assert serving.shed > 0
        assert (
            serving.shed + serving.expired + serving.failed + serving.completed
            == serving.offered
        )

    def test_deadlines_expire_queued_requests(self):
        # A deadline shorter than the queue drain time expires stragglers.
        serving = self.run_overloaded(deadline=300.0)
        assert serving.expired > 0
        assert serving.on_time <= serving.completed

    def test_goodput_counts_only_on_time(self):
        serving = self.run_overloaded()
        assert serving.elapsed_us > 0
        assert serving.goodput_per_s == pytest.approx(
            serving.on_time / (serving.elapsed_us / 1e6)
        )
        assert serving.offered_per_s > serving.goodput_per_s


class TestRequeue:
    def test_pool_exhaustion_requeues_then_fails(self):
        manager = make_manager(capacity=4, num_pages=64)
        for page in range(4):
            manager.access(page, False)
            manager.pin(page)
        config = ServingConfig(max_attempts=3, requeue_backoff_us=50.0)
        trace = Trace([10, 11], [False, False], name="starved")
        metrics = run_trace(manager, trace, options=OPTIONS, serving=config)
        serving = metrics.serving
        assert serving.failed == 2
        assert serving.completed == 0
        # Each request retried (max_attempts - 1) times before failing.
        assert serving.requeued == 2 * (config.max_attempts - 1)

    def test_permanent_fault_fails_without_requeue(self):
        plan = FaultPlan(media_error_pages=frozenset({5}))
        manager = make_manager(fault_plan=plan)
        trace = Trace([5], [False], name="bad-page")
        metrics = run_trace(
            manager, trace, options=OPTIONS, serving=ServingConfig()
        )
        serving = metrics.serving
        assert serving.failed == 1
        assert serving.requeued == 0

    def test_transient_fault_requeues_and_recovers(self):
        # With the manager's own retry layer reduced to a single attempt,
        # transient read faults escape as (non-permanent)
        # RetriesExhaustedError and must be requeued by the serving layer;
        # the injector redraws per device operation, so a later dispatch
        # of the same page succeeds.
        from repro.faults.retry import RetryPolicy

        plan = FaultPlan(seed=3, read_error_rate=0.2)
        manager = make_manager(fault_plan=plan,
                               retry=RetryPolicy(max_attempts=1))
        trace = Trace([p % 32 for p in range(120)], [False] * 120, name="r")
        config = ServingConfig(max_attempts=10, requeue_backoff_us=20.0)
        metrics = run_trace(manager, trace, options=OPTIONS, serving=config)
        serving = metrics.serving
        assert serving.requeued > 0
        assert serving.completed + serving.failed == 120
        assert serving.completed > 100


class TestPerClientAttribution:
    def test_sessions_billed_separately(self):
        a = Trace([i % 16 for i in range(30)], [False] * 30, name="a")
        b = Trace([16 + i % 16 for i in range(20)], [True] * 20, name="b")
        merged = interleave_traces([a, b], mode="random", seed=3)
        manager = make_manager(num_pages=64)
        metrics = run_trace(
            manager, merged, options=OPTIONS, serving=ServingConfig()
        )
        per_client = metrics.serving.per_client
        assert set(per_client) == {0, 1}
        assert per_client[0].offered == 30
        assert per_client[1].offered == 20
        assert per_client[0].completed == 30
        assert per_client[1].completed == 20
        assert per_client[0].latency.count == 30

    def test_plain_trace_bills_client_zero(self):
        manager = make_manager()
        metrics = run_trace(
            manager, mixed_trace(), options=OPTIONS, serving=ServingConfig()
        )
        assert set(metrics.serving.per_client) == {0}


class TestPressureGate:
    def test_pressure_threshold_sheds_at_admission(self):
        manager = make_manager(capacity=4, num_pages=64)
        for page in range(4):
            manager.access(page, True)  # all frames dirty: pressure 1.0
        config = ServingConfig(pressure_threshold=0.5)
        trace = Trace([40], [False], name="gated")
        metrics = run_trace(manager, trace, options=OPTIONS, serving=config)
        serving = metrics.serving
        assert serving.shed == 1
        assert serving.shed_pressure == 1
        assert serving.completed == 0


class TestDeterminism:
    def scenario(self):
        plan = FaultPlan(seed=11, write_error_rate=0.05, latency_spike_rate=0.05)
        manager = make_manager(capacity=8, num_pages=64, fault_plan=plan)
        config = ServingConfig(
            queue_capacity=8,
            deadline_us=2_000.0,
            shed_policy="client-fair",
            arrival_interval_us=40.0,
        )
        a = Trace([i % 32 for i in range(80)], [i % 2 == 0 for i in range(80)])
        b = Trace([32 + i % 32 for i in range(40)], [False] * 40)
        merged = interleave_traces([a, b], mode="random", seed=5,
                                   weights="remaining")
        metrics = run_trace(manager, merged, options=OPTIONS, serving=config)
        return metrics.serving.summary()

    def test_identical_runs_identical_metrics(self):
        assert self.scenario() == self.scenario()


class TestExecutorWiring:
    def test_prebuilt_layer_accepted(self):
        manager = make_manager()
        layer = ServingLayer(manager, ServingConfig())
        metrics = run_trace(manager, mixed_trace(), options=OPTIONS,
                            serving=layer)
        assert metrics.serving is layer.metrics

    def test_layer_bound_to_other_manager_rejected(self):
        layer = ServingLayer(make_manager(), ServingConfig())
        with pytest.raises(ValueError):
            run_trace(make_manager(), mixed_trace(), options=OPTIONS,
                      serving=layer)


class TestServeTransactions:
    def stream(self, n=20):
        out = []
        for index in range(n):
            pages = [PageRequest((index * 3) % 32, True),
                     PageRequest((index * 3 + 1) % 32, False)]
            kind = (
                TransactionType.NEW_ORDER if index % 2 == 0
                else TransactionType.PAYMENT
            )
            out.append((kind, pages))
        return out

    def test_closed_loop_completes_all_transactions(self):
        manager = make_manager(wal=True)
        metrics = run_transactions(
            manager, self.stream(), options=OPTIONS, serving=ServingConfig()
        )
        serving = metrics.serving
        assert serving.transactions_completed == 20
        assert metrics.transactions == 20
        assert metrics.new_order_transactions == 10
        assert metrics.ops == 40
        assert serving.committed_versions  # commit snapshots recorded

    def test_open_loop_sheds_transactions(self):
        manager = make_manager(wal=True)
        config = ServingConfig(queue_capacity=4, arrival_interval_us=5.0)
        metrics = run_transactions(
            manager, self.stream(n=100), options=OPTIONS, serving=config
        )
        serving = metrics.serving
        assert serving.offered == 100
        assert serving.shed > 0
        assert (
            serving.shed + serving.expired + serving.failed + serving.completed
            == 100
        )
