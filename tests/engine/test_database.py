"""Tests for the database layout layer."""

import pytest

from repro.bufferpool.tag import BufferTag
from repro.engine.database import AppendCursor, Database
from repro.storage.profiles import PCIE_SSD


class TestRelation:
    def test_row_to_page_mapping(self):
        db = Database()
        relation = db.add_relation("t", num_rows=100, rows_per_page=10)
        assert relation.num_pages == 10
        assert relation.page_of_row(0) == relation.base_page
        assert relation.page_of_row(99) == relation.base_page + 9

    def test_block_bounds_checked(self):
        db = Database()
        relation = db.add_relation("t", num_rows=10, rows_per_page=10)
        with pytest.raises(IndexError):
            relation.page_of_block(1)

    def test_tag_round_trip(self):
        db = Database()
        db.add_relation("first", num_rows=5, rows_per_page=1)
        relation = db.add_relation("t", num_rows=5, rows_per_page=1)
        page = relation.page_of_block(3)
        assert relation.tag_of_page(page) == BufferTag(rel_id=1, block=3)

    def test_tag_outside_relation_rejected(self):
        db = Database()
        relation = db.add_relation("t", num_rows=5, rows_per_page=1)
        with pytest.raises(IndexError):
            relation.tag_of_page(relation.end_page)


class TestDatabase:
    def test_relations_packed_contiguously(self):
        db = Database()
        a = db.add_relation("a", num_rows=10, rows_per_page=2)
        b = db.add_relation("b", num_rows=4, rows_per_page=2)
        assert a.base_page == 0
        assert b.base_page == a.end_page
        assert db.total_pages == b.end_page

    def test_duplicate_relation_rejected(self):
        db = Database()
        db.add_relation("a", num_rows=1)
        with pytest.raises(ValueError):
            db.add_relation("a", num_rows=1)

    def test_lookup_by_name_and_page(self):
        db = Database()
        a = db.add_relation("a", num_rows=10, rows_per_page=2)
        assert db.relation("a") is a
        assert db.relation_of_page(3) is a
        with pytest.raises(KeyError):
            db.relation("zzz")
        with pytest.raises(IndexError):
            db.relation_of_page(999)

    def test_headroom_extends_relation(self):
        db = Database()
        relation = db.add_relation("h", num_rows=0, rows_per_page=4, headroom_pages=6)
        assert relation.num_pages == 7  # 1 data page minimum + 6 headroom

    def test_create_device_formats_all_pages(self):
        db = Database()
        db.add_relation("a", num_rows=20, rows_per_page=2)
        device = db.create_device(PCIE_SSD)
        assert device.num_pages == db.total_pages
        assert device.contains(db.total_pages - 1)
        assert device.stats.total_ios == 0

    def test_create_device_with_ftl(self):
        db = Database()
        db.add_relation("a", num_rows=20, rows_per_page=2)
        device = db.create_device(PCIE_SSD, with_ftl=True)
        assert device.ftl is not None
        assert device.ftl.counters.logical_writes == 0  # reset after format


class TestAppendCursor:
    def test_fills_page_before_advancing(self):
        db = Database()
        relation = db.add_relation("h", num_rows=0, rows_per_page=3, headroom_pages=4)
        cursor = AppendCursor(relation)
        pages = [cursor.append() for _ in range(7)]
        assert pages[0] == pages[1] == pages[2]
        assert pages[3] == pages[4] == pages[5] != pages[0]
        assert cursor.total_appends == 7

    def test_wraps_at_relation_end(self):
        db = Database()
        relation = db.add_relation("h", num_rows=0, rows_per_page=1, headroom_pages=2)
        cursor = AppendCursor(relation)
        pages = [cursor.append() for _ in range(4)]
        assert pages[3] == pages[0]  # wrapped after 3 pages

    def test_invalid_start_block(self):
        db = Database()
        relation = db.add_relation("h", num_rows=0, rows_per_page=1)
        with pytest.raises(ValueError):
            AppendCursor(relation, start_block=99)
