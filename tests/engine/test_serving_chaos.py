"""Chaos + serving: deterministic breaker ticks, zero committed loss.

The two satellite guarantees under test:

* the breaker's trip/restore/recover ticks are a pure function of
  (trace, config, fault plan) — same seed, same ticks, tick for tick;
* with shedding actively dropping work under overload *and* faults
  injected *and* a mid-run crash, recovery still loses zero committed
  updates — shedding only ever drops unadmitted work, never work a WAL
  commit point already covered.
"""

import pytest

from repro.bench.chaos import run_cell
from repro.bench.runner import StackConfig, build_stack
from repro.engine.executor import ExecutionOptions, run_trace
from repro.engine.serving import BreakerConfig, ServingConfig
from repro.faults import FaultPlan
from repro.storage.profiles import PCIE_SSD
from repro.workloads.synthetic import WorkloadSpec, generate_trace

SPEC = WorkloadSpec("chaos-serving", read_fraction=0.3, locality=(0.9, 0.1))


def breaker_run(seed=7):
    """One spiky near-saturation serving run with an aggressive breaker."""
    plan = FaultPlan.spikes(0.02, spike_us=3_000.0, seed=seed)
    options = ExecutionOptions(cpu_us_per_op=2.0)
    config = StackConfig(
        profile=PCIE_SSD,
        policy="lru",
        variant="ace",
        num_pages=1_000,
        n_w=4 * PCIE_SSD.k_w,
        n_e=4 * PCIE_SSD.k_w,
        fault_plan=plan,
        options=options,
    )
    trace = generate_trace(SPEC, 1_000, 2_500, seed=seed)
    # Threshold low enough that queueing under the mistuned batches trips
    # it; cooldown short enough that restore/recover happen in-run.
    serving = ServingConfig(
        queue_capacity=128,
        deadline_us=0.0,
        arrival_interval_us=90.0,
        breaker=BreakerConfig(
            p99_threshold_us=1_500.0,
            window=64,
            min_samples=16,
            eval_every=4,
            cooldown_us=20_000.0,
            probation=2,
            degraded_n_w=PCIE_SSD.k_w,
            degraded_n_e=PCIE_SSD.k_w,
        ),
    )
    manager = build_stack(config)
    metrics = run_trace(manager, trace, options=options, serving=serving)
    return metrics.serving


class TestBreakerDeterminism:
    def test_same_seed_same_ticks(self):
        first = breaker_run()
        second = breaker_run()
        assert first.breaker_trips, "scenario must actually trip the breaker"
        assert first.breaker_trips == second.breaker_trips
        assert first.breaker_restores == second.breaker_restores
        assert first.breaker_recoveries == second.breaker_recoveries
        assert first.summary() == second.summary()

    def test_breaker_cycles_through_restore(self):
        serving = breaker_run()
        # The short cooldown guarantees at least one full
        # OPEN -> HALF_OPEN transition inside the run.
        assert serving.breaker_restores
        assert len(serving.breaker_trips) >= len(serving.breaker_recoveries)


SHED_CONFIG = ServingConfig(
    queue_capacity=16,
    deadline_us=200_000.0,
    shed_policy="drop-oldest",
    arrival_interval_us=30.0,
)


class TestZeroCommittedLossUnderShedding:
    @pytest.mark.parametrize("variant", ["baseline", "ace"])
    def test_crash_recover_audit_with_shedding(self, variant):
        cell = run_cell(
            "lru", variant, 0.01, num_pages=800, ops=2_400,
            serving=SHED_CONFIG,
        )
        assert cell.shed > 0, "overload pacing must actually shed"
        assert cell.committed_updates > 0
        assert cell.lost_updates == 0
        assert cell.error is None
        assert cell.ok

    def test_serving_cell_matches_itself(self):
        first = run_cell("lru", "ace", 0.01, num_pages=800, ops=2_400,
                         serving=SHED_CONFIG)
        second = run_cell("lru", "ace", 0.01, num_pages=800, ops=2_400,
                          serving=SHED_CONFIG)
        assert first == second

    def test_plain_cell_unaffected_by_serving_support(self):
        cell = run_cell("lru", "ace", 0.0, num_pages=800, ops=2_400)
        assert cell.ok
        assert cell.shed == 0
        assert cell.expired == 0
        assert cell.requeued == 0
