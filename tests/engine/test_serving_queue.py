"""Tests for the bounded admission queue and its shedding policies."""

import pytest

from repro.engine.serving.queue import AdmissionQueue, Request

INF = float("inf")


def req(index, client=0, page=None, is_write=False, arrival=0.0, deadline=INF):
    return Request(
        index,
        client,
        page if page is not None else index,
        is_write,
        arrival,
        deadline,
    )


class TestRequest:
    def test_fields_and_defaults(self):
        request = req(3, client=1, page=7, is_write=True, arrival=12.0)
        assert request.index == 3
        assert request.client == 1
        assert request.page == 7
        assert request.is_write
        assert request.attempts == 0
        assert request.not_before_us == 0.0

    def test_repr_mentions_kind_and_client(self):
        assert "W(7)" in repr(req(0, client=2, page=7, is_write=True))
        assert "client=2" in repr(req(0, client=2, page=7, is_write=True))


class TestAdmission:
    def test_below_capacity_absorbs(self):
        queue = AdmissionQueue(2, "drop-newest")
        assert queue.offer(req(0)) is None
        assert queue.offer(req(1)) is None
        assert len(queue) == 2

    def test_pop_is_fifo(self):
        queue = AdmissionQueue(4, "drop-newest")
        for index in range(3):
            queue.offer(req(index))
        assert [queue.pop().index for _ in range(3)] == [0, 1, 2]
        assert len(queue) == 0

    def test_peak_tracks_high_water_mark(self):
        queue = AdmissionQueue(8, "drop-newest")
        for index in range(5):
            queue.offer(req(index))
        for _ in range(5):
            queue.pop()
        assert queue.peak == 5

    def test_queued_for_accounting(self):
        queue = AdmissionQueue(8, "drop-newest")
        queue.offer(req(0, client=1))
        queue.offer(req(1, client=1))
        queue.offer(req(2, client=2))
        assert queue.queued_for(1) == 2
        assert queue.queued_for(2) == 1
        assert queue.queued_for(9) == 0
        queue.pop()
        assert queue.queued_for(1) == 1


class TestDropNewest:
    def test_full_queue_rejects_incoming(self):
        queue = AdmissionQueue(2, "drop-newest")
        queue.offer(req(0))
        queue.offer(req(1))
        newcomer = req(2)
        assert queue.offer(newcomer) is newcomer
        assert [queue.pop().index, queue.pop().index] == [0, 1]


class TestDropOldest:
    def test_full_queue_evicts_head(self):
        queue = AdmissionQueue(2, "drop-oldest")
        queue.offer(req(0))
        queue.offer(req(1))
        victim = queue.offer(req(2))
        assert victim.index == 0
        assert [queue.pop().index, queue.pop().index] == [1, 2]


class TestClientFair:
    def test_sheds_newest_of_heaviest_client(self):
        queue = AdmissionQueue(3, "client-fair")
        queue.offer(req(0, client=0))
        queue.offer(req(1, client=0))
        queue.offer(req(2, client=1))
        victim = queue.offer(req(3, client=2))
        # Client 0 holds the most slots; its *newest* request goes.
        assert victim.index == 1
        assert victim.client == 0
        assert [r.index for r in (queue.pop(), queue.pop(), queue.pop())] == \
            [0, 2, 3]

    def test_newcomer_of_heaviest_client_is_rejected(self):
        queue = AdmissionQueue(2, "client-fair")
        queue.offer(req(0, client=0))
        queue.offer(req(1, client=1))
        # Counting itself, client 0 would hold 2 of 3 slots: reject it.
        newcomer = req(2, client=0)
        assert queue.offer(newcomer) is newcomer
        assert queue.queued_for(0) == 1

    def test_tie_breaks_on_lower_client_id(self):
        queue = AdmissionQueue(2, "client-fair")
        queue.offer(req(0, client=5))
        queue.offer(req(1, client=3))
        victim = queue.offer(req(2, client=7))
        assert victim.client == 3

    def test_deterministic_across_identical_runs(self):
        def run():
            queue = AdmissionQueue(3, "client-fair")
            victims = []
            for index in range(12):
                victim = queue.offer(req(index, client=index % 4))
                victims.append(victim.index if victim is not None else None)
            return victims

        assert run() == run()


class TestExpiry:
    def test_expire_due_removes_past_deadline(self):
        queue = AdmissionQueue(4, "drop-newest")
        queue.offer(req(0, deadline=10.0))
        queue.offer(req(1, deadline=100.0))
        queue.offer(req(2, deadline=5.0))
        expired = queue.expire_due(20.0)
        assert sorted(r.index for r in expired) == [0, 2]
        assert len(queue) == 1
        assert queue.pop().index == 1

    def test_expire_due_empty_queue(self):
        queue = AdmissionQueue(4, "drop-newest")
        assert queue.expire_due(1e9) == []


class TestConfigValidation:
    def test_unknown_shed_policy_rejected(self):
        from repro.engine.serving import ServingConfig

        with pytest.raises(ValueError):
            ServingConfig(shed_policy="drop-random")

    def test_backoff_schedule_is_capped(self):
        from repro.engine.serving import ServingConfig

        config = ServingConfig(
            requeue_backoff_us=100.0,
            requeue_backoff_multiplier=2.0,
            requeue_backoff_cap_us=300.0,
        )
        assert config.backoff_for(1) == 100.0
        assert config.backoff_for(2) == 200.0
        assert config.backoff_for(3) == 300.0  # capped
        assert config.backoff_for(10) == 300.0

    def test_breaker_config_validation(self):
        from repro.engine.serving import BreakerConfig

        with pytest.raises(ValueError):
            BreakerConfig(min_samples=10, window=5)
        with pytest.raises(ValueError):
            BreakerConfig(p99_threshold_us=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(degraded_n_w=0)
