"""Executor fast-path equivalence: inlined replay vs per-request replay.

``run_trace`` resolves hit runs (and, for the bare baseline stack, whole
misses) inside the executor instead of calling ``manager.access`` per
request.  That inlining is pure mechanics — forcing the per-request path
via the ``hit_run_ready`` handshake must leave every observable output
byte-identical: RunMetrics, device counters, virtual clock, residency
order, dirty set, and WAL records.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bufferpool.manager import BufferPoolManager
from repro.bufferpool.wal import WriteAheadLog
from repro.core.ace import ACEBufferPoolManager
from repro.core.config import ACEConfig
from repro.engine.executor import ExecutionOptions, run_trace
from repro.errors import PoolExhaustedError
from repro.policies.registry import make_policy
from repro.storage.clock import VirtualClock
from repro.storage.device import SimulatedSSD
from repro.workloads.synthetic import MS, generate_trace

from tests.bufferpool.conftest import TEST_PROFILE

NUM_PAGES = 400
CAPACITY = 32
OPTIONS = ExecutionOptions(cpu_us_per_op=3.0)


def build(policy_name="lru", variant="baseline", *, with_wal=False):
    clock = VirtualClock()
    device = SimulatedSSD(TEST_PROFILE, num_pages=NUM_PAGES, clock=clock)
    device.format_pages(range(NUM_PAGES))
    policy = make_policy(policy_name, CAPACITY)
    wal = WriteAheadLog(clock) if with_wal else None
    if variant == "baseline":
        return BufferPoolManager(CAPACITY, policy, device, wal=wal)
    config = ACEConfig.for_device(
        TEST_PROFILE, prefetch_enabled=(variant == "ace+pf")
    )
    return ACEBufferPoolManager(
        CAPACITY, policy, device, wal=wal, config=config
    )


def fingerprint(manager, metrics):
    wal = manager.wal
    return {
        "buffer": dataclasses.asdict(metrics.buffer),
        "device": dataclasses.asdict(metrics.device),
        "elapsed_us": metrics.elapsed_us,
        "io_time_us": metrics.io_time_us,
        "cpu_time_us": metrics.cpu_time_us,
        "clock_us": manager.device.clock.now_us,
        "residency_order": manager.table.pages(),
        "dirty": sorted(manager.dirty_pages()),
        "wal_records": None if wal is None else wal._records,
    }


def run_one(policy_name, variant, *, with_wal, force_slow, ops=2500, seed=11):
    manager = build(policy_name, variant, with_wal=with_wal)
    assert type(manager).hit_run_ready is True
    if force_slow:
        # Instance override defeats the handshake: run_trace falls back
        # to the per-request ``manager.access`` loop.
        manager.hit_run_ready = False
    trace = generate_trace(MS, NUM_PAGES, ops, seed=seed)
    metrics = run_trace(manager, trace, options=OPTIONS)
    return fingerprint(manager, metrics)


@pytest.mark.parametrize("policy_name", ["lru", "clock", "lfu"])
def test_turbo_baseline_matches_per_request(policy_name):
    """Bare baseline stack: the fully inlined miss path vs access()."""
    fast = run_one(policy_name, "baseline", with_wal=False, force_slow=False)
    slow = run_one(policy_name, "baseline", with_wal=False, force_slow=True)
    assert fast == slow


def test_hit_run_path_with_wal_matches_per_request():
    """A WAL disqualifies the turbo path; the hit-run path must agree too."""
    fast = run_one("lru", "baseline", with_wal=True, force_slow=False)
    slow = run_one("lru", "baseline", with_wal=True, force_slow=True)
    assert fast == slow


@pytest.mark.parametrize("variant", ["ace", "ace+pf"])
def test_ace_hit_run_matches_per_request(variant):
    fast = run_one("lru", variant, with_wal=True, force_slow=False)
    slow = run_one("lru", variant, with_wal=True, force_slow=True)
    assert fast == slow


def test_fast_path_error_parity():
    """A mid-trace out-of-range page fails identically on both paths.

    The inlined executor batches commuting counters in locals; on an
    exception those batches flush in ``finally`` so the counters must
    cover exactly the requests that completed — the same totals the
    per-request path leaves behind.
    """
    results = []
    for force_slow in (False, True):
        manager = build("lru", "baseline")
        if force_slow:
            manager.hit_run_ready = False
        trace = generate_trace(MS, NUM_PAGES, 600, seed=3)
        trace.pages[450] = NUM_PAGES + 7  # beyond the device
        with pytest.raises(IndexError):
            run_trace(manager, trace, options=OPTIONS)
        results.append({
            "buffer": dataclasses.asdict(manager.stats),
            "device": dataclasses.asdict(manager.device.stats),
            "residency_order": manager.table.pages(),
            "dirty": sorted(manager.dirty_pages()),
        })
    assert results[0] == results[1]


def test_pool_exhaustion_error_parity():
    """Every frame pinned: the next miss raises the same way on both paths."""
    results = []
    for force_slow in (False, True):
        manager = build("lru", "baseline")
        if force_slow:
            manager.hit_run_ready = False
        for page in range(CAPACITY):
            manager.read_page(page)
            manager.pin(page)
        trace = generate_trace(MS, NUM_PAGES, 50, seed=5)
        trace.pages[0] = CAPACITY + 1  # guaranteed miss, no victim
        with pytest.raises(PoolExhaustedError):
            run_trace(manager, trace, options=OPTIONS)
        results.append({
            "buffer": dataclasses.asdict(manager.stats),
            "device": dataclasses.asdict(manager.device.stats),
        })
    assert results[0] == results[1]
