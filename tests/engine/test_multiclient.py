"""Tests for multi-client interleaving."""

import pytest

from repro.engine.multiclient import interleave_traces, interleave_transactions
from repro.workloads.trace import PageRequest, Trace


def client(pages, writes=None, name="c"):
    if writes is None:
        writes = [False] * len(pages)
    return Trace(pages, writes, name=name)


class TestInterleaveTraces:
    def test_round_robin_order(self):
        merged = interleave_traces(
            [client([1, 2, 3]), client([10, 20, 30])], mode="round_robin"
        )
        assert merged.pages == [1, 10, 2, 20, 3, 30]

    def test_uneven_lengths(self):
        merged = interleave_traces(
            [client([1, 2, 3, 4]), client([10])], mode="round_robin"
        )
        assert merged.pages == [1, 10, 2, 3, 4]

    def test_preserves_every_request(self):
        a = client([1, 2], [True, False])
        b = client([3], [True])
        merged = interleave_traces([a, b], mode="random", seed=5)
        assert sorted(merged.pages) == [1, 2, 3]
        assert sum(merged.writes) == 2

    def test_per_client_order_preserved_random(self):
        a = client(list(range(50)))
        b = client(list(range(100, 150)))
        merged = interleave_traces([a, b], mode="random", seed=9)
        a_positions = [p for p in merged.pages if p < 100]
        b_positions = [p for p in merged.pages if p >= 100]
        assert a_positions == sorted(a_positions)
        assert b_positions == sorted(b_positions)

    def test_random_deterministic_by_seed(self):
        traces = [client([1, 2, 3]), client([4, 5, 6])]
        first = interleave_traces(traces, mode="random", seed=1)
        second = interleave_traces(traces, mode="random", seed=1)
        assert first.pages == second.pages

    def test_single_client_passthrough(self):
        merged = interleave_traces([client([7, 8])])
        assert merged.pages == [7, 8]

    def test_empty_client_list_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces([])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces([client([1])], mode="zigzag")

    def test_name(self):
        merged = interleave_traces([client([1]), client([2])])
        assert merged.name == "interleaved[2]"

    def test_interleaving_dilutes_locality(self):
        """Many clients scanning disjoint ranges destroy sequentiality."""
        clients = [
            client(list(range(base, base + 40))) for base in range(0, 400, 40)
        ]
        merged = interleave_traces(clients, mode="round_robin")
        sequential_steps = sum(
            1 for a, b in zip(merged.pages, merged.pages[1:]) if b == a + 1
        )
        assert sequential_steps < len(merged) * 0.1


class TestInterleaveTransactions:
    def test_atomic_transactions(self):
        streams = [
            [("t1", [PageRequest(1, True), PageRequest(2, True)])],
            [("t2", [PageRequest(3, False)])],
        ]
        merged = interleave_transactions(streams, seed=2)
        assert len(merged) == 2
        kinds = [kind for kind, _ in merged]
        assert sorted(kinds) == ["t1", "t2"]
        for _, requests in merged:
            assert isinstance(requests, list)

    def test_per_client_order_preserved(self):
        streams = [
            [("a1", []), ("a2", []), ("a3", [])],
            [("b1", []), ("b2", [])],
        ]
        merged = interleave_transactions(streams, seed=3)
        a_order = [kind for kind, _ in merged if kind.startswith("a")]
        b_order = [kind for kind, _ in merged if kind.startswith("b")]
        assert a_order == ["a1", "a2", "a3"]
        assert b_order == ["b1", "b2"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interleave_transactions([])
