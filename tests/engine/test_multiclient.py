"""Tests for multi-client interleaving."""

import pytest

from repro.engine.multiclient import interleave_traces, interleave_transactions
from repro.workloads.trace import PageRequest, Trace


def client(pages, writes=None, name="c"):
    if writes is None:
        writes = [False] * len(pages)
    return Trace(pages, writes, name=name)


class TestInterleaveTraces:
    def test_round_robin_order(self):
        merged = interleave_traces(
            [client([1, 2, 3]), client([10, 20, 30])], mode="round_robin"
        )
        assert merged.pages == [1, 10, 2, 20, 3, 30]

    def test_uneven_lengths(self):
        merged = interleave_traces(
            [client([1, 2, 3, 4]), client([10])], mode="round_robin"
        )
        assert merged.pages == [1, 10, 2, 3, 4]

    def test_preserves_every_request(self):
        a = client([1, 2], [True, False])
        b = client([3], [True])
        merged = interleave_traces([a, b], mode="random", seed=5)
        assert sorted(merged.pages) == [1, 2, 3]
        assert sum(merged.writes) == 2

    def test_per_client_order_preserved_random(self):
        a = client(list(range(50)))
        b = client(list(range(100, 150)))
        merged = interleave_traces([a, b], mode="random", seed=9)
        a_positions = [p for p in merged.pages if p < 100]
        b_positions = [p for p in merged.pages if p >= 100]
        assert a_positions == sorted(a_positions)
        assert b_positions == sorted(b_positions)

    def test_random_deterministic_by_seed(self):
        traces = [client([1, 2, 3]), client([4, 5, 6])]
        first = interleave_traces(traces, mode="random", seed=1)
        second = interleave_traces(traces, mode="random", seed=1)
        assert first.pages == second.pages

    def test_single_client_passthrough(self):
        merged = interleave_traces([client([7, 8])])
        assert merged.pages == [7, 8]

    def test_empty_client_list_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces([])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces([client([1])], mode="zigzag")

    def test_name(self):
        merged = interleave_traces([client([1]), client([2])])
        assert merged.name == "interleaved[2]"

    def test_client_ids_attribute_every_request(self):
        a = client([1, 2, 3])
        b = client([10, 20])
        merged = interleave_traces([a, b], mode="random", seed=4)
        assert merged.client_ids is not None
        assert len(merged.client_ids) == len(merged)
        by_client = {0: [], 1: []}
        for page, owner in zip(merged.pages, merged.client_ids):
            by_client[owner].append(page)
        assert by_client[0] == [1, 2, 3]
        assert by_client[1] == [10, 20]

    def test_round_robin_emits_client_ids(self):
        merged = interleave_traces(
            [client([1, 2]), client([10, 20])], mode="round_robin"
        )
        assert merged.client_ids == [0, 1, 0, 1]

    def test_interleaving_dilutes_locality(self):
        """Many clients scanning disjoint ranges destroy sequentiality."""
        clients = [
            client(list(range(base, base + 40))) for base in range(0, 400, 40)
        ]
        merged = interleave_traces(clients, mode="round_robin")
        sequential_steps = sum(
            1 for a, b in zip(merged.pages, merged.pages[1:]) if b == a + 1
        )
        assert sequential_steps < len(merged) * 0.1


class TestWeights:
    def test_remaining_weights_interleave_unequal_clients(self):
        # With "remaining" weights every outstanding request is equally
        # likely, so the short client should not be exhausted long before
        # the heavy one stops sharing the schedule.
        heavy = client(list(range(100, 300)))
        light = client(list(range(20)))
        merged = interleave_traces(
            [heavy, light], mode="random", seed=8, weights="remaining"
        )
        last_light = max(
            i for i, owner in enumerate(merged.client_ids) if owner == 1
        )
        assert last_light > len(merged) // 2

    def test_explicit_weights_skew_the_draw(self):
        a = client(list(range(100)))
        b = client(list(range(100, 200)))
        merged = interleave_traces(
            [a, b], mode="random", seed=8, weights=[9.0, 1.0]
        )
        # Client 0 is drawn 9x as often, so its work finishes well before
        # the midpoint of the merged schedule.
        last_a = max(
            i for i, owner in enumerate(merged.client_ids) if owner == 0
        )
        assert last_a < len(merged) * 0.75

    def test_weighted_draw_deterministic_by_seed(self):
        traces = [client(list(range(30))), client(list(range(50, 90)))]
        first = interleave_traces(
            traces, mode="random", seed=6, weights="remaining"
        )
        second = interleave_traces(
            traces, mode="random", seed=6, weights="remaining"
        )
        assert first.pages == second.pages
        assert first.client_ids == second.client_ids

    def test_weights_preserve_per_client_order(self):
        a = client(list(range(50)))
        b = client(list(range(100, 150)))
        merged = interleave_traces(
            [a, b], mode="random", seed=9, weights=[1.0, 3.0]
        )
        a_pages = [p for p in merged.pages if p < 100]
        b_pages = [p for p in merged.pages if p >= 100]
        assert a_pages == sorted(a_pages)
        assert b_pages == sorted(b_pages)

    def test_weights_require_random_mode(self):
        with pytest.raises(ValueError):
            interleave_traces(
                [client([1]), client([2])],
                mode="round_robin",
                weights="remaining",
            )

    def test_unknown_weights_spec_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces(
                [client([1])], mode="random", weights="proportional"
            )

    def test_weights_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces(
                [client([1]), client([2])], mode="random", weights=[1.0]
            )

    def test_non_positive_weight_for_nonempty_client_rejected(self):
        with pytest.raises(ValueError):
            interleave_traces(
                [client([1]), client([2])],
                mode="random",
                weights=[1.0, 0.0],
            )

    def test_zero_weight_allowed_for_empty_client(self):
        merged = interleave_traces(
            [client([1, 2]), client([])], mode="random", weights=[1.0, 0.0]
        )
        assert merged.pages == [1, 2]
        assert merged.client_ids == [0, 0]


class TestInterleaveTransactions:
    def test_atomic_transactions(self):
        streams = [
            [("t1", [PageRequest(1, True), PageRequest(2, True)])],
            [("t2", [PageRequest(3, False)])],
        ]
        merged = interleave_transactions(streams, seed=2)
        assert len(merged) == 2
        kinds = [kind for kind, _ in merged]
        assert sorted(kinds) == ["t1", "t2"]
        for _, requests in merged:
            assert isinstance(requests, list)

    def test_per_client_order_preserved(self):
        streams = [
            [("a1", []), ("a2", []), ("a3", [])],
            [("b1", []), ("b2", [])],
        ]
        merged = interleave_transactions(streams, seed=3)
        a_order = [kind for kind, _ in merged if kind.startswith("a")]
        b_order = [kind for kind, _ in merged if kind.startswith("b")]
        assert a_order == ["a1", "a2", "a3"]
        assert b_order == ["b1", "b2"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interleave_transactions([])
