"""Quickstart: wrap a replacement policy with ACE and measure the gain.

Builds the paper's PCIe SSD (alpha = 2.8, k_w = 8), runs the same mixed
skewed workload through a classic LRU bufferpool and through ACE-LRU (with
and without prefetching), and prints runtime, miss ratio, and write-batch
statistics for each.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ACEBufferPoolManager,
    ACEConfig,
    BufferPoolManager,
    LRUPolicy,
    PCIE_SSD,
    SimulatedSSD,
    run_trace,
    speedup,
)
from repro.engine import ExecutionOptions
from repro.workloads import MS, generate_trace

NUM_PAGES = 10_000   # database size in pages
POOL_SIZE = 600      # bufferpool frames (6% of the data, as in the paper)
NUM_OPS = 20_000     # page requests to replay


def build_device() -> SimulatedSSD:
    """A fresh, formatted simulated PCIe SSD."""
    device = SimulatedSSD(PCIE_SSD, num_pages=NUM_PAGES)
    device.format_pages(range(NUM_PAGES))
    return device


def main() -> None:
    trace = generate_trace(MS, NUM_PAGES, NUM_OPS, seed=7)
    options = ExecutionOptions(cpu_us_per_op=10.0)
    print(f"Workload: {trace} on {PCIE_SSD.name} "
          f"(alpha={PCIE_SSD.alpha}, k_w={PCIE_SSD.k_w})\n")

    # 1. The classic bufferpool: one I/O at a time.
    baseline = BufferPoolManager(POOL_SIZE, LRUPolicy(), build_device())
    base_metrics = run_trace(baseline, trace, options=options, label="LRU")

    # 2. ACE wrapping the same policy: batched concurrent write-back.
    ace = ACEBufferPoolManager(
        POOL_SIZE, LRUPolicy(), build_device(),
        config=ACEConfig.for_device(PCIE_SSD),
    )
    ace_metrics = run_trace(ace, trace, options=options, label="ACE-LRU")

    # 3. ACE with the composite prefetcher (TaP + history table).
    ace_pf = ACEBufferPoolManager(
        POOL_SIZE, LRUPolicy(), build_device(),
        config=ACEConfig.for_device(PCIE_SSD, prefetch_enabled=True),
    )
    pf_metrics = run_trace(ace_pf, trace, options=options, label="ACE-LRU+PF")

    for metrics, manager in (
        (base_metrics, baseline), (ace_metrics, ace), (pf_metrics, ace_pf)
    ):
        stats = manager.stats
        print(
            f"{metrics.label:11s} runtime={metrics.runtime_s:7.3f}s  "
            f"miss={stats.miss_ratio:6.2%}  "
            f"writebacks={stats.writebacks:5d}  "
            f"mean batch={stats.mean_writeback_batch:4.1f}"
        )

    print(f"\nACE speedup:     {speedup(base_metrics, ace_metrics):.2f}x")
    print(f"ACE+PF speedup:  {speedup(base_metrics, pf_metrics):.2f}x")
    print("\nThe batched write-back (mean batch = k_w = 8) amortizes the")
    print("asymmetric write cost — same policy, same workload, less time.")


if __name__ == "__main__":
    main()
