"""Crash recovery: why delayed (and batched) write-back is safe.

ACE aggressively batches write-backs, and both managers keep committed
updates dirty in memory for a long time.  The WAL makes that safe.  This
example runs transactions against an ACE pool, power-fails the system
mid-run, replays the log, and verifies every committed update survived.

Run with::

    python examples/crash_recovery.py
"""

import random

from repro import (
    ACEBufferPoolManager,
    ACEConfig,
    LRUPolicy,
    PCIE_SSD,
    SimulatedSSD,
    WriteAheadLog,
    recover,
    simulate_crash,
)

NUM_PAGES = 2_000
POOL_SIZE = 120


def main() -> None:
    device = SimulatedSSD(PCIE_SSD, num_pages=NUM_PAGES)
    device.format_pages(range(NUM_PAGES))
    wal = WriteAheadLog(device.clock, records_per_page=8)
    manager = ACEBufferPoolManager(
        POOL_SIZE, LRUPolicy(), device, wal=wal,
        config=ACEConfig.for_device(PCIE_SSD),
    )

    rng = random.Random(11)
    committed: dict[int, int] = {}
    in_flight: dict[int, int] = {}
    for txn in range(300):
        # A small transaction: 3 page updates, then commit (WAL flush).
        for _ in range(3):
            page = rng.randrange(NUM_PAGES)
            in_flight[page] = manager.write_page(page)
        if txn < 299:  # the very last transaction never commits
            wal.flush()
            committed.update(in_flight)
            in_flight.clear()

    print(f"Ran 300 transactions; {len(committed)} pages committed, "
          f"{len(manager.dirty_pages())} pages still dirty in memory.")

    image = simulate_crash(manager)
    print(f"\nPOWER FAILURE: {len(image.lost_dirty_pages)} dirty pages lost "
          f"from memory; WAL durable through LSN {image.wal.durable_lsn}.")

    stale = sum(
        1 for page, version in committed.items()
        if image.device._payloads[page] != version
    )
    print(f"Device is stale for {stale} committed pages before recovery.")

    report = recover(image)
    print(f"\nREDO: scanned {report.records_scanned} records from "
          f"LSN {report.start_lsn}, reapplied {report.redo_applied} updates.")

    lost = [
        page for page, version in committed.items()
        if image.device._payloads[page] != version
    ]
    print(f"Committed pages still stale after recovery: {len(lost)}")
    assert not lost, "durability violated!"
    uncommitted_recovered = [
        page for page, version in in_flight.items()
        if image.device._payloads[page] == version
        and committed.get(page) != version
    ]
    print(f"Uncommitted final transaction recovered: "
          f"{len(uncommitted_recovered)} pages (expected 0 unless its "
          f"records piggybacked on a group-commit flush).")
    print("\nEvery committed update survived the crash — batched write-back "
          "costs nothing in durability.")


if __name__ == "__main__":
    main()
