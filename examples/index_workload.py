"""Index + heap traffic: a B-tree-backed table through the bufferpool.

PostgreSQL reads index pages through the same bufferpool as heap pages.
This example builds a table with a primary-key B-tree, runs a lookup/update
mix where every operation traverses the index before touching the heap, and
shows (i) the natural skew of index traffic (the root never leaves the
pool) and (ii) ACE batching heap+leaf write-backs together.

Run with::

    python examples/index_workload.py
"""

import random

from repro import PCIE_SSD, LRUPolicy, run_trace, speedup
from repro.bufferpool import BufferPoolManager
from repro.core import ACEBufferPoolManager, ACEConfig
from repro.engine import Database, ExecutionOptions
from repro.engine.btree import BTreeIndex
from repro.workloads import Trace
from repro.workloads.trace import PageRequest

NUM_ROWS = 200_000
ROWS_PER_PAGE = 40
NUM_OPS = 4_000
POOL_FRACTION = 0.06
OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


def build_schema():
    database = Database(name="indexed-table")
    heap = database.add_relation("orders_heap", NUM_ROWS, ROWS_PER_PAGE)
    index = BTreeIndex(database, "orders_pkey", num_keys=NUM_ROWS,
                       fanout=128, leaf_capacity=128)
    return database, heap, index


def build_trace(heap, index) -> Trace:
    rng = random.Random(31)
    requests: list[PageRequest] = []
    hot_keys = [rng.randrange(NUM_ROWS) for _ in range(NUM_ROWS // 10)]
    for _ in range(NUM_OPS):
        # 90/10 skew over keys, as in the paper's synthetic workloads.
        if rng.random() < 0.9:
            key = hot_keys[rng.randrange(len(hot_keys))]
        else:
            key = rng.randrange(NUM_ROWS)
        if rng.random() < 0.5:  # UPDATE ... WHERE pk = key
            requests.extend(index.insert(key, split_probability=0.01, rng=rng))
            requests.append(PageRequest(heap.page_of_row(key), False))
            requests.append(PageRequest(heap.page_of_row(key), True))
        else:                    # SELECT ... WHERE pk = key
            requests.extend(index.lookup(key))
            requests.append(PageRequest(heap.page_of_row(key), False))
    return Trace.from_requests(requests, name="indexed lookup/update mix")


def main() -> None:
    database, heap, index = build_schema()
    trace = build_trace(heap, index)
    capacity = max(4, int(database.total_pages * POOL_FRACTION))
    print(f"Schema: heap {heap.num_pages} pages + index "
          f"{index.shape.total_pages} pages (height {index.shape.height}); "
          f"pool {capacity} frames\n")

    results = {}
    for label, cls, kwargs in (
        ("LRU", BufferPoolManager, {}),
        ("ACE-LRU", ACEBufferPoolManager,
         {"config": ACEConfig.for_device(PCIE_SSD)}),
    ):
        device = database.create_device(PCIE_SSD)
        manager = cls(capacity, LRUPolicy(), device, **kwargs)
        results[label] = run_trace(manager, trace, options=OPTIONS, label=label)
        metrics = results[label]
        root_resident = manager.contains(index.root_page())
        print(f"{label:8s} runtime={metrics.runtime_s:7.3f}s  "
              f"miss={metrics.miss_ratio:6.2%}  "
              f"wb batch={metrics.buffer.mean_writeback_batch:4.1f}  "
              f"root cached={root_resident}")

    print(f"\nSpeedup: {speedup(results['LRU'], results['ACE-LRU']):.2f}x")
    print("Index upper levels stay pinned by recency (the root is touched")
    print("by every operation); ACE batches the leaf + heap write-backs.")


if __name__ == "__main__":
    main()
