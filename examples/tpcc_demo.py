"""TPC-C demo: run the five transactions through baseline and ACE pools.

Builds a small TPC-C database (the nine tables laid out over simulated
pages), replays the standard transaction mix (NewOrder 45 %, Payment 43 %,
OrderStatus 4 %, StockLevel 4 %, Delivery 4 %) against a Clock Sweep
bufferpool and its ACE counterpart, and reports tpmC plus per-transaction
behaviour — miniature Figure 11 / Figure 12.

Run with::

    python examples/tpcc_demo.py
"""

from repro import PCIE_SSD, TPCCWorkload, TransactionType, run_transactions, speedup
from repro.bench.runner import StackConfig, build_stack
from repro.engine import ExecutionOptions

WAREHOUSES = 4
TRANSACTIONS = 400
OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


def run_variant(variant: str, stream, num_pages: int):
    config = StackConfig(
        profile=PCIE_SSD,
        policy="clock",            # PostgreSQL's default
        variant=variant,
        num_pages=num_pages,
        with_wal=True,             # WAL on a separate device, as in the paper
        options=OPTIONS,
    )
    manager = build_stack(config)
    metrics = run_transactions(manager, stream, options=OPTIONS, label=variant)
    return manager, metrics


def main() -> None:
    workload = TPCCWorkload(warehouses=WAREHOUSES, row_scale=0.05, seed=21)
    print(f"TPC-C: {WAREHOUSES} warehouses, {workload.total_pages} pages, "
          f"{TRANSACTIONS} transactions (standard mix)\n")

    # Generate the stream once so both variants replay identical work.
    stream = list(workload.transaction_stream(TRANSACTIONS))
    counts: dict[TransactionType, int] = {}
    for kind, _ in stream:
        counts[kind] = counts.get(kind, 0) + 1
    for kind, count in sorted(counts.items(), key=lambda item: -item[1]):
        print(f"  {kind.value:12s} {count:4d} ({count / len(stream):.0%})")
    print()

    base_manager, base = run_variant("baseline", stream, workload.total_pages)
    ace_manager, ace = run_variant("ace+pf", stream, workload.total_pages)

    for label, manager, metrics in (
        ("Clock Sweep", base_manager, base),
        ("ACE-Clock+PF", ace_manager, ace),
    ):
        print(
            f"{label:13s} runtime={metrics.runtime_s:7.3f}s  "
            f"tpmC={metrics.tpmc:8.0f}  miss={metrics.miss_ratio:6.2%}  "
            f"l-writes={metrics.logical_writes:6d}  "
            f"WAL pages={metrics.wal_pages_written}"
        )

    print(f"\nSpeedup (TPC-C mix): {speedup(base, ace):.2f}x")
    print("Write-back batches:",
          f"baseline mean {base.buffer.mean_writeback_batch:.1f} vs",
          f"ACE mean {ace.buffer.mean_writeback_batch:.1f} (k_w = 8)")


if __name__ == "__main__":
    main()
