"""Extending ACE: write a custom replacement policy and wrap it.

The paper's "ease of adoption" goal: ACE composes with *any* replacement
policy through the virtual-order API.  This example implements MRU (Most
Recently Used — useful for cyclic scans) from scratch against
:class:`repro.ReplacementPolicy`, registers it, and shows that the
unmodified ACE wrapper accelerates it exactly as it does the built-ins.

Run with::

    python examples/custom_policy.py
"""

from collections import OrderedDict
from collections.abc import Iterator

from repro import (
    PCIE_SSD,
    ReplacementPolicy,
    register_policy,
    run_trace,
    speedup,
)
from repro.bench.runner import StackConfig, build_stack
from repro.engine import ExecutionOptions
from repro.workloads import MS, generate_trace

NUM_PAGES = 8_000
NUM_OPS = 15_000
OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


class MRUPolicy(ReplacementPolicy):
    """Most Recently Used: evict the page touched last.

    The implementation only has to provide membership tracking, a stateful
    ``select_victim`` and the side-effect-free ``eviction_order`` (the
    virtual order ACE's Writer and Evictor consume).
    """

    name = "mru"

    def __init__(self) -> None:
        super().__init__()
        # Last item = most recently used = next victim.
        self._order: OrderedDict[int, None] = OrderedDict()

    def insert(self, page: int, cold: bool = False) -> None:
        if page in self._order:
            raise ValueError(f"page {page} already tracked")
        self._order[page] = None
        if cold:
            # Cold pages should leave first: for MRU that IS the MRU end,
            # so a plain insert already does the right thing.
            pass

    def remove(self, page: int) -> None:
        del self._order[page]

    def on_access(self, page: int, is_write: bool = False) -> None:
        self._order.move_to_end(page)

    def __contains__(self, page: int) -> bool:
        return page in self._order

    def __len__(self) -> int:
        return len(self._order)

    def pages(self) -> list[int]:
        return list(self._order)

    def select_victim(self) -> int | None:
        for page in reversed(self._order):
            if not self._view.is_pinned(page):
                return page
        return None

    def eviction_order(self) -> Iterator[int]:
        for page in reversed(self._order):
            if not self._view.is_pinned(page):
                yield page


def main() -> None:
    register_policy("mru", lambda capacity: MRUPolicy(), display="MRU")
    print("Registered custom policy 'mru'; ACE wraps it unchanged.\n")

    trace = generate_trace(MS, NUM_PAGES, NUM_OPS, seed=33)
    results = {}
    for variant in ("baseline", "ace", "ace+pf"):
        config = StackConfig(
            profile=PCIE_SSD, policy="mru", variant=variant,
            num_pages=NUM_PAGES, options=OPTIONS,
        )
        manager = build_stack(config)
        results[variant] = run_trace(
            manager, trace, options=OPTIONS, label=f"MRU/{variant}"
        )
        metrics = results[variant]
        print(f"{metrics.label:14s} runtime={metrics.runtime_s:7.3f}s  "
              f"miss={metrics.miss_ratio:6.2%}  "
              f"mean wb batch={metrics.buffer.mean_writeback_batch:4.1f}")

    print(f"\nACE speedup over baseline MRU:    "
          f"{speedup(results['baseline'], results['ace']):.2f}x")
    print(f"ACE+PF speedup over baseline MRU: "
          f"{speedup(results['baseline'], results['ace+pf']):.2f}x")
    print("\nNo ACE code was modified: the wrapper consumed MRU's virtual")
    print("order exactly as it consumes LRU's or Clock Sweep's.")


if __name__ == "__main__":
    main()
