"""SSD wear analysis: SMART counters, write amplification, ACE's impact.

The paper's Table III / Figure 9 argument: ACE's batched write-backs do not
increase flash wear.  This example runs an extended write-heavy workload on
an FTL-backed device for LRU-WSR and ACE-LRU-WSR, captures SMART snapshots,
and reports logical writes, NAND writes, write amplification, erase cycles,
and the wear-leveling spread.

Run with::

    python examples/wear_analysis.py
"""

from repro import (
    LRUWSRPolicy,
    PCIE_SSD,
    SimulatedSSD,
    SmartMonitor,
    run_trace,
    speedup,
)
from repro.bufferpool import BufferPoolManager
from repro.core import ACEBufferPoolManager, ACEConfig
from repro.engine import ExecutionOptions
from repro.workloads import WIS, generate_trace

NUM_PAGES = 8_000
POOL_SIZE = 480
NUM_OPS = 30_000
OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


def build(variant: str):
    device = SimulatedSSD(
        PCIE_SSD, num_pages=NUM_PAGES, with_ftl=True, over_provision=0.08
    )
    device.format_pages(range(NUM_PAGES))
    if variant == "baseline":
        manager = BufferPoolManager(POOL_SIZE, LRUWSRPolicy(), device)
    else:
        manager = ACEBufferPoolManager(
            POOL_SIZE, LRUWSRPolicy(), device,
            config=ACEConfig.for_device(PCIE_SSD, prefetch_enabled=True),
        )
    return manager, SmartMonitor(device, endurance_cycles=3000)


def main() -> None:
    trace = generate_trace(WIS, NUM_PAGES, NUM_OPS, seed=17)
    print(f"Write-intensive workload ({NUM_OPS} ops, 90% writes) on an "
          f"FTL-backed {PCIE_SSD.name}\n")
    metrics = {}
    for variant, label in (("baseline", "LRU-WSR"), ("ace", "ACE-LRU-WSR")):
        manager, monitor = build(variant)
        before = monitor.snapshot()
        metrics[label] = run_trace(manager, trace, options=OPTIONS, label=label)
        after = monitor.snapshot()
        delta = after.delta(before)
        erase_counts = [
            count for count in manager.device.ftl.erase_counts() if count
        ]
        spread = (max(erase_counts) - min(erase_counts)) if erase_counts else 0
        print(f"{label}:")
        print(f"  runtime          {metrics[label].runtime_s:9.3f} s")
        print(f"  host writes      {delta.host_writes:9d}")
        print(f"  NAND writes      {delta.nand_writes:9d}")
        print(f"  write amp        {after.write_amplification:9.2f}x")
        print(f"  erase cycles     {delta.erase_cycles:9d}")
        print(f"  wear (worst blk) {monitor.wear_percentage():8.2f}%")
        print(f"  erase spread     {spread:9d} cycles\n")

    base, ace = metrics["LRU-WSR"], metrics["ACE-LRU-WSR"]
    write_delta = 100 * (ace.physical_writes - base.physical_writes) / base.physical_writes
    print(f"Speedup: {speedup(base, ace):.2f}x with {write_delta:+.2f}% "
          f"physical writes — the paper's 'no hidden cost' result.")


if __name__ == "__main__":
    main()
