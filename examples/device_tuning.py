"""Device tuning: probe an unknown SSD and auto-configure ACE.

The paper sets ACE's write-back batch size to the device's measured write
concurrency (n_w = k_w) and shows the speedup peaking exactly there.  This
example treats a device as a black box: it measures alpha / k_r / k_w with
the probe (the paper's Table I methodology), configures ACE from the
measurements, and verifies the tuning with an n_w sweep.

Run with::

    python examples/device_tuning.py
"""

from repro import PAPER_DEVICES, probe_device, speedup
from repro.bench.runner import StackConfig, run_config
from repro.engine import ExecutionOptions
from repro.workloads import MS, generate_trace

NUM_PAGES = 8_000
NUM_OPS = 12_000
OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


def tune_and_verify(profile) -> None:
    # Step 1: measure the device like the paper's Table I benchmark does.
    measured = probe_device(profile, max_batch=96)
    print(f"\n{measured.name}: measured alpha={measured.alpha:.2f}, "
          f"k_r={measured.k_r}, k_w={measured.k_w}")
    print(f"  -> configure ACE with n_w = n_e = {measured.k_w}")

    # Step 2: verify with an n_w sweep around the measured k_w.
    trace = generate_trace(MS, NUM_PAGES, NUM_OPS, seed=13)
    baseline = run_config(
        StackConfig(profile=profile, policy="lru", variant="baseline",
                    num_pages=NUM_PAGES, options=OPTIONS),
        trace,
    )
    candidates = sorted({
        1,
        max(1, measured.k_w // 2),
        measured.k_w,
        measured.k_w * 2,
    })
    best_n_w, best_gain = None, 0.0
    for n_w in candidates:
        ace = run_config(
            StackConfig(profile=profile, policy="lru", variant="ace",
                        num_pages=NUM_PAGES, n_w=n_w, n_e=n_w,
                        options=OPTIONS),
            trace,
        )
        gain = speedup(baseline, ace)
        marker = "  <- measured k_w" if n_w == measured.k_w else ""
        print(f"  n_w={n_w:3d}: speedup {gain:.2f}x{marker}")
        if gain > best_gain:
            best_n_w, best_gain = n_w, gain
    print(f"  best n_w by sweep: {best_n_w} "
          f"({'matches' if best_n_w == measured.k_w else 'differs from'} "
          f"the probe)")


def main() -> None:
    print("Auto-tuning ACE from device measurements (paper Table I method)")
    for profile in PAPER_DEVICES:
        tune_and_verify(profile)


if __name__ == "__main__":
    main()
