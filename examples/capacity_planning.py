"""Capacity planning: size a bufferpool analytically, then verify by simulation.

Uses Che's approximation to predict LRU hit ratios for a skewed workload at
several candidate pool sizes, picks the knee of the curve, and verifies the
prediction (and ACE's speedup at that size) against the simulator.

Run with::

    python examples/capacity_planning.py
"""

from repro import PCIE_SSD, expected_hit_ratio, speedup
from repro.bench.runner import StackConfig, run_config
from repro.engine import ExecutionOptions
from repro.workloads import MS, generate_trace

NUM_PAGES = 15_000
NUM_OPS = 25_000
OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)
CANDIDATE_FRACTIONS = (0.02, 0.04, 0.06, 0.08, 0.12, 0.16)


def main() -> None:
    print(f"Planning a pool for a 90/10-skewed workload over "
          f"{NUM_PAGES} pages\n")
    print("pool    predicted hit   measured hit   ACE speedup")
    trace = generate_trace(MS, NUM_PAGES, NUM_OPS, seed=29)
    best = None
    for fraction in CANDIDATE_FRACTIONS:
        capacity = int(NUM_PAGES * fraction)
        predicted = expected_hit_ratio(
            NUM_PAGES, capacity, op_fraction=0.9, page_fraction=0.1
        )
        base = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="baseline",
                        num_pages=NUM_PAGES, pool_fraction=fraction,
                        options=OPTIONS),
            trace,
        )
        ace = run_config(
            StackConfig(profile=PCIE_SSD, policy="lru", variant="ace",
                        num_pages=NUM_PAGES, pool_fraction=fraction,
                        options=OPTIONS),
            trace,
        )
        gain = speedup(base, ace)
        print(f"{fraction:5.0%}   {predicted:12.1%}   {base.buffer.hit_ratio:11.1%}"
              f"   {gain:10.2f}x")
        if best is None or gain > best[1]:
            best = (fraction, gain)

    assert best is not None
    print(f"\nChe's approximation tracks the simulator closely; ACE's gain "
          f"peaks near {best[0]:.0%} of the data")
    print("(heaviest eviction traffic), echoing the paper's Figure 10e/f.")


if __name__ == "__main__":
    main()
