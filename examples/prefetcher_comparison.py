"""Prefetcher comparison: TaP, history table, composite, and NPL.

ACE's Reader accepts any prefetching technique (paper §IV-D).  This example
runs three access patterns — a sequential scan, a looping pattern with
repeatable transitions, and a random skew — through ACE with each
prefetcher and reports misses, prefetch accuracy, and runtime, showing why
the paper combines a sequential detector with a history table.

Run with::

    python examples/prefetcher_comparison.py
"""

import random

from repro import (
    CompositePrefetcher,
    HistoryPrefetcher,
    LRUPolicy,
    NPLPrefetcher,
    PCIE_SSD,
    SimulatedSSD,
    TaPPrefetcher,
    run_trace,
)
from repro.core import ACEBufferPoolManager, ACEConfig
from repro.engine import ExecutionOptions
from repro.workloads import Trace

NUM_PAGES = 6_000
POOL_SIZE = 360
OPTIONS = ExecutionOptions(cpu_us_per_op=10.0)


def sequential_scan() -> Trace:
    """Two update-heavy passes over a table — TaP's home turf.

    The scan updates a quarter of the rows, so evictions regularly find
    dirty victims and ACE's prefetch path engages (on a pure read scan
    ACE follows the classical path, per Algorithm 1).
    """
    rng = random.Random(4)
    pages = list(range(3000)) * 2
    writes = [rng.random() < 0.25 for _ in pages]
    return Trace(pages, writes, name="sequential scan")


def loop_pattern() -> Trace:
    """A repeating join-like loop — the history table learns transitions.

    The loop is larger than the pool (so it keeps missing) and includes
    updates (so dirty victims open the prefetch path on each miss).
    """
    rng = random.Random(5)
    hops = [rng.randrange(NUM_PAGES) for _ in range(800)]
    pages = hops * 12
    writes = [rng.random() < 0.3 for _ in pages]
    return Trace(pages, writes, name="loop pattern")


def random_skew() -> Trace:
    """90/10 random skew — no prefetcher should help (or hurt)."""
    rng = random.Random(6)
    hot = [rng.randrange(NUM_PAGES) for _ in range(600)]
    pages = [
        hot[rng.randrange(len(hot))] if rng.random() < 0.9
        else rng.randrange(NUM_PAGES)
        for _ in range(6000)
    ]
    return Trace(pages, [False] * len(pages), name="random skew")


def prefetchers():
    return {
        "none": None,
        "NPL(4)": NPLPrefetcher(depth=4, max_page=NUM_PAGES),
        "TaP": TaPPrefetcher(max_page=NUM_PAGES),
        "history": HistoryPrefetcher(),
        "composite": CompositePrefetcher(max_page=NUM_PAGES),
    }


def run(trace: Trace, name: str, prefetcher) -> None:
    device = SimulatedSSD(PCIE_SSD, num_pages=NUM_PAGES)
    device.format_pages(range(NUM_PAGES))
    config = ACEConfig.for_device(PCIE_SSD, prefetch_enabled=prefetcher is not None)
    manager = ACEBufferPoolManager(
        POOL_SIZE, LRUPolicy(), device, config=config, prefetcher=prefetcher
    )
    metrics = run_trace(manager, trace, options=OPTIONS, label=name)
    stats = manager.stats
    accuracy = (
        f"{stats.prefetch_accuracy:6.1%}" if stats.prefetch_issued else "   n/a"
    )
    print(f"  {name:10s} runtime={metrics.runtime_s:7.3f}s  "
          f"misses={stats.misses:6d}  prefetched={stats.prefetch_issued:6d}  "
          f"accuracy={accuracy}")


def main() -> None:
    for trace in (sequential_scan(), loop_pattern(), random_skew()):
        print(f"\n{trace.name} ({len(trace)} requests):")
        for name, prefetcher in prefetchers().items():
            run(trace, name, prefetcher)
    print(
        "\nTaP wins on scans, the history table on repeatable transitions,\n"
        "and the composite follows whichever signal is present — with cold\n"
        "placement keeping the random-skew case harmless."
    )


if __name__ == "__main__":
    main()
